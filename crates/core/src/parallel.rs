//! Sharded parallel telescope replay.
//!
//! Scaling a software honeyfarm past one core means splitting the monitored
//! address space. This driver partitions the telescope into a fixed number
//! of *cells* — each /24 hashes to one cell, each cell is a complete
//! [`Honeyfarm`] (gateway + servers) with its own event queue — and replays
//! them on the conservative time-window engine from `potemkin_sim::shard`.
//! Packets that cross cell boundaries (a reflected worm probe aimed at an
//! address another cell owns, a gateway reply to a non-local honeypot)
//! travel the internal fabric as batched remote messages, delivered at the
//! end of the window in which they were emitted.
//!
//! # Determinism
//!
//! The partition (`cells`), the barrier width (`window`), and the seeds
//! fully determine the result. The worker-thread count only changes which
//! OS thread executes a cell inside a window — never the cell's event
//! order, because cells share no state within a window and cross-cell
//! deliveries are merged in canonical `(window, source cell)` order. A run
//! with eight workers is therefore byte-identical to the serial one-worker
//! run; `tests/prop_parallel.rs` asserts this across seeds, worker counts,
//! and fault schedules.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use potemkin_gateway::binding::VmRef;
use potemkin_metrics::TimeSeries;
use potemkin_net::addr::Ipv4Prefix;
use potemkin_net::Packet;
use potemkin_sim::{
    run_sharded, EngineTuning, EventQueue, FaultPlan, FaultPlanConfig, Shard, ShardConfig,
    ShardRunReport, ShardWorld, SimTime, Slab, World,
};
use potemkin_workload::radiation::RadiationModel;
use potemkin_workload::trace::TrafficMix;

use crate::error::FarmError;
use crate::farm::{FarmOutput, Honeyfarm};
use crate::report::{DegradationReport, FarmStats};
use crate::scenario::TelescopeConfig;

/// `splitmix64` — the statelessly-seedable mixer used for cell routing and
/// per-cell seed derivation. Chosen for full avalanche at 3 multiplies.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The cell owning `addr`: a stable hash of its /24, reduced modulo the
/// cell count. Whole /24s stay together so a scanner sweeping a subnet
/// lands in one cell.
///
/// # Panics
///
/// Panics if `cells` is zero.
#[must_use]
pub fn cell_for(addr: Ipv4Addr, cells: usize) -> usize {
    assert!(cells > 0, "cells must be >= 1");
    let subnet = u64::from(u32::from(addr) >> 8);
    (splitmix64(subnet) % cells as u64) as usize
}

/// Derives the private seed for one cell from a run-wide base seed, so
/// cells draw from disjoint RNG streams regardless of how many there are.
#[must_use]
pub fn derive_cell_seed(base: u64, cell: usize) -> u64 {
    splitmix64(base ^ splitmix64(cell as u64 + 1))
}

/// How telescope addresses map onto cells.
///
/// Both maps are pure functions of `(telescope, cells, addr)`, so either
/// choice is deterministic at any worker count; they differ in *shape*:
///
/// * [`Hashed`](CellMap::Hashed) scatters /24s across cells for load
///   balance — the default, and the historical behavior.
/// * [`Sliced`](CellMap::Sliced) gives cell `i` the `i`-th contiguous
///   sub-prefix of the telescope ([`Ipv4Prefix::subprefix`]). Contiguous
///   ownership is what a federation needs: any power-of-two *grouping* of
///   cells owns one clean aggregate prefix it can advertise into a route
///   table, and regrouping (1 farm vs. 16) never moves an address between
///   cells — the partition, and therefore every per-cell event order, is
///   layout-invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellMap {
    /// Stable hash of the address's /24, reduced modulo the cell count.
    #[default]
    Hashed,
    /// Contiguous equal sub-prefixes; requires a power-of-two cell count
    /// no larger than the telescope.
    Sliced,
}

impl CellMap {
    /// The cell owning `addr` under this map. `addr` must be a telescope
    /// address for `Sliced` (callers check membership first).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero, or for `Sliced` when `addr` is outside
    /// `telescope` or `cells` does not evenly split it — all rejected at
    /// config validation.
    #[must_use]
    pub fn owner(self, telescope: Ipv4Prefix, addr: Ipv4Addr, cells: usize) -> usize {
        match self {
            CellMap::Hashed => cell_for(addr, cells),
            CellMap::Sliced => {
                assert!(cells > 0, "cells must be >= 1");
                let index = telescope.index_of(addr).expect("sliced map needs a telescope address");
                let slice_len = telescope.len() / cells as u64;
                assert!(
                    slice_len > 0 && telescope.len().is_multiple_of(cells as u64),
                    "sliced map needs cells to split the telescope evenly"
                );
                (index / slice_len) as usize
            }
        }
    }
}

/// One cell's slice of a sharded telescope: which addresses it owns.
#[derive(Clone, Copy, Debug)]
pub struct CellSlot {
    /// The monitored prefix the run covers.
    pub telescope: Ipv4Prefix,
    /// This cell's index.
    pub index: usize,
    /// Total number of cells.
    pub count: usize,
    /// How addresses map to cells.
    pub map: CellMap,
}

impl CellSlot {
    /// Whether `dst` is a telescope address owned by a *different* cell —
    /// i.e. a packet the internal fabric must carry away.
    #[must_use]
    pub fn routes_away(&self, dst: Ipv4Addr) -> bool {
        self.route(dst).is_some()
    }

    /// The index of the *other* cell owning `dst`, or `None` when `dst`
    /// is outside the telescope or owned by this cell. Resolving the
    /// owner once at emission spares the fabric a second `cell_for` hash
    /// per forwarded packet.
    #[must_use]
    pub fn route(&self, dst: Ipv4Addr) -> Option<usize> {
        if !self.telescope.contains(dst) {
            return None;
        }
        let owner = self.map.owner(self.telescope, dst, self.count);
        (owner != self.index).then_some(owner)
    }
}

/// Configuration of a sharded telescope replay.
///
/// Construct via [`ShardedTelescopeConfig::builder`]; the struct is
/// `#[non_exhaustive]`, so new knobs may be added without breaking
/// downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ShardedTelescopeConfig {
    /// The scenario (per-cell farm template, radiation, horizon). Each
    /// cell instantiates `base.farm` with a seed derived from
    /// [`derive_cell_seed`]`(base.farm.seed, cell)`.
    pub base: TelescopeConfig,
    /// Number of address-space cells. Fixed per run: results depend on it,
    /// the worker count does not change them.
    pub cells: usize,
    /// How telescope addresses map onto cells (results depend on it, like
    /// `cells`). The default [`CellMap::Hashed`] preserves the historical
    /// scattered-/24 partition; [`CellMap::Sliced`] assigns contiguous
    /// sub-prefixes, the shape federated layouts advertise.
    pub cell_map: CellMap,
    /// Conservative barrier window width.
    pub window: SimTime,
    /// Per-cell fault plans, generated from this template with a per-cell
    /// derived seed (None = fault-free).
    pub faults: Option<FaultPlanConfig>,
    /// Patient-zero infections to seed (requires `base.farm.worm`); they
    /// are placed on distinct telescope addresses in their owning cells,
    /// and their probes propagate across the cell fabric.
    pub seed_infections: usize,
    /// Observability: when set, every cell farm records spans (farm lane
    /// `2*cell`, gateway lane `2*cell + 1`) and the engine's window batches
    /// are synthesized into per-shard worker lanes. `None` leaves tracing
    /// compiled out of the hot path. Tracing never changes any
    /// deterministic result field.
    pub trace: Option<potemkin_obs::TraceConfig>,
    /// Engine performance tuning: load-aware worker rebalancing and
    /// adaptive window sizing. The default is everything off (static
    /// round-robin assignment, fixed `window`). Every knob is
    /// digest-invariant or deterministic-per-configuration — see
    /// [`EngineTuning`].
    pub tuning: EngineTuning,
}

impl ShardedTelescopeConfig {
    /// A validating builder: one cell, a 500 ms barrier window, no
    /// faults, no seed infections, tracing off.
    #[must_use]
    pub fn builder(base: TelescopeConfig) -> ShardedTelescopeConfigBuilder {
        ShardedTelescopeConfigBuilder {
            inner: ShardedTelescopeConfig {
                base,
                cells: 1,
                cell_map: CellMap::Hashed,
                window: SimTime::from_millis(500),
                faults: None,
                seed_infections: 0,
                trace: None,
                tuning: EngineTuning::default(),
            },
        }
    }
}

/// Typed builder for [`ShardedTelescopeConfig`]; see
/// [`ShardedTelescopeConfig::builder`].
#[derive(Clone, Debug)]
pub struct ShardedTelescopeConfigBuilder {
    inner: ShardedTelescopeConfig,
}

impl ShardedTelescopeConfigBuilder {
    /// Sets the address-space cell count.
    #[must_use]
    pub fn cells(mut self, cells: usize) -> Self {
        self.inner.cells = cells;
        self
    }

    /// Sets the address→cell map (default: [`CellMap::Hashed`]).
    #[must_use]
    pub fn cell_map(mut self, map: CellMap) -> Self {
        self.inner.cell_map = map;
        self
    }

    /// Sets the conservative barrier window width.
    #[must_use]
    pub fn window(mut self, window: SimTime) -> Self {
        self.inner.window = window;
        self
    }

    /// Installs a per-cell fault-plan template.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlanConfig) -> Self {
        self.inner.faults = Some(faults);
        self
    }

    /// Sets the patient-zero count (requires the base farm's worm).
    #[must_use]
    pub fn seed_infections(mut self, n: usize) -> Self {
        self.inner.seed_infections = n;
        self
    }

    /// Enables per-cell tracing.
    #[must_use]
    pub fn trace(mut self, trace: potemkin_obs::TraceConfig) -> Self {
        self.inner.trace = Some(trace);
        self
    }

    /// Sets the engine performance tuning (rebalancing, adaptive windows).
    #[must_use]
    pub fn tuning(mut self, tuning: EngineTuning) -> Self {
        self.inner.tuning = tuning;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero cells, a zero window, or seed
    /// infections without a worm on the base farm.
    pub fn build(self) -> Result<ShardedTelescopeConfig, potemkin_gateway::ConfigError> {
        use potemkin_gateway::ConfigError;
        let c = self.inner;
        if c.cells == 0 {
            return Err(ConfigError::new("ShardedTelescopeConfig", "cells", "must be > 0"));
        }
        if c.window == SimTime::ZERO {
            return Err(ConfigError::new("ShardedTelescopeConfig", "window", "must be > 0"));
        }
        if c.cell_map == CellMap::Sliced
            && (!c.cells.is_power_of_two() || c.cells as u64 > c.base.radiation.telescope.len())
        {
            return Err(ConfigError::new(
                "ShardedTelescopeConfig",
                "cell_map",
                "sliced map needs a power-of-two cell count <= telescope size",
            ));
        }
        if c.seed_infections > 0 && c.base.farm.worm.is_none() {
            return Err(ConfigError::new(
                "ShardedTelescopeConfig",
                "seed_infections",
                "seeding infections needs base.farm.worm",
            ));
        }
        if let Some(adaptive) = c.tuning.adaptive {
            if adaptive.min == SimTime::ZERO || adaptive.min > adaptive.max {
                return Err(ConfigError::new(
                    "ShardedTelescopeConfig",
                    "tuning.adaptive",
                    "adaptive window needs 0 < min <= max",
                ));
            }
        }
        Ok(c)
    }
}

/// Result of a sharded telescope replay: the serial [`TelescopeResult`]
/// fields merged across cells, plus engine telemetry.
///
/// [`TelescopeResult`]: crate::scenario::TelescopeResult
#[derive(Clone, Debug)]
pub struct ShardedTelescopeResult {
    /// Live-VM count over time, summed across cells per sample bin.
    pub live_vm_series: TimeSeries,
    /// Packets in the replayed trace.
    pub packets: u64,
    /// Distinct external sources in the trace.
    pub distinct_sources: u64,
    /// Distinct telescope addresses touched by the trace.
    pub distinct_destinations: u64,
    /// Peak of the merged per-sample live-VM series (the farm-wide peak up
    /// to sample resolution).
    pub peak_live_vms: f64,
    /// Traffic-mix breakdown of the replayed trace.
    pub mix: TrafficMix,
    /// Merged farm statistics ([`FarmStats::collect_sharded`]).
    pub stats: FarmStats,
    /// Merged fault/degradation report
    /// ([`DegradationReport::collect_sharded`]).
    pub degradation: DegradationReport,
    /// Packets that crossed a cell boundary over the internal fabric.
    pub cross_cell_packets: u64,
    /// Final infected-VM count across cells.
    pub final_infected: usize,
    /// Engine telemetry: per-shard event counts, per-window batch timings.
    pub engine: ShardRunReport,
    /// Merged trace events (empty unless
    /// [`ShardedTelescopeConfig::trace`] was set), in
    /// `(sim-time, lane, seq)` order. Excluded from determinism digests by
    /// convention: sim-time content is deterministic, but wall-clock
    /// stamps (when enabled) are not.
    pub trace: Vec<potemkin_obs::TraceEvent>,
    /// Lane-number → human-readable lane name pairs for the trace
    /// exporters.
    pub trace_lanes: Vec<(u32, String)>,
}

pub(crate) enum CellEvent {
    /// An inbound packet, stored out-of-line in [`CellWorld::packets`];
    /// the payload is the slab key. Storing packets in a slab keeps the
    /// event enum `Copy`-sized and recycles packet slots in steady state
    /// instead of boxing each one.
    Packet(usize),
    Probe {
        vm: VmRef,
        idx: u64,
    },
    Tick,
    Sample,
}

pub(crate) struct CellWorld {
    cells: usize,
    map: CellMap,
    telescope: Ipv4Prefix,
    pub(crate) farm: Honeyfarm,
    /// Arena for pending [`CellEvent::Packet`] payloads. Slots are
    /// recycled through an intrusive freelist, so the steady-state packet
    /// path allocates nothing per event.
    pub(crate) packets: Slab<Packet>,
    probe_gap: Option<SimTime>,
    tick_interval: SimTime,
    sample_interval: SimTime,
    duration: SimTime,
    live_vm_series: TimeSeries,
    /// Cross-cell packets staged for the current window, indexed by
    /// destination cell. Direct indexing replaces the former per-packet
    /// `BTreeMap` entry lookups; iteration by index keeps the per-window
    /// destination order canonical.
    outbound: Vec<Vec<Packet>>,
    forwarded: u64,
    /// When set, farm replies to *external* (non-telescope) destinations
    /// are collected in `external_replies` instead of being dropped at
    /// the tunnel boundary. Wrapper worlds (the interaction driver's
    /// closed-loop attacker actors) drain them after each `handle` to
    /// feed the attacker side of a conversation. Off in plain telescope
    /// replays, preserving the seed's drop-at-boundary behaviour.
    pub(crate) capture_external: bool,
    pub(crate) external_replies: Vec<Packet>,
}

impl CellWorld {
    /// Drains farm outputs, staging every packet whose destination another
    /// cell owns for barrier delivery. `SentExternal` covers permissive
    /// policies (e.g. allow-all) emitting telescope-destined packets;
    /// `ForwardedCell` is the reflect path surfacing non-local
    /// reflections (its owning cell was resolved at emission).
    fn route_outputs(&mut self) {
        let cells = self.cells;
        let map = self.map;
        let telescope = self.telescope;
        for out in self.farm.drain_outputs() {
            let (packet, dest) = match out {
                FarmOutput::ForwardedCell { packet, cell } => (packet, cell),
                FarmOutput::SentExternal(p) if telescope.contains(p.dst()) => {
                    let dest = map.owner(telescope, p.dst(), cells);
                    (p, dest)
                }
                FarmOutput::SentExternal(p) if self.capture_external => {
                    self.external_replies.push(p);
                    continue;
                }
                _ => continue,
            };
            self.forwarded += 1;
            self.outbound[dest].push(packet);
        }
    }

    fn schedule_new_infections(&mut self, now: SimTime, q: &mut EventQueue<CellEvent>) {
        let Some(gap) = self.probe_gap else {
            self.farm.take_new_infections();
            return;
        };
        for vm in self.farm.take_new_infections() {
            q.schedule(now + gap, CellEvent::Probe { vm, idx: 0 });
        }
    }
}

impl World for CellWorld {
    type Event = CellEvent;

    fn handle(&mut self, now: SimTime, event: CellEvent, q: &mut EventQueue<CellEvent>) {
        match event {
            CellEvent::Packet(key) => {
                let packet = self.packets.remove(key).expect("scheduled packet key is live");
                self.farm.inject_external(now, packet);
                self.schedule_new_infections(now, q);
            }
            CellEvent::Probe { vm, idx } => {
                if self.farm.worm_probe(now, vm, idx) {
                    if let Some(gap) = self.probe_gap {
                        q.schedule(now + gap, CellEvent::Probe { vm, idx: idx + 1 });
                    }
                }
                self.schedule_new_infections(now, q);
            }
            CellEvent::Tick => {
                self.farm.tick(now);
                if now + self.tick_interval < self.duration {
                    q.schedule(now + self.tick_interval, CellEvent::Tick);
                }
            }
            CellEvent::Sample => {
                self.live_vm_series.record_max(now, self.farm.live_vms() as f64);
                if now + self.sample_interval < self.duration {
                    q.schedule(now + self.sample_interval, CellEvent::Sample);
                }
            }
        }
        self.route_outputs();
    }
}

impl ShardWorld for CellWorld {
    type Remote = Vec<Packet>;

    fn take_outbound(&mut self) -> Vec<(usize, Vec<Packet>)> {
        // The engine calls this exactly once per shard per window — it is
        // the barrier hook, so window-batched farm bookkeeping (hot
        // counters, deferred flow-table refreshes) flushes here.
        self.farm.end_window();
        let mut staged = Vec::new();
        for (dest, packets) in self.outbound.iter_mut().enumerate() {
            if !packets.is_empty() {
                staged.push((dest, std::mem::take(packets)));
            }
        }
        staged
    }

    fn accept_remote(
        &mut self,
        at: SimTime,
        batch: Vec<Packet>,
        queue: &mut EventQueue<CellEvent>,
    ) {
        for packet in batch {
            let key = self.packets.insert(packet);
            queue.schedule(at, CellEvent::Packet(key));
        }
    }
}

/// Deterministic facts about the replayed radiation trace, computed at
/// prepare time (the trace itself is regenerated from config + seed, so a
/// resumed run recomputes identical values without storing the packets).
pub(crate) struct TraceMeta {
    pub(crate) packets: u64,
    pub(crate) distinct_sources: u64,
    pub(crate) distinct_destinations: u64,
    pub(crate) mix: TrafficMix,
}

/// Shards plus trace metadata, ready for the window engine.
pub(crate) struct PreparedRun {
    pub(crate) shards: Vec<Shard<CellWorld>>,
    pub(crate) meta: TraceMeta,
}

/// Builds the per-cell farms and shard queues for a sharded replay.
///
/// With `schedule == true` the queues are primed for a fresh run: initial
/// `Sample`/`Tick` events, patient-zero infections, and the partitioned
/// radiation trace. With `schedule == false` the queues stay empty and no
/// farm state is touched beyond construction — the caller restores both
/// from a checkpoint (the trace is still *generated*, deterministically,
/// so its metadata fields can be reported).
pub(crate) fn prepare_shards(
    config: &ShardedTelescopeConfig,
    schedule: bool,
) -> Result<PreparedRun, FarmError> {
    if config.cells == 0 {
        return Err(FarmError::BadConfig { what: "cells must be >= 1" });
    }
    if config.seed_infections > 0 && config.base.farm.worm.is_none() {
        return Err(FarmError::BadConfig { what: "seed_infections needs farm.worm" });
    }
    let base = &config.base;
    let telescope = base.radiation.telescope;
    if config.cell_map == CellMap::Sliced
        && (!config.cells.is_power_of_two() || config.cells as u64 > telescope.len())
    {
        return Err(FarmError::BadConfig {
            what: "sliced cell map needs a power-of-two cell count <= telescope size",
        });
    }

    let mut model = RadiationModel::new(base.radiation.clone(), base.seed);
    let trace = model.generate(base.duration);
    let meta = TraceMeta {
        packets: trace.len() as u64,
        distinct_sources: trace.distinct_sources() as u64,
        distinct_destinations: trace.distinct_destinations() as u64,
        mix: trace.traffic_mix(),
    };

    let probe_gap = base.farm.worm.as_ref().map(potemkin_workload::worm::WormSpec::probe_gap);
    // One shared config for every cell: the farm template (service tables,
    // hitlists, profiles) is cloned once into the `Arc`, not per cell;
    // per-cell variation is only the derived RNG seed.
    let farm_template = std::sync::Arc::new(base.farm.clone());
    let mut shards = Vec::with_capacity(config.cells);
    for cell in 0..config.cells {
        let mut farm = Honeyfarm::with_shared_config(
            std::sync::Arc::clone(&farm_template),
            derive_cell_seed(base.farm.seed, cell),
        )?;
        farm.assign_cell(CellSlot {
            telescope,
            index: cell,
            count: config.cells,
            map: config.cell_map,
        });
        if let Some(template) = &config.faults {
            let mut plan_config = *template;
            plan_config.seed = derive_cell_seed(template.seed, cell);
            farm.install_fault_plan(FaultPlan::generate(&plan_config));
        }
        if let Some(trace_config) = config.trace {
            farm.enable_tracing(trace_config, (cell * 2) as u32);
        }
        let world = CellWorld {
            cells: config.cells,
            map: config.cell_map,
            telescope,
            farm,
            packets: Slab::new(),
            probe_gap,
            tick_interval: base.tick_interval,
            sample_interval: base.sample_interval,
            duration: base.duration,
            live_vm_series: TimeSeries::new(base.sample_interval),
            outbound: vec![Vec::new(); config.cells],
            forwarded: 0,
            capture_external: false,
            external_replies: Vec::new(),
        };
        let mut shard = Shard::new(world);
        if schedule {
            shard.queue.schedule(SimTime::ZERO, CellEvent::Sample);
            shard.queue.schedule(base.tick_interval, CellEvent::Tick);
        }
        shards.push(shard);
    }

    if schedule {
        // Patient zeroes: distinct telescope addresses, each materialized
        // and seeded in the cell that owns it, scanning from time zero.
        for i in 0..config.seed_infections {
            let addr = telescope
                .addr_at(i as u64)
                .ok_or(FarmError::BadConfig { what: "more seed infections than addresses" })?;
            let cell = config.cell_map.owner(telescope, addr, config.cells);
            let shard = &mut shards[cell];
            let vm =
                shard.world.farm.materialize(SimTime::ZERO, addr).ok_or(FarmError::NoCapacity)?;
            shard.world.farm.seed_infection(vm)?;
            if let Some(gap) = probe_gap {
                shard.queue.schedule(gap, CellEvent::Probe { vm, idx: 0 });
            }
        }

        // Partition the trace: each packet goes to the cell owning its
        // destination, in trace order (the queue's FIFO tie-break keeps
        // same-timestamp arrivals in this order).
        for event in trace.into_events() {
            let cell = config.cell_map.owner(telescope, event.packet.dst(), config.cells);
            let shard = &mut shards[cell];
            let key = shard.world.packets.insert(event.packet);
            shard.queue.schedule(event.at, CellEvent::Packet(key));
        }
    }

    Ok(PreparedRun { shards, meta })
}

/// A world the sharded assembly/trace machinery can treat as a cell — the
/// plain [`CellWorld`], or a wrapper (the federation driver) delegating to
/// one.
pub(crate) trait HasCellWorld {
    fn cell(&self) -> &CellWorld;
    fn cell_mut(&mut self) -> &mut CellWorld;
}

impl HasCellWorld for CellWorld {
    fn cell(&self) -> &CellWorld {
        self
    }
    fn cell_mut(&mut self) -> &mut CellWorld {
        self
    }
}

/// Merges finished shards and engine telemetry into the public result.
pub(crate) fn assemble_result<W: World + HasCellWorld>(
    config: &ShardedTelescopeConfig,
    shards: &mut [Shard<W>],
    engine: ShardRunReport,
    meta: &TraceMeta,
) -> ShardedTelescopeResult {
    let base = &config.base;
    let farms: Vec<&Honeyfarm> = shards.iter().map(|s| &s.world.cell().farm).collect();
    let stats = FarmStats::collect_sharded(farms.iter().copied());
    let degradation = DegradationReport::collect_sharded(farms.iter().copied());
    let mut live_vm_series = TimeSeries::new(base.sample_interval);
    let mut cross_cell_packets = 0;
    let mut final_infected = 0;
    for shard in shards.iter() {
        live_vm_series.merge(&shard.world.cell().live_vm_series);
        cross_cell_packets += shard.world.cell().forwarded;
        final_infected += shard.world.cell().farm.infected_vms();
    }
    let peak_live_vms = live_vm_series.peak();
    let (trace_events, trace_lanes) = match config.trace {
        Some(trace_config) => collect_traces(config, trace_config, shards, &engine),
        None => (Vec::new(), Vec::new()),
    };
    ShardedTelescopeResult {
        live_vm_series,
        packets: meta.packets,
        distinct_sources: meta.distinct_sources,
        distinct_destinations: meta.distinct_destinations,
        peak_live_vms,
        mix: meta.mix.clone(),
        stats,
        degradation,
        cross_cell_packets,
        final_infected,
        engine,
        trace: trace_events,
        trace_lanes,
    }
}

/// Runs a sharded telescope replay on `workers` OS threads.
///
/// `workers == 1` runs every cell on the calling thread (the serial
/// reference); any larger count produces byte-identical merged reports.
///
/// # Errors
///
/// Returns [`FarmError::BadConfig`] for a zero cell count, seed infections
/// without a worm, or a farm the cells cannot build.
pub fn run_telescope_sharded(
    config: &ShardedTelescopeConfig,
    workers: usize,
) -> Result<ShardedTelescopeResult, FarmError> {
    let PreparedRun { mut shards, meta } = prepare_shards(config, true)?;
    let engine = run_sharded(
        &mut shards,
        config.base.duration,
        &ShardConfig { window: config.window, workers, tuning: config.tuning },
    );
    Ok(assemble_result(config, &mut shards, engine, &meta))
}

/// Encodes one cell's driver state (everything around the farm: the merged
/// live-VM samples, fabric counters, and any packets staged for other
/// cells). The farm itself is a separate snapshot section.
pub(crate) fn encode_cell_aux(world: &CellWorld) -> Vec<u8> {
    let mut w = potemkin_snapshot::SnapWriter::new();
    crate::farm::encode_series(&mut w, &world.live_vm_series);
    w.u64(world.forwarded);
    // Same wire shape as the former map-based staging: only non-empty
    // destinations, in ascending order.
    w.u64(world.outbound.iter().filter(|p| !p.is_empty()).count() as u64);
    for (dest, packets) in world.outbound.iter().enumerate() {
        if packets.is_empty() {
            continue;
        }
        w.usize(dest);
        w.u64(packets.len() as u64);
        for p in packets {
            w.bytes(p.wire());
        }
    }
    w.into_bytes()
}

/// Restores state captured by [`encode_cell_aux`] into a freshly prepared
/// cell world.
pub(crate) fn restore_cell_aux(
    world: &mut CellWorld,
    bytes: &[u8],
) -> Result<(), potemkin_snapshot::SnapshotError> {
    let mut r = potemkin_snapshot::SnapReader::new(bytes, "core.cell");
    let live_vm_series = crate::farm::decode_series(&mut r)?;
    let forwarded = r.u64()?;
    let n_dests = r.u64()?;
    let mut outbound = vec![Vec::new(); world.cells];
    for _ in 0..n_dests {
        let dest = r.usize()?;
        if dest >= outbound.len() {
            return Err(potemkin_snapshot::SnapshotError::Decode { context: "core.cell" });
        }
        let n = r.u64()?;
        let mut packets = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            packets.push(crate::farm::decode_packet(r.bytes()?)?);
        }
        outbound[dest] = packets;
    }
    r.finish()?;
    world.live_vm_series = live_vm_series;
    world.forwarded = forwarded;
    world.outbound = outbound;
    Ok(())
}

/// Encodes one cell's event queue: counters plus every pending entry with
/// its original sequence number, so FIFO tie-breaking survives the restore
/// boundary. Packet events resolve their slab key against `packets` and
/// ride as wire bytes — slab keys themselves are transient and never
/// serialized, so restores may re-slot packets freely.
pub(crate) fn encode_cell_queue(queue: &EventQueue<CellEvent>, packets: &Slab<Packet>) -> Vec<u8> {
    let mut w = potemkin_snapshot::SnapWriter::new();
    let (next_seq, scheduled, entries) = queue.snapshot_parts();
    w.u64(next_seq);
    w.u64(scheduled);
    w.u64(entries.len() as u64);
    for (at, seq, event) in entries {
        w.u64(at.as_nanos());
        w.u64(seq);
        match event {
            CellEvent::Packet(key) => {
                let p = packets.get(*key).expect("queued packet key is live");
                w.u8(0);
                w.bytes(p.wire());
            }
            CellEvent::Probe { vm, idx } => {
                w.u8(1);
                w.u64(vm.0);
                w.u64(*idx);
            }
            CellEvent::Tick => w.u8(2),
            CellEvent::Sample => w.u8(3),
        }
    }
    w.into_bytes()
}

/// Decodes a queue captured by [`encode_cell_queue`], re-slotting packet
/// payloads into `packets` (keys need not match the originals; only wire
/// content and queue order are canonical).
pub(crate) fn decode_cell_queue(
    bytes: &[u8],
    packets: &mut Slab<Packet>,
) -> Result<EventQueue<CellEvent>, potemkin_snapshot::SnapshotError> {
    const CTX: &str = "core.cell.queue";
    let mut r = potemkin_snapshot::SnapReader::new(bytes, CTX);
    let next_seq = r.u64()?;
    let scheduled = r.u64()?;
    let n = r.u64()?;
    let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        let at = SimTime::from_nanos(r.u64()?);
        let seq = r.u64()?;
        let event = match r.u8()? {
            0 => CellEvent::Packet(packets.insert(crate::farm::decode_packet(r.bytes()?)?)),
            1 => CellEvent::Probe { vm: VmRef(r.u64()?), idx: r.u64()? },
            2 => CellEvent::Tick,
            3 => CellEvent::Sample,
            _ => return Err(potemkin_snapshot::SnapshotError::Decode { context: CTX }),
        };
        entries.push((at, seq, event));
    }
    r.finish()?;
    Ok(EventQueue::from_parts(next_seq, scheduled, entries))
}

/// Drains every cell farm's trace and synthesizes shard-worker window
/// lanes (one per shard, numbered after the cell lanes) from the engine's
/// batch telemetry: each window batch becomes a `shard.window` span over
/// its barrier interval with a `shard.events` counter sample, carrying the
/// batch's measured wall nanoseconds only when wall-clock stamping was
/// requested.
pub(crate) fn collect_traces<W: World + HasCellWorld>(
    config: &ShardedTelescopeConfig,
    trace_config: potemkin_obs::TraceConfig,
    shards: &mut [Shard<W>],
    engine: &ShardRunReport,
) -> (Vec<potemkin_obs::TraceEvent>, Vec<(u32, String)>) {
    use potemkin_obs::{names, TraceEvent, Tracer};
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut lanes = Vec::new();
    for (cell, shard) in shards.iter_mut().enumerate() {
        events.extend(shard.world.cell_mut().farm.take_trace());
        lanes.push(((cell * 2) as u32, format!("cell {cell} farm")));
        lanes.push(((cell * 2 + 1) as u32, format!("cell {cell} gateway")));
    }
    let base_lane = (config.cells * 2) as u32;
    let mut engine_lanes: BTreeMap<u32, Tracer> = BTreeMap::new();
    for batch in &engine.batches {
        let lane = base_lane + batch.shard as u32;
        let tracer = engine_lanes
            .entry(lane)
            .or_insert_with(|| Tracer::new(lane, potemkin_obs::TraceConfig::unbounded()));
        let start = config.window * batch.window;
        let end = start.saturating_add(config.window).min(config.base.duration);
        let span = tracer.begin(start, names::SHARD_WINDOW);
        tracer.counter(start, names::SHARD_EVENTS, batch.events);
        if trace_config.wall_clock {
            // The engine measured this batch's wall time already; surface
            // it instead of re-stamping (the tracer's own clock started at
            // collection time, long after the batch ran).
            tracer.instant(start, "shard.batch_wall_nanos", batch.elapsed_nanos);
        }
        tracer.end(end, span);
    }
    for (lane, mut tracer) in engine_lanes {
        events.extend(tracer.drain());
        lanes.push((lane, format!("shard worker {}", lane - base_lane)));
    }
    events.sort_by_key(|e| (e.at, e.lane, e.seq));
    (events, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::FarmConfig;
    use potemkin_gateway::policy::PolicyConfig;
    use potemkin_workload::radiation::RadiationConfig;
    use potemkin_workload::worm::WormSpec;

    fn sharded_config(cells: usize) -> ShardedTelescopeConfig {
        let mut farm = FarmConfig::small_test();
        farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
        farm.frames_per_server = 262_144;
        ShardedTelescopeConfig {
            base: TelescopeConfig {
                farm,
                radiation: RadiationConfig::default(),
                seed: 7,
                duration: SimTime::from_secs(10),
                sample_interval: SimTime::from_secs(1),
                tick_interval: SimTime::from_secs(1),
            },
            cells,
            cell_map: CellMap::Hashed,
            window: SimTime::from_millis(500),
            faults: None,
            seed_infections: 0,
            trace: None,
            tuning: EngineTuning::default(),
        }
    }

    /// The deterministic face of a result — everything except wall-clock
    /// engine telemetry.
    fn digest(r: &ShardedTelescopeResult) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{:?}|{}",
            r.degradation.canonical_string(),
            r.stats.live_vms,
            r.stats.counters.get("packets_in"),
            r.packets,
            r.cross_cell_packets,
            r.final_infected,
            r.live_vm_series.iter().collect::<Vec<_>>(),
            r.engine.remote_messages,
        )
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let config = sharded_config(4);
        let serial = run_telescope_sharded(&config, 1).unwrap();
        assert!(serial.packets > 50);
        assert!(serial.stats.vms_cloned > 0);
        for workers in [2, 4] {
            let parallel = run_telescope_sharded(&config, workers).unwrap();
            assert_eq!(digest(&serial), digest(&parallel), "workers={workers}");
        }
    }

    #[test]
    fn rebalancing_is_digest_invariant() {
        // Load-aware worker assignment only picks which OS thread runs a
        // cell — the static reference digest must survive untouched.
        let config = sharded_config(4);
        let reference = run_telescope_sharded(&config, 1).unwrap();
        let mut tuned = config;
        tuned.tuning = EngineTuning { rebalance: true, adaptive: None };
        for workers in [1, 2, 4] {
            let run = run_telescope_sharded(&tuned, workers).unwrap();
            assert_eq!(digest(&reference), digest(&run), "workers={workers}");
        }
    }

    #[test]
    fn adaptive_windows_are_deterministic_across_workers() {
        // Adaptive sizing changes the window sequence (a legitimate
        // result-affecting knob, like `window` itself), but the sequence
        // is a pure function of prior-window telemetry — so any worker
        // count must replay it identically.
        let mut config = sharded_config(4);
        config.tuning = EngineTuning::tuned(SimTime::from_millis(125), SimTime::from_millis(1000));
        let serial = run_telescope_sharded(&config, 1).unwrap();
        assert!(serial.packets > 50);
        for workers in [2, 4] {
            let parallel = run_telescope_sharded(&config, workers).unwrap();
            assert_eq!(digest(&serial), digest(&parallel), "workers={workers}");
        }
    }

    #[test]
    fn steady_state_recycles_packet_buffers() {
        let config = sharded_config(2);
        let PreparedRun { mut shards, .. } = prepare_shards(&config, true).unwrap();
        run_sharded(
            &mut shards,
            config.base.duration,
            &ShardConfig { window: config.window, workers: 1, tuning: config.tuning },
        );
        let mut acquires = 0;
        let mut reused = 0;
        for shard in &shards {
            let farm = shard.world.farm.pool_stats();
            let gw = shard.world.farm.gateway().pool_stats();
            acquires += farm.acquires + gw.acquires;
            reused += farm.reused + gw.reused;
            // The pool accounting identity: every acquire was either a
            // fresh allocation or a recycled slot.
            assert_eq!(farm.acquires, farm.allocated + farm.reused);
            assert_eq!(gw.acquires, gw.allocated + gw.reused);
            // Packet-event slots recycle through the slab freelist too.
            let (inserted, slab_reused) = shard.world.packets.reuse_stats();
            assert!(inserted > 0, "trace packets ride the slab");
            let _ = slab_reused;
        }
        assert!(acquires > 0, "pooled builders must be on the hot path");
        assert!(reused > 0, "steady state must recycle, not allocate");
    }

    #[test]
    fn tracing_collects_all_lanes_without_changing_results() {
        let mut config = sharded_config(2);
        config.base.duration = SimTime::from_secs(4);
        let plain = run_telescope_sharded(&config, 2).unwrap();
        assert!(plain.trace.is_empty());
        assert!(plain.trace_lanes.is_empty());
        config.trace = Some(potemkin_obs::TraceConfig::unbounded());
        let traced = run_telescope_sharded(&config, 2).unwrap();
        assert_eq!(digest(&plain), digest(&traced), "tracing must be observer-effect-free");
        assert!(!traced.trace.is_empty());
        // Lanes: farm + gateway per cell, plus one engine lane per shard.
        assert_eq!(traced.trace_lanes.len(), 2 * 2 + 2);
        let farm_lanes = traced.trace.iter().filter(|e| e.lane < 4).count();
        let window_spans = traced
            .trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    potemkin_obs::TraceEventKind::SpanBegin {
                        name: potemkin_obs::names::SHARD_WINDOW,
                        ..
                    }
                )
            })
            .count();
        assert!(farm_lanes > 0, "cell farms recorded spans");
        assert_eq!(window_spans, traced.engine.batches.len(), "one span per window batch");
        // Sim-time stamps only: no wall clock unless requested.
        assert!(traced.trace.iter().all(|e| e.wall_nanos.is_none()));
    }

    #[test]
    fn worm_probes_cross_the_cell_fabric() {
        let mut config = sharded_config(4);
        // A /22 worm space (four /24s, hashed across the cells) keeps the
        // saturated population — and the debug-mode event count — small
        // while still forcing probes through the cross-cell fabric.
        config.base.farm.worm = Some(WormSpec::code_red("10.1.8.0/22".parse().unwrap()));
        config.base.duration = SimTime::from_secs(6);
        config.seed_infections = 2;
        let serial = run_telescope_sharded(&config, 1).unwrap();
        assert!(serial.cross_cell_packets > 0, "reflected probes must cross cells");
        assert!(serial.engine.remote_messages > 0);
        assert!(serial.final_infected > config.seed_infections, "worm must spread across cells");
        assert_eq!(serial.degradation.escaped, 0, "reflection still contains everything");
        let parallel = run_telescope_sharded(&config, 4).unwrap();
        assert_eq!(digest(&serial), digest(&parallel));
    }

    #[test]
    fn faulted_sharded_run_is_deterministic() {
        let mut config = sharded_config(2);
        config.base.farm.degradation_ladder = true;
        config.faults = Some(FaultPlanConfig {
            host_crash_rate_per_hour: 1_440.0,
            clone_failure_prob: 0.05,
            ..FaultPlanConfig::zero(config.base.duration, config.base.farm.servers)
        });
        let serial = run_telescope_sharded(&config, 1).unwrap();
        assert!(serial.degradation.host_crashes > 0, "crashes fired");
        let parallel = run_telescope_sharded(&config, 2).unwrap();
        assert_eq!(digest(&serial), digest(&parallel));
    }

    #[test]
    fn single_cell_matches_the_serial_scenario_counters() {
        // One cell, no cross-cell fabric: the sharded driver is the plain
        // telescope replay, so the farm-level counters must agree with it.
        let config = sharded_config(1);
        let sharded = run_telescope_sharded(&config, 1).unwrap();
        let serial = crate::scenario::run_telescope(config.base.clone()).unwrap();
        assert_eq!(sharded.packets, serial.packets);
        assert_eq!(sharded.stats.vms_cloned, serial.stats.vms_cloned);
        assert_eq!(
            sharded.stats.counters.get("packets_in"),
            serial.stats.counters.get("packets_in")
        );
        assert_eq!(sharded.cross_cell_packets, 0);
    }

    #[test]
    fn cell_routing_is_stable_and_covers_all_cells() {
        let telescope: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        let cells = 4;
        let mut seen = vec![0u64; cells];
        for subnet in 0..256u32 {
            let addr = Ipv4Addr::from(u32::from(telescope.network()) + (subnet << 8));
            let cell = cell_for(addr, cells);
            assert_eq!(cell, cell_for(addr, cells), "routing must be stable");
            // Every address in the /24 lands in the same cell.
            assert_eq!(cell, cell_for(Ipv4Addr::from(u32::from(addr) + 255), cells));
            seen[cell] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "all cells own subnets: {seen:?}");
    }

    #[test]
    fn sliced_map_owns_contiguous_slices_and_stays_deterministic() {
        let telescope: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        // Ownership: cell i owns exactly the i-th /18.
        for cell in 0..4usize {
            let slice = telescope.subprefix(cell as u64, 4).unwrap();
            assert_eq!(CellMap::Sliced.owner(telescope, slice.network(), 4), cell);
            assert_eq!(
                CellMap::Sliced.owner(telescope, slice.addr_at(slice.len() - 1).unwrap(), 4),
                cell
            );
        }
        // A sliced run is byte-identical across worker counts, worm and all.
        let mut config = sharded_config(4);
        config.cell_map = CellMap::Sliced;
        config.base.farm.worm = Some(WormSpec::code_red("10.1.8.0/22".parse().unwrap()));
        config.base.duration = SimTime::from_secs(6);
        config.seed_infections = 2;
        let serial = run_telescope_sharded(&config, 1).unwrap();
        assert!(serial.packets > 50);
        assert!(serial.cross_cell_packets > 0, "worm probes must cross slice boundaries");
        let parallel = run_telescope_sharded(&config, 4).unwrap();
        assert_eq!(digest(&serial), digest(&parallel));
    }

    #[test]
    fn sliced_map_rejects_uneven_partitions() {
        let mut config = sharded_config(3);
        config.cell_map = CellMap::Sliced;
        assert!(run_telescope_sharded(&config, 1).is_err(), "3 cells cannot slice a prefix");
        let built = ShardedTelescopeConfig::builder(config.base.clone())
            .cells(3)
            .cell_map(CellMap::Sliced)
            .build();
        assert!(built.is_err());
        let ok =
            ShardedTelescopeConfig::builder(config.base).cells(4).cell_map(CellMap::Sliced).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = sharded_config(0);
        assert!(run_telescope_sharded(&config, 1).is_err());
        config.cells = 2;
        config.seed_infections = 1; // no worm configured
        assert!(run_telescope_sharded(&config, 1).is_err());
    }
}
