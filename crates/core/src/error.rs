//! Controller-level errors.

use core::fmt;

use potemkin_vmm::VmmError;

/// Errors from farm construction and operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FarmError {
    /// A VMM operation failed.
    Vmm(VmmError),
    /// The configuration is invalid.
    BadConfig {
        /// What is wrong.
        what: &'static str,
    },
    /// No server could supply a VM (farm full or all hosts down).
    NoCapacity,
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Vmm(e) => write!(f, "vmm: {e}"),
            FarmError::BadConfig { what } => write!(f, "bad config: {what}"),
            FarmError::NoCapacity => write!(f, "no server has capacity"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Vmm(e) => Some(e),
            FarmError::BadConfig { .. } | FarmError::NoCapacity => None,
        }
    }
}

impl From<VmmError> for FarmError {
    fn from(e: VmmError) -> Self {
        FarmError::Vmm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use potemkin_vmm::DomainId;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FarmError::from(VmmError::NoSuchDomain(DomainId(3)));
        assert!(e.to_string().contains("dom3"));
        assert!(e.source().is_some());
        let c = FarmError::BadConfig { what: "no servers" };
        assert_eq!(c.to_string(), "bad config: no servers");
        assert!(c.source().is_none());
        let n = FarmError::NoCapacity;
        assert_eq!(n.to_string(), "no server has capacity");
        assert!(n.source().is_none());
    }
}
