//! Controller-level errors and the workspace-wide [`Error`] umbrella.

use core::fmt;

use potemkin_gateway::ConfigError;
use potemkin_net::NetError;
use potemkin_vmm::VmmError;

/// Errors from farm construction and operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FarmError {
    /// A VMM operation failed.
    Vmm(VmmError),
    /// The configuration is invalid.
    BadConfig {
        /// What is wrong.
        what: &'static str,
    },
    /// No server could supply a VM (farm full or all hosts down).
    NoCapacity,
    /// A whole-farm snapshot failed integrity validation or could not be
    /// written/read.
    Snapshot(potemkin_snapshot::SnapshotError),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Vmm(e) => write!(f, "vmm: {e}"),
            FarmError::BadConfig { what } => write!(f, "bad config: {what}"),
            FarmError::NoCapacity => write!(f, "no server has capacity"),
            FarmError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Vmm(e) => Some(e),
            FarmError::Snapshot(e) => Some(e),
            FarmError::BadConfig { .. } | FarmError::NoCapacity => None,
        }
    }
}

impl From<VmmError> for FarmError {
    fn from(e: VmmError) -> Self {
        FarmError::Vmm(e)
    }
}

impl From<potemkin_snapshot::SnapshotError> for FarmError {
    fn from(e: potemkin_snapshot::SnapshotError) -> Self {
        FarmError::Snapshot(e)
    }
}

/// The workspace-wide error: one type that any crate's failure converts
/// into, so binaries and examples handle a single `Result` instead of
/// matching per-crate enums. Every variant chains its cause through
/// [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A VMM operation failed.
    Vmm(VmmError),
    /// A farm operation failed.
    Farm(FarmError),
    /// A packet/addressing operation failed.
    Net(NetError),
    /// A configuration builder rejected its input.
    Config(ConfigError),
    /// An I/O operation (artifact write, file read) failed.
    Io(std::io::Error),
    /// Command-line arguments were invalid.
    Cli(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Vmm(e) => write!(f, "vmm: {e}"),
            Error::Farm(e) => write!(f, "farm: {e}"),
            Error::Net(e) => write!(f, "net: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Cli(msg) => write!(f, "cli: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Vmm(e) => Some(e),
            Error::Farm(e) => Some(e),
            Error::Net(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Cli(_) => None,
        }
    }
}

impl From<VmmError> for Error {
    fn from(e: VmmError) -> Self {
        Error::Vmm(e)
    }
}

impl From<FarmError> for Error {
    fn from(e: FarmError) -> Self {
        Error::Farm(e)
    }
}

impl From<NetError> for Error {
    fn from(e: NetError) -> Self {
        Error::Net(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Cli(msg)
    }
}

impl From<potemkin_snapshot::SnapshotError> for Error {
    fn from(e: potemkin_snapshot::SnapshotError) -> Self {
        Error::Farm(FarmError::Snapshot(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use potemkin_vmm::DomainId;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FarmError::from(VmmError::NoSuchDomain(DomainId(3)));
        assert!(e.to_string().contains("dom3"));
        assert!(e.source().is_some());
        let c = FarmError::BadConfig { what: "no servers" };
        assert_eq!(c.to_string(), "bad config: no servers");
        assert!(c.source().is_none());
        let n = FarmError::NoCapacity;
        assert_eq!(n.to_string(), "no server has capacity");
        assert!(n.source().is_none());
    }

    #[test]
    fn umbrella_chains_sources() {
        use std::error::Error as _;
        let e = Error::from(FarmError::from(VmmError::NoSuchDomain(DomainId(3))));
        assert!(e.to_string().starts_with("farm:"));
        // farm -> vmm: two links down the chain.
        let farm_src = e.source().expect("farm source");
        assert!(farm_src.source().is_some(), "vmm cause is chained");
        let c = Error::from(ConfigError::new("FarmConfig", "servers", "must be > 0"));
        assert_eq!(c.to_string(), "config: FarmConfig.servers: must be > 0");
        assert!(c.source().is_some());
        let cli = Error::from(String::from("unknown flag"));
        assert_eq!(cli.to_string(), "cli: unknown flag");
        assert!(cli.source().is_none());
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().starts_with("io:"));
        assert!(io.source().is_some());
    }
}
