//! The Potemkin honeyfarm controller.
//!
//! This crate is the paper's *system*: it composes the gateway decision
//! engine (`potemkin-gateway`), a pool of VMM servers (`potemkin-vmm`), and
//! guest behaviour into a working honeyfarm.
//!
//! * [`farm`] — [`farm::Honeyfarm`]: executes every [`GatewayAction`]
//!   (flash-cloning on demand, delivering packets into guests, reflecting
//!   contained traffic back into the farm, recycling idle VMs) and models
//!   guest responses (service replies, exploit infection, worm dialogue).
//! * [`scenario`] — event-driven experiment drivers: telescope replay and
//!   in-farm worm outbreaks, with time-series instrumentation.
//! * [`baseline`] — the low-interaction (scripted) responder baseline for
//!   the fidelity comparison.
//! * [`checkpoint`] — whole-farm checkpoint/restore: crash-consistent
//!   snapshots of the sharded driver with integrity validation,
//!   deterministic resume, and what-if forks.
//! * [`federation`] — the federated multi-farm telescope: N member farm
//!   clusters behind the `potemkin-federation` routing tier, with
//!   cross-farm worm reflection over GRE and byte-identical merged
//!   reports across topology layouts.
//! * [`services`] — the interaction-fidelity plane: scenario packs from
//!   `potemkin-services` installed in every cell farm, driven by a fleet
//!   of closed-loop scripted attackers, with per-scenario capture
//!   metrics merged deterministically across cells.
//! * [`report`] — aggregated farm statistics.
//!
//! [`GatewayAction`]: potemkin_gateway::GatewayAction
//!
//! # Examples
//!
//! ```
//! use potemkin_core::farm::{FarmConfig, Honeyfarm};
//! use potemkin_net::PacketBuilder;
//! use potemkin_sim::SimTime;
//! use std::net::Ipv4Addr;
//!
//! let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
//! // A scanner probes a telescope address: a VM materializes and answers.
//! let probe = PacketBuilder::new(Ipv4Addr::new(6, 6, 6, 6), Ipv4Addr::new(10, 1, 0, 77))
//!     .tcp_syn(4444, 445);
//! farm.inject_external(SimTime::ZERO, probe);
//! assert_eq!(farm.live_vms(), 1);
//! let sent = farm.take_outputs();
//! assert!(!sent.is_empty(), "the honeypot answered the scanner");
//! ```

pub mod baseline;
pub mod checkpoint;
pub mod error;
pub mod farm;
pub mod federation;
pub mod parallel;
pub mod report;
pub mod scenario;
pub mod services;

pub use baseline::{LowInteractionResponder, ResponderKind};
pub use checkpoint::{
    config_fingerprint, fork_telescope_checkpointed, read_snapshot, recover_snapshot,
    resume_telescope_checkpointed, run_telescope_checkpointed, CheckpointOptions, CheckpointReport,
    CheckpointedRun,
};
pub use error::{Error, FarmError};
pub use farm::{FarmConfig, FarmConfigBuilder, Honeyfarm};
pub use federation::{
    run_telescope_federated, FarmLinkReport, FederatedTelescope, FederatedTelescopeConfig,
    FederatedTelescopeConfigBuilder, FederatedTelescopeResult, FederationReport,
};
pub use parallel::{
    cell_for, derive_cell_seed, run_telescope_sharded, CellMap, CellSlot, ShardedTelescopeConfig,
    ShardedTelescopeConfigBuilder, ShardedTelescopeResult,
};
pub use potemkin_gateway::ConfigError;
pub use report::{DegradationReport, FarmStats};
pub use scenario::{
    OutbreakConfig, OutbreakConfigBuilder, TelescopeConfig, TelescopeConfigBuilder,
};
pub use services::{
    run_interaction, InteractionConfig, InteractionConfigBuilder, InteractionResult,
};
