//! The low-interaction baseline responder.
//!
//! The paper motivates high-interaction honeyfarms by contrast with
//! honeyd-style scripted responders: cheap enough to cover millions of
//! addresses, but only able to follow an exploit as far as their scripts
//! anticipate. [`LowInteractionResponder`] models exactly that — a scripted
//! service emulation with a fixed dialogue depth — so the fidelity
//! experiment can race it against a Potemkin VM on the same exploit.

use potemkin_workload::dialogue::{DialogueOutcome, DialogueRequest, ExploitScript};

/// The kind of responder racing the exploit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponderKind {
    /// Scripted emulation that knows `depth` dialogue rounds per service.
    LowInteraction {
        /// Scripted dialogue depth.
        depth: u8,
    },
    /// A real guest image (a Potemkin VM): sustains any depth.
    HighInteraction,
}

/// A honeyd-style scripted responder.
#[derive(Clone, Debug)]
pub struct LowInteractionResponder {
    scripted_depth: u8,
    /// Ports the emulation pretends to serve.
    open_ports: Vec<u16>,
    answered: u64,
    stalled: u64,
}

impl LowInteractionResponder {
    /// Creates a responder whose scripts cover `scripted_depth` rounds on
    /// the given ports.
    #[must_use]
    pub fn new(scripted_depth: u8, open_ports: Vec<u16>) -> Self {
        LowInteractionResponder { scripted_depth, open_ports, answered: 0, stalled: 0 }
    }

    /// The scripted depth.
    #[must_use]
    pub fn scripted_depth(&self) -> u8 {
        self.scripted_depth
    }

    /// Whether the emulation serves `port`.
    #[must_use]
    pub fn serves(&self, port: u16) -> bool {
        self.open_ports.contains(&port)
    }

    /// Responds to one dialogue request, or `None` once past the scripted
    /// depth (the connection hangs/resets — the emulation has no idea what
    /// to say).
    pub fn respond(&mut self, request: &DialogueRequest) -> Option<Vec<u8>> {
        if request.round < self.scripted_depth {
            self.answered += 1;
            Some(format!("scripted-response-{}", request.round).into_bytes())
        } else {
            self.stalled += 1;
            None
        }
    }

    /// Drives a whole exploit against this responder.
    ///
    /// Returns the outcome (the payload is only captured when the script
    /// depth covers the exploit depth — and real exploits are built against
    /// real services, so in practice it never does).
    pub fn race(&mut self, exploit: &ExploitScript) -> DialogueOutcome {
        if !self.serves(exploit.port()) {
            return DialogueOutcome::StalledAt { rounds: 0 };
        }
        exploit.drive(|req| self.respond(req))
    }

    /// Lifetime `(answered, stalled)` counts.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.answered, self.stalled)
    }
}

/// Races an exploit against a high-interaction responder (a real guest):
/// every round is answered, so the payload is always captured.
#[must_use]
pub fn race_high_interaction(exploit: &ExploitScript) -> DialogueOutcome {
    exploit.drive(|req| Some(format!("real-service-response-{}", req.round).into_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exploit(depth: u8) -> ExploitScript {
        ExploitScript::new("test", 445, depth, b"PAYLOAD")
    }

    #[test]
    fn deep_exploit_defeats_shallow_script() {
        let mut low = LowInteractionResponder::new(2, vec![445]);
        let outcome = low.race(&exploit(3));
        assert_eq!(outcome, DialogueOutcome::StalledAt { rounds: 2 });
        assert!(!outcome.captured());
        assert_eq!(low.counts(), (2, 1));
    }

    #[test]
    fn shallow_exploit_fools_the_script_too() {
        // When the exploit needs fewer rounds than the script knows, even
        // the low-interaction responder "captures" it — the paper's point is
        // that real exploits are deeper than scripts.
        let mut low = LowInteractionResponder::new(3, vec![445]);
        assert!(low.race(&exploit(2)).captured());
    }

    #[test]
    fn unserved_port_stalls_immediately() {
        let mut low = LowInteractionResponder::new(5, vec![80]);
        assert_eq!(low.race(&exploit(1)), DialogueOutcome::StalledAt { rounds: 0 });
        assert!(!low.serves(445));
    }

    #[test]
    fn high_interaction_always_captures() {
        for depth in 1..=8 {
            let outcome = race_high_interaction(&exploit(depth));
            match outcome {
                DialogueOutcome::PayloadDelivered { payload, rounds } => {
                    assert_eq!(payload, b"PAYLOAD");
                    assert_eq!(rounds, depth);
                }
                other => panic!("depth {depth}: unexpected {other:?}"),
            }
        }
    }
}
