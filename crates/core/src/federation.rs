//! Federated multi-farm telescope replay.
//!
//! One [`ShardedTelescope`](crate::parallel) covers a single telescope
//! range on one simulated cluster. This driver grows to internet scale by
//! running N member farm clusters behind the
//! [`potemkin_federation`] routing tier: the monitored prefix is carved
//! into contiguous cell slices ([`CellMap::Sliced`]), farms are
//! power-of-two groupings of consecutive cells, each farm advertises its
//! aggregate prefix into a BGP-style longest-prefix route table, and
//! cross-farm traffic rides GRE uplinks through the tier — decapsulated,
//! routed, re-encapsulated — exactly like the paper's telescope-to-farm
//! backhaul, one level up.
//!
//! # Cross-farm reflection and the determinism argument
//!
//! The existing cell fabric already carries a reflected worm probe from
//! the cell that emitted it to the cell owning its destination
//! ([`FarmOutput::ForwardedCell`](crate::farm::FarmOutput)). Federation
//! lifts that fabric one level: when emitter and owner live in different
//! farms, the batch is GRE-encapsulated on the emitter farm's uplink,
//! transits the routing tier, and is decapsulated by the owning farm's
//! ingress — instantiating worm victims in another farm. Merged reports
//! stay **byte-identical across topology layouts** (1 farm ≡ 2 ≡ 16 for
//! the same total range, cells, and seed) because every layout-dependent
//! step is content-, order-, and time-preserving:
//!
//! * **Ownership is layout-invariant.** The cell partition is fixed by
//!   `(telescope, cells)` alone; farms are groupings of cells, so
//!   regrouping never moves an address between cells and never changes a
//!   cell's event order.
//! * **Transport is exact.** GRE encapsulation round-trips packet bytes
//!   exactly, batches preserve emission order 1:1, and tunneled batches
//!   are delivered at the same conservative window barrier, in the same
//!   canonical `(window, source cell)` order, as local fabric batches.
//! * **Admission is per-cell.** Global load-shedding consults the
//!   *destination cell's* farm pressure state — a pure function of
//!   simulation state — and applies to local and tunneled deliveries
//!   alike, so the same packets are shed in every layout.
//!
//! What *does* change with the layout is transport telemetry: how many
//! deliveries crossed a farm boundary, per-uplink byte counts. Those are
//! reported in [`FederationReport`] and excluded from determinism digests
//! by convention, like wall-clock engine telemetry.

use std::sync::{Arc, Mutex};

use potemkin_federation::{AdmissionConfig, FederationLayout, FederationRouter};
use potemkin_gateway::tunnel::{Telescope, TunnelEndpoint};
use potemkin_net::addr::Ipv4Prefix;
use potemkin_net::Packet;
use potemkin_sim::{
    run_sharded, EngineTuning, EventQueue, FaultPlanConfig, Shard, ShardConfig, ShardWorld,
    SimTime, World,
};

use crate::error::FarmError;
use crate::parallel::{
    assemble_result, encode_cell_aux, prepare_shards, restore_cell_aux, CellEvent, CellMap,
    CellWorld, HasCellWorld, PreparedRun, ShardedTelescopeConfig, ShardedTelescopeResult,
};
use crate::scenario::TelescopeConfig;

/// Configuration of a federated telescope replay.
///
/// Construct via [`FederatedTelescopeConfig::builder`]; the struct is
/// `#[non_exhaustive]`, so new knobs may be added without breaking
/// downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FederatedTelescopeConfig {
    /// The scenario. `base.radiation.telescope` is the *total* federated
    /// range, split across farms.
    pub base: TelescopeConfig,
    /// Member farm clusters (power of two). Changes transport topology,
    /// never merged results.
    pub farms: usize,
    /// Global address-space cells across the whole federation (power of
    /// two, `>= farms`). Fixed per run and layout-invariant: results
    /// depend on it, the farm grouping and worker count do not change
    /// them.
    pub cells: usize,
    /// Conservative barrier window width (shared by the cell fabric and
    /// the federation tier: one barrier spans both).
    pub window: SimTime,
    /// Per-cell fault plans, generated from this template with a per-cell
    /// derived seed (None = fault-free).
    pub faults: Option<FaultPlanConfig>,
    /// Patient-zero infections to seed (requires `base.farm.worm`).
    pub seed_infections: usize,
    /// Observability: adds one federation lane per cell (`fed.tunnel`,
    /// `fed.shed` instants) on top of the sharded lanes. Digest-invisible
    /// by construction.
    pub trace: Option<potemkin_obs::TraceConfig>,
    /// Engine performance tuning (see
    /// [`EngineTuning`]).
    pub tuning: EngineTuning,
    /// Global admission/load-shedding policy, keyed off the member farms'
    /// memory-pressure plumbing.
    pub admission: AdmissionConfig,
}

impl FederatedTelescopeConfig {
    /// A validating builder: one farm, one cell, a 500 ms window, no
    /// faults, no seed infections, tracing off, admission disabled.
    #[must_use]
    pub fn builder(base: TelescopeConfig) -> FederatedTelescopeConfigBuilder {
        FederatedTelescopeConfigBuilder {
            inner: FederatedTelescopeConfig {
                base,
                farms: 1,
                cells: 1,
                window: SimTime::from_millis(500),
                faults: None,
                seed_infections: 0,
                trace: None,
                tuning: EngineTuning::default(),
                admission: AdmissionConfig::disabled(),
            },
        }
    }

    /// The validated geometry of this configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`potemkin_gateway::ConfigError`] when `farms`/`cells`
    /// cannot slice the telescope (see [`FederationLayout::new`]).
    pub fn layout(&self) -> Result<FederationLayout, potemkin_gateway::ConfigError> {
        FederationLayout::new(self.base.radiation.telescope, self.farms, self.cells)
    }

    /// The underlying sharded configuration: the same scenario over the
    /// global sliced cell partition. A federated run with one farm *is*
    /// this sharded run — that identity is what `tests/prop_federation.rs`
    /// checks.
    fn sharded(&self) -> ShardedTelescopeConfig {
        let mut builder = ShardedTelescopeConfig::builder(self.base.clone())
            .cells(self.cells)
            .cell_map(CellMap::Sliced)
            .window(self.window)
            .seed_infections(self.seed_infections)
            .tuning(self.tuning);
        if let Some(faults) = self.faults {
            builder = builder.faults(faults);
        }
        if let Some(trace) = self.trace {
            builder = builder.trace(trace);
        }
        match builder.build() {
            Ok(config) => config,
            // Invalid combinations are caught again by `prepare_shards`;
            // fall back to an unvalidated assembly so the error surfaces
            // as a typed `FarmError` from the run, not a panic here.
            Err(_) => {
                let mut config = ShardedTelescopeConfig::builder(self.base.clone())
                    .build()
                    .expect("minimal config is valid");
                config.cells = self.cells;
                config.cell_map = CellMap::Sliced;
                config.window = self.window;
                config.faults = self.faults;
                config.seed_infections = self.seed_infections;
                config.trace = self.trace;
                config.tuning = self.tuning;
                config
            }
        }
    }
}

/// Typed builder for [`FederatedTelescopeConfig`]; see
/// [`FederatedTelescopeConfig::builder`].
#[derive(Clone, Debug)]
pub struct FederatedTelescopeConfigBuilder {
    inner: FederatedTelescopeConfig,
}

impl FederatedTelescopeConfigBuilder {
    /// Sets the member-farm count (power of two).
    #[must_use]
    pub fn farms(mut self, farms: usize) -> Self {
        self.inner.farms = farms;
        self
    }

    /// Sets the global cell count (power of two, `>= farms`).
    #[must_use]
    pub fn cells(mut self, cells: usize) -> Self {
        self.inner.cells = cells;
        self
    }

    /// Sets the conservative barrier window width.
    #[must_use]
    pub fn window(mut self, window: SimTime) -> Self {
        self.inner.window = window;
        self
    }

    /// Installs a per-cell fault-plan template.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlanConfig) -> Self {
        self.inner.faults = Some(faults);
        self
    }

    /// Sets the patient-zero count (requires the base farm's worm).
    #[must_use]
    pub fn seed_infections(mut self, n: usize) -> Self {
        self.inner.seed_infections = n;
        self
    }

    /// Enables per-cell tracing (federation lanes included).
    #[must_use]
    pub fn trace(mut self, trace: potemkin_obs::TraceConfig) -> Self {
        self.inner.trace = Some(trace);
        self
    }

    /// Sets the engine performance tuning.
    #[must_use]
    pub fn tuning(mut self, tuning: EngineTuning) -> Self {
        self.inner.tuning = tuning;
        self
    }

    /// Sets the global admission/load-shedding policy.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.inner.admission = admission;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`potemkin_gateway::ConfigError`] for an invalid layout
    /// (farms/cells/telescope geometry) or any error the underlying
    /// sharded builder reports (zero window, seeds without a worm, bad
    /// adaptive bounds).
    pub fn build(self) -> Result<FederatedTelescopeConfig, potemkin_gateway::ConfigError> {
        let c = self.inner;
        c.layout()?;
        // Reuse the sharded validation for the shared knobs.
        let mut probe = ShardedTelescopeConfig::builder(c.base.clone())
            .cells(c.cells)
            .cell_map(CellMap::Sliced)
            .window(c.window)
            .seed_infections(c.seed_infections)
            .tuning(c.tuning);
        if let Some(faults) = c.faults {
            probe = probe.faults(faults);
        }
        probe.build()?;
        Ok(c)
    }
}

/// Per-farm link accounting, merged across the farm's cells and the
/// routing tier. All transport telemetry: layout-dependent by nature and
/// excluded from determinism digests.
#[derive(Clone, Debug)]
pub struct FarmLinkReport {
    /// The member farm index.
    pub farm: usize,
    /// The aggregate prefix this farm advertises.
    pub prefix: Ipv4Prefix,
    /// Cells this farm runs.
    pub cells: usize,
    /// Packets the routing tier decapsulated from this farm's uplink.
    pub uplink_packets: u64,
    /// Inner bytes decapsulated from this farm's uplink.
    pub uplink_bytes: u64,
    /// Packets the tier forwarded down to this farm.
    pub downlink_packets: u64,
    /// Packets shed into this farm's cells by admission control.
    pub shed_packets: u64,
    /// This farm's uplink frames dropped for lack of a route.
    pub route_drops: u64,
}

/// The federation tier's merged report.
#[derive(Clone, Debug)]
pub struct FederationReport {
    /// Member farm clusters.
    pub farms: usize,
    /// Global cells across the federation.
    pub cells: usize,
    /// Total monitored addresses across all farm advertisements.
    pub monitored_addresses: u64,
    /// Routes installed at the tier (one per farm).
    pub advertised_routes: usize,
    /// Fabric packets that crossed a *farm* boundary over GRE. Transport
    /// telemetry: grows with the farm count for the same scenario (0 for
    /// one farm) and is excluded from determinism digests, unlike
    /// `cross_cell_packets`, which is layout-invariant.
    pub cross_farm_packets: u64,
    /// Fabric deliveries shed by admission control. Layout-invariant:
    /// shedding is decided per destination cell.
    pub shed_packets: u64,
    /// Uplink frames dropped for lack of a route (0 in a well-formed
    /// layout: every farm advertises its slice).
    pub route_drops: u64,
    /// Downlink frames a farm ingress failed to decapsulate (0 in a
    /// well-formed layout).
    pub decap_errors: u64,
    /// Per-farm link accounting.
    pub per_farm: Vec<FarmLinkReport>,
}

/// Result of a federated replay: the same merged deterministic report a
/// sharded run produces, plus the federation tier's transport telemetry.
#[derive(Clone, Debug)]
pub struct FederatedTelescopeResult {
    /// Merged across every cell of every farm — byte-identical across
    /// farm groupings and worker counts.
    pub merged: ShardedTelescopeResult,
    /// The routing tier's view (layout-dependent transport telemetry).
    pub federation: FederationReport,
}

/// A federated telescope: N member farms behind the routing tier.
#[derive(Clone, Debug)]
pub struct FederatedTelescope {
    config: FederatedTelescopeConfig,
}

impl FederatedTelescope {
    /// Wraps a validated configuration.
    #[must_use]
    pub fn new(config: FederatedTelescopeConfig) -> Self {
        FederatedTelescope { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FederatedTelescopeConfig {
        &self.config
    }

    /// Runs the federated replay on `workers` OS threads; see
    /// [`run_telescope_federated`].
    ///
    /// # Errors
    ///
    /// As [`run_telescope_federated`].
    pub fn run(&self, workers: usize) -> Result<FederatedTelescopeResult, FarmError> {
        run_telescope_federated(&self.config, workers)
    }
}

/// One barrier delivery on the federated fabric.
///
/// `Local` batches stay inside a farm and carry packets directly, exactly
/// like the sharded fabric. `Tunneled` batches crossed a farm boundary:
/// each packet was GRE-encapsulated on the source farm's uplink, transited
/// the routing tier, and arrives as a downlink frame keyed by the owning
/// farm — the destination cell decapsulates at the barrier. Frame order is
/// emission order, so delivery order matches the local case 1:1.
pub(crate) enum FedBatch {
    Local(Vec<Packet>),
    Tunneled(Vec<Vec<u8>>),
}

/// Per-cell federation counters (merged per farm at assembly).
#[derive(Clone, Copy, Default)]
struct FedCellStats {
    tunneled_in_packets: u64,
    shed_packets: u64,
    decap_errors: u64,
}

/// A cell of a member farm: the plain [`CellWorld`] plus the federation
/// hop for batches that cross a farm boundary.
pub(crate) struct FedCellWorld {
    inner: CellWorld,
    farm_id: usize,
    layout: FederationLayout,
    /// The shared routing tier. Locked only while staging a cross-farm
    /// batch; every counter behind the lock is additive, so worker-thread
    /// lock order cannot affect any reported total.
    router: Arc<Mutex<FederationRouter>>,
    /// This farm's downlink terminator (key = farm id, prefix = the
    /// farm's advertised aggregate).
    ingress: TunnelEndpoint,
    admission: AdmissionConfig,
    stats: FedCellStats,
    tracer: Option<potemkin_obs::Tracer>,
}

impl HasCellWorld for FedCellWorld {
    fn cell(&self) -> &CellWorld {
        &self.inner
    }
    fn cell_mut(&mut self) -> &mut CellWorld {
        &mut self.inner
    }
}

impl World for FedCellWorld {
    type Event = CellEvent;

    fn handle(&mut self, now: SimTime, event: CellEvent, q: &mut EventQueue<CellEvent>) {
        self.inner.handle(now, event, q);
    }
}

impl ShardWorld for FedCellWorld {
    type Remote = FedBatch;

    fn take_outbound(&mut self) -> Vec<(usize, FedBatch)> {
        self.inner
            .take_outbound()
            .into_iter()
            .map(|(dest_cell, packets)| {
                if self.layout.farm_of_cell(dest_cell) == self.farm_id {
                    (dest_cell, FedBatch::Local(packets))
                } else {
                    // The uplink hop: encapsulate with this farm's key,
                    // transit the tier (decap → longest-prefix route →
                    // re-encap with the owner's key). A packet the table
                    // cannot route is a counted drop at the tier — never
                    // delivered, never a panic. Frame order preserves
                    // packet order.
                    let mut router = self.router.lock().expect("router lock");
                    let frames = packets
                        .iter()
                        .filter_map(|p| {
                            router.forward(self.farm_id as u32, p).map(|(_, frame)| frame)
                        })
                        .collect();
                    (dest_cell, FedBatch::Tunneled(frames))
                }
            })
            .collect()
    }

    fn accept_remote(&mut self, at: SimTime, batch: FedBatch, queue: &mut EventQueue<CellEvent>) {
        let packets: Vec<Packet> = match batch {
            FedBatch::Local(packets) => packets,
            FedBatch::Tunneled(frames) => {
                let decapsulated: Vec<Packet> = frames
                    .iter()
                    .filter_map(|frame| match self.ingress.decapsulate(frame) {
                        Ok((_key, packet)) => Some(packet),
                        Err(_) => {
                            self.stats.decap_errors += 1;
                            None
                        }
                    })
                    .collect();
                self.stats.tunneled_in_packets += decapsulated.len() as u64;
                if let Some(tracer) = &mut self.tracer {
                    tracer.instant(at, potemkin_obs::names::FED_TUNNEL, decapsulated.len() as u64);
                }
                decapsulated
            }
        };
        // Global admission: shed once this cell's farm is under memory
        // pressure. The decision reads only destination-cell state and
        // applies to local and tunneled deliveries alike, so it is a pure
        // function of simulation state — identical in every farm grouping.
        if let Some(threshold) = self.admission.shed_after_pressure_events {
            if self.inner.farm.pressure_events().len() as u64 >= threshold {
                self.stats.shed_packets += packets.len() as u64;
                if let Some(tracer) = &mut self.tracer {
                    tracer.instant(at, potemkin_obs::names::FED_SHED, packets.len() as u64);
                }
                return;
            }
        }
        self.inner.accept_remote(at, packets, queue);
    }
}

/// Runs a federated telescope replay on `workers` OS threads.
///
/// `workers == 1` runs every cell of every farm on the calling thread (the
/// serial reference); any worker count — and any power-of-two farm count
/// over the same total range, cells, and seed — produces a byte-identical
/// merged report (see the module docs for the argument, and
/// `tests/prop_federation.rs` for the property).
///
/// # Errors
///
/// Returns [`FarmError::BadConfig`] for an invalid layout (farm/cell
/// geometry), seed infections without a worm, or a farm the cells cannot
/// build.
pub fn run_telescope_federated(
    config: &FederatedTelescopeConfig,
    workers: usize,
) -> Result<FederatedTelescopeResult, FarmError> {
    let layout =
        config.layout().map_err(|_| FarmError::BadConfig { what: "invalid federation layout" })?;
    let sharded = config.sharded();
    let PreparedRun { shards, meta } = prepare_shards(&sharded, true)?;
    let router = Arc::new(Mutex::new(
        layout.router().map_err(|_| FarmError::BadConfig { what: "farm prefixes overlap" })?,
    ));

    let mut fed_shards: Vec<Shard<FedCellWorld>> = shards
        .into_iter()
        .enumerate()
        .map(|(cell, shard)| {
            let farm_id = layout.farm_of_cell(cell);
            let mut ingress = TunnelEndpoint::new();
            ingress
                .attach(Telescope { key: farm_id as u32, prefix: layout.farm_prefix(farm_id) })
                .expect("one telescope cannot overlap itself");
            let tracer = config.trace.map(|trace_config| {
                potemkin_obs::Tracer::new((config.cells * 3 + cell) as u32, trace_config)
            });
            Shard {
                world: FedCellWorld {
                    inner: shard.world,
                    farm_id,
                    layout,
                    router: Arc::clone(&router),
                    ingress,
                    admission: config.admission,
                    stats: FedCellStats::default(),
                    tracer,
                },
                queue: shard.queue,
            }
        })
        .collect();

    let engine = run_sharded(
        &mut fed_shards,
        config.base.duration,
        &ShardConfig { window: config.window, workers, tuning: config.tuning },
    );

    let mut merged = assemble_result(&sharded, &mut fed_shards, engine, &meta);
    if config.trace.is_some() {
        for (cell, shard) in fed_shards.iter_mut().enumerate() {
            if let Some(tracer) = &mut shard.world.tracer {
                merged.trace.extend(tracer.drain());
            }
            merged
                .trace_lanes
                .push(((config.cells * 3 + cell) as u32, format!("cell {cell} federation")));
        }
        merged.trace.sort_by_key(|e| (e.at, e.lane, e.seq));
    }

    let router = router.lock().expect("router lock");
    let federation = assemble_federation(&layout, &router, &fed_shards);
    Ok(FederatedTelescopeResult { merged, federation })
}

/// Merges the routing tier's counters with the per-cell federation stats.
fn assemble_federation(
    layout: &FederationLayout,
    router: &FederationRouter,
    shards: &[Shard<FedCellWorld>],
) -> FederationReport {
    let mut per_farm = Vec::with_capacity(layout.farms());
    let mut cross_farm_packets = 0;
    let mut shed_packets = 0;
    let mut decap_errors = 0;
    for farm in 0..layout.farms() {
        let uplink = router.uplink_stats(farm as u32);
        let link = router.link_stats(farm as u32);
        let mut farm_shed = 0;
        let mut farm_tunneled_in = 0;
        for shard in shards.iter().filter(|s| s.world.farm_id == farm) {
            farm_shed += shard.world.stats.shed_packets;
            farm_tunneled_in += shard.world.stats.tunneled_in_packets;
            decap_errors += shard.world.stats.decap_errors;
        }
        cross_farm_packets += farm_tunneled_in;
        shed_packets += farm_shed;
        per_farm.push(FarmLinkReport {
            farm,
            prefix: layout.farm_prefix(farm),
            cells: layout.cells_per_farm(),
            uplink_packets: uplink.packets_in,
            uplink_bytes: uplink.bytes_in,
            downlink_packets: link.downlink_packets,
            shed_packets: farm_shed,
            route_drops: link.route_drops,
        });
    }
    FederationReport {
        farms: layout.farms(),
        cells: layout.cells(),
        monitored_addresses: router.monitored_addresses(),
        advertised_routes: router.advertised_routes(),
        cross_farm_packets,
        shed_packets,
        route_drops: router.route_drops(),
        decap_errors,
        per_farm,
    }
}

/// Encodes one federated cell's driver state for a snapshot section: the
/// wrapped cell's aux state (live-VM samples, fabric counters, staged
/// packets), the federation counters, and the ingress tunnel statistics.
/// The farm itself and the event queue use the same sections a sharded
/// checkpoint writes; the routing tier adds one `federation.router`
/// section ([`FederationRouter::encode_state`]).
// Exercised by the snapshot round-trip test until the checkpoint driver
// grows a federated front-end; kept out of the public API because the
// section layout is an internal format.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn encode_fed_aux(world: &FedCellWorld) -> Vec<u8> {
    let mut w = potemkin_snapshot::SnapWriter::new();
    w.bytes(&encode_cell_aux(&world.inner));
    w.u64(world.stats.tunneled_in_packets);
    w.u64(world.stats.shed_packets);
    w.u64(world.stats.decap_errors);
    w.bytes(&world.ingress.encode_state());
    w.into_bytes()
}

/// Restores state captured by [`encode_fed_aux`] into a freshly prepared
/// federated cell world.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn restore_fed_aux(
    world: &mut FedCellWorld,
    bytes: &[u8],
) -> Result<(), potemkin_snapshot::SnapshotError> {
    let mut r = potemkin_snapshot::SnapReader::new(bytes, "core.fed.cell");
    let inner_bytes = r.bytes()?.to_vec();
    let tunneled_in_packets = r.u64()?;
    let shed_packets = r.u64()?;
    let decap_errors = r.u64()?;
    let ingress_bytes = r.bytes()?.to_vec();
    r.finish()?;
    restore_cell_aux(&mut world.inner, &inner_bytes)?;
    world.ingress.restore_state(&ingress_bytes)?;
    world.stats = FedCellStats { tunneled_in_packets, shed_packets, decap_errors };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::FarmConfig;
    use potemkin_gateway::policy::PolicyConfig;
    use potemkin_workload::radiation::RadiationConfig;
    use potemkin_workload::worm::WormSpec;

    fn federated_config(farms: usize, cells: usize) -> FederatedTelescopeConfig {
        let mut farm = FarmConfig::small_test();
        farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
        farm.frames_per_server = 262_144;
        // The worm targets the whole monitored /16, so reflected probes
        // cross cell boundaries at any cells >= 2 and farm boundaries at
        // any farms >= 2.
        farm.worm = Some(WormSpec::code_red("10.1.0.0/16".parse().unwrap()));
        let base = TelescopeConfig {
            farm,
            radiation: RadiationConfig::default(),
            seed: 2005,
            duration: SimTime::from_secs(5),
            sample_interval: SimTime::from_secs(1),
            tick_interval: SimTime::from_secs(1),
        };
        FederatedTelescopeConfig::builder(base)
            .farms(farms)
            .cells(cells)
            .window(SimTime::from_millis(500))
            .seed_infections(2)
            .build()
            .unwrap()
    }

    /// The deterministic face of a federated result: everything in the
    /// sharded digest plus the layout-invariant shed counter. Transport
    /// telemetry (cross-farm counts, uplink bytes) is excluded by
    /// convention.
    fn digest(r: &FederatedTelescopeResult) -> String {
        format!(
            "{}|{}|{}|{}|{}|{:?}|{}|{}",
            r.merged.degradation.canonical_string(),
            r.merged.stats.counters.get("packets_in"),
            r.merged.packets,
            r.merged.cross_cell_packets,
            r.merged.final_infected,
            r.merged.live_vm_series.iter().collect::<Vec<_>>(),
            r.merged.engine.remote_messages,
            r.federation.shed_packets,
        )
    }

    #[test]
    fn merged_reports_are_identical_across_farm_groupings() {
        let reference = run_telescope_federated(&federated_config(1, 8), 1).unwrap();
        assert!(reference.merged.packets > 50);
        assert!(reference.merged.cross_cell_packets > 0, "worm must cross cells");
        assert_eq!(reference.federation.cross_farm_packets, 0, "one farm: nothing tunnels");
        for farms in [2, 4, 8] {
            for workers in [1, 4] {
                let run = run_telescope_federated(&federated_config(farms, 8), workers).unwrap();
                assert_eq!(
                    digest(&reference),
                    digest(&run),
                    "farms={farms} workers={workers} diverged"
                );
                assert_eq!(run.federation.farms, farms);
                assert_eq!(run.federation.route_drops, 0);
                assert_eq!(run.federation.decap_errors, 0);
            }
        }
        // The worm space spans every farm prefix: reflection must
        // actually cross the tier.
        let split = run_telescope_federated(&federated_config(4, 8), 2).unwrap();
        assert!(split.federation.cross_farm_packets > 0, "worm must cross farms via GRE");
        assert!(
            split.federation.per_farm.iter().any(|f| f.uplink_packets > 0),
            "uplinks must carry traffic"
        );
        assert_eq!(split.merged.degradation.escaped, 0, "containment holds across the tier");
    }

    #[test]
    fn admission_sheds_identically_across_layouts() {
        let tighten = |mut config: FederatedTelescopeConfig| {
            // A tiny per-host frame budget forces pressure events early;
            // shedding starts after the first one.
            config.base.farm.memory_budget_frames = Some(24_000);
            config.admission = AdmissionConfig::shed_after(1);
            config
        };
        let one = run_telescope_federated(&tighten(federated_config(1, 8)), 1).unwrap();
        assert!(one.federation.shed_packets > 0, "budget must trigger shedding");
        for farms in [2, 8] {
            let many = run_telescope_federated(&tighten(federated_config(farms, 8)), 4).unwrap();
            assert_eq!(digest(&one), digest(&many), "farms={farms}");
            assert_eq!(many.federation.shed_packets, one.federation.shed_packets);
        }
    }

    #[test]
    fn federation_tracing_is_digest_invisible() {
        let plain = run_telescope_federated(&federated_config(4, 8), 2).unwrap();
        let mut traced_config = federated_config(4, 8);
        traced_config.trace = Some(potemkin_obs::TraceConfig::unbounded());
        let traced = run_telescope_federated(&traced_config, 2).unwrap();
        assert_eq!(digest(&plain), digest(&traced), "tracing must be observer-effect-free");
        assert!(!traced.merged.trace.is_empty(), "federation lanes must record");
        let fed_lane_base = (traced_config.cells * 3) as u32;
        assert!(
            traced.merged.trace_lanes.iter().any(|(lane, _)| *lane >= fed_lane_base),
            "federation lanes must be registered"
        );
        assert!(
            traced.merged.trace.iter().any(|e| e.name() == potemkin_obs::names::FED_TUNNEL),
            "cross-farm deliveries must trace"
        );
    }

    #[test]
    fn federated_snapshot_sections_round_trip() {
        use potemkin_snapshot::SnapshotFile;
        // Run a federated replay to completion, capture its federation
        // sections, and restore them into a freshly prepared topology.
        let config = federated_config(4, 8);
        let layout = config.layout().unwrap();
        let sharded = config.sharded();
        let PreparedRun { shards, meta } = prepare_shards(&sharded, true).unwrap();
        let router = Arc::new(Mutex::new(layout.router().unwrap()));
        let mut fed: Vec<Shard<FedCellWorld>> = shards
            .into_iter()
            .enumerate()
            .map(|(cell, s)| {
                let farm_id = layout.farm_of_cell(cell);
                let mut ingress = TunnelEndpoint::new();
                ingress
                    .attach(Telescope { key: farm_id as u32, prefix: layout.farm_prefix(farm_id) })
                    .unwrap();
                Shard {
                    world: FedCellWorld {
                        inner: s.world,
                        farm_id,
                        layout,
                        router: Arc::clone(&router),
                        ingress,
                        admission: config.admission,
                        stats: FedCellStats::default(),
                        tracer: None,
                    },
                    queue: s.queue,
                }
            })
            .collect();
        let _ = meta;
        run_sharded(
            &mut fed,
            config.base.duration,
            &ShardConfig { window: config.window, workers: 2, tuning: config.tuning },
        );

        // Write the federated checkpoint sections.
        let mut file = SnapshotFile::new(0xfed);
        file.push("federation.router", router.lock().unwrap().encode_state());
        for (cell, shard) in fed.iter().enumerate() {
            file.push(&format!("fed{cell}.aux"), encode_fed_aux(&shard.world));
        }
        let encoded = file.encode();
        let decoded = SnapshotFile::decode(&encoded).unwrap();

        // Restore into a freshly prepared identical topology.
        let PreparedRun { shards: fresh, .. } = prepare_shards(&sharded, false).unwrap();
        let fresh_router = Arc::new(Mutex::new(layout.router().unwrap()));
        let mut restored: Vec<Shard<FedCellWorld>> = fresh
            .into_iter()
            .enumerate()
            .map(|(cell, s)| {
                let farm_id = layout.farm_of_cell(cell);
                let mut ingress = TunnelEndpoint::new();
                ingress
                    .attach(Telescope { key: farm_id as u32, prefix: layout.farm_prefix(farm_id) })
                    .unwrap();
                Shard {
                    world: FedCellWorld {
                        inner: s.world,
                        farm_id,
                        layout,
                        router: Arc::clone(&fresh_router),
                        ingress,
                        admission: config.admission,
                        stats: FedCellStats::default(),
                        tracer: None,
                    },
                    queue: s.queue,
                }
            })
            .collect();
        fresh_router
            .lock()
            .unwrap()
            .restore_state(decoded.section("federation.router").unwrap())
            .unwrap();
        for (cell, shard) in restored.iter_mut().enumerate() {
            restore_fed_aux(&mut shard.world, decoded.section(&format!("fed{cell}.aux")).unwrap())
                .unwrap();
        }

        // Re-encoding every restored section must be bit-identical.
        assert_eq!(
            fresh_router.lock().unwrap().encode_state(),
            router.lock().unwrap().encode_state()
        );
        for (cell, shard) in restored.iter().enumerate() {
            assert_eq!(
                encode_fed_aux(&shard.world),
                decoded.section(&format!("fed{cell}.aux")).unwrap(),
                "cell {cell} aux must round-trip"
            );
        }
        // Truncated sections are rejected, not misdecoded.
        let aux = decoded.section("fed0.aux").unwrap();
        let mut scratch = restored.pop().unwrap();
        assert!(restore_fed_aux(&mut scratch.world, &aux[..aux.len() - 1]).is_err());
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        let base = federated_config(1, 8).base;
        assert!(FederatedTelescopeConfig::builder(base.clone()).farms(3).cells(8).build().is_err());
        assert!(FederatedTelescopeConfig::builder(base.clone()).farms(8).cells(4).build().is_err());
        assert!(FederatedTelescopeConfig::builder(base.clone())
            .farms(2)
            .cells(4)
            .window(SimTime::ZERO)
            .build()
            .is_err());
        assert!(FederatedTelescopeConfig::builder(base).farms(2).cells(4).build().is_ok());
        // Mutated-after-build invalidity surfaces as a typed run error.
        let mut config = federated_config(2, 4);
        config.farms = 3;
        assert!(matches!(run_telescope_federated(&config, 1), Err(FarmError::BadConfig { .. })));
    }

    #[test]
    fn federated_telescope_wrapper_runs() {
        let telescope = FederatedTelescope::new(federated_config(2, 4));
        assert_eq!(telescope.config().farms, 2);
        let result = telescope.run(2).unwrap();
        assert_eq!(result.federation.farms, 2);
        assert_eq!(result.federation.advertised_routes, 2);
        assert_eq!(
            result.federation.monitored_addresses,
            telescope.config().base.radiation.telescope.len()
        );
    }
}
