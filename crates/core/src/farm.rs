//! The honeyfarm controller.
//!
//! [`Honeyfarm`] wires the gateway decision engine to a pool of VMM servers
//! and executes every gateway action: flash-cloning a VM on first contact,
//! delivering packets into guests, feeding guest responses back through the
//! containment policy, reflecting contained traffic onto fresh honeypots,
//! and recycling idle VMs. Guest *network* behaviour (what a honeypot says
//! back, when an exploit succeeds) is modeled here, on top of the page-level
//! guest activity models in `potemkin-vmm`.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use potemkin_gateway::binding::VmRef;
use potemkin_gateway::gateway::{Gateway, GatewayAction, GatewayConfig};
use potemkin_gateway::policy::DropReason;
use potemkin_gateway::reclaim::{ReclaimPolicy, ReclaimPolicyKind};
use potemkin_gateway::ConfigError;
use potemkin_metrics::{CounterSet, FaultClass, FaultLedger, LogHistogram, TimeSeries};
use potemkin_net::icmp::IcmpMessage;
use potemkin_net::tcp::TcpFlags;
use potemkin_net::{BufferPool, Packet, PacketBuilder, PacketPayload, PoolStats};
use potemkin_obs::{names as obs, TraceConfig, TraceEvent, Tracer};
use potemkin_services::{ServiceEngine, ServicesConfig};
use potemkin_sim::{FaultInjector, FaultKind, FaultPlan, SimRng, SimTime};
use potemkin_snapshot::{SnapReader, SnapshotError};
use potemkin_vmm::cost::CostModel;
use potemkin_vmm::guest::GuestProfile;
use potemkin_vmm::{
    CloneTiming, DomainId, Host, ImageId, MemoryBudget, MergeReport, PressureEvent, RetryPolicy,
    SharedChunkStore, SharingReport, StoreStats, VmmError,
};
use potemkin_workload::worm::WormSpec;

use crate::error::FarmError;
use crate::report::FarmStats;

/// How the farm reclaims a VM when its address binding expires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecycleStrategy {
    /// Destroy the domain; the next binding flash-clones a fresh one.
    DestroyAndClone,
    /// Roll the domain back to the pristine image and keep it on the
    /// standby pool (the paper's cheaper recycling path: domain structures
    /// survive, only the memory/disk delta is discarded).
    RollbackToPool,
}

/// Farm-level configuration.
///
/// Construct via [`FarmConfig::builder`] (validated), or start from a
/// preset ([`FarmConfig::small_test`], [`FarmConfig::paper_scale`]) and
/// mutate fields. The struct is `#[non_exhaustive]`: new knobs may be
/// added without breaking downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FarmConfig {
    /// Gateway configuration (containment policy, binding granularity).
    pub gateway: GatewayConfig,
    /// Number of physical servers.
    pub servers: usize,
    /// Machine frames per server.
    pub frames_per_server: u64,
    /// The guest image every server hosts.
    pub profile: GuestProfile,
    /// The VMM latency model.
    pub cost_model: CostModel,
    /// Fixed per-domain page overhead.
    pub overhead_pages: u64,
    /// Max simultaneously live domains per server.
    pub max_domains_per_server: usize,
    /// The worm behaviour infected guests exhibit (None = no worm in play).
    pub worm: Option<WormSpec>,
    /// RNG seed for guest/worm randomness.
    pub seed: u64,
    /// How expired VMs are reclaimed.
    pub recycle: RecycleStrategy,
    /// Number of pre-cloned standby VMs kept per server to hide flash-clone
    /// latency on first contact (0 disables the pool). Standby domains
    /// count toward `max_domains_per_server` and always use the default
    /// `profile`.
    pub standby_per_host: usize,
    /// Heterogeneous impersonation: addresses inside a listed prefix are
    /// served by the mapped guest profile (first match wins); everything
    /// else uses the default `profile`. Every server hosts a reference
    /// image per profile.
    pub address_profiles: Vec<(potemkin_net::addr::Ipv4Prefix, GuestProfile)>,
    /// When the farm is full and a new address needs a VM, evict the oldest
    /// binding instead of dropping the packet (the paper's replace-oldest
    /// resource policy).
    pub evict_on_pressure: bool,
    /// Bounded retry for transient clone faults (None = fail fast). Only
    /// injected faults are transient, so this is inert without a fault
    /// plan.
    pub retry: Option<RetryPolicy>,
    /// When a new address cannot get a full VM, fall down the degradation
    /// ladder (stateless SYN/ACK responder, then drop-with-count) instead
    /// of dropping outright. Off by default so fault-free runs are
    /// unchanged.
    pub degradation_ladder: bool,
    /// Which binding the farm reclaims under memory pressure (only
    /// consulted when `evict_on_pressure` is set). Defaults to
    /// [`ReclaimPolicyKind::Oldest`], the pre-policy behaviour.
    pub reclaim_policy: ReclaimPolicyKind,
    /// Per-host cap on resident frames, checked before each flash clone
    /// (None = no budget; only the physical frame count limits). A clone
    /// that would exceed the budget raises a typed [`PressureEvent`] and
    /// the host is skipped, driving the pressure-eviction path.
    pub memory_budget_frames: Option<u64>,
    /// Period of the content-index merge pass over every host (None =
    /// merging off, the seed behaviour). When set, each
    /// [`Honeyfarm::tick`] that crosses a period boundary runs one
    /// deterministic [`Host::scan_and_merge`] sweep.
    ///
    /// [`Host::scan_and_merge`]: potemkin_vmm::host::Host::scan_and_merge
    pub merge_interval: Option<SimTime>,
    /// The adaptive interaction plane (None = the seed's fixed
    /// `220 service ready` banner on every listening port). When set,
    /// inbound data on listening ports is classified and answered by the
    /// scenario engine ([`potemkin_services`]), and captured scenario
    /// payloads flow into the farm's capture table.
    pub services: Option<ServicesConfig>,
    /// Chunk size (in blocks) of the content-addressed store backing every
    /// reference-image disk. `1` reproduces the flat one-word-per-chunk
    /// layout; results are byte-identical at any value — only checkpoint
    /// size and dedupe accounting change.
    pub disk_chunk_blocks: u64,
}

impl FarmConfig {
    /// A small configuration for tests and examples: one server, 256 MiB,
    /// the small guest profile, default reflection policy.
    #[must_use]
    pub fn small_test() -> Self {
        FarmConfig {
            gateway: GatewayConfig::default(),
            servers: 1,
            frames_per_server: 65_536,
            profile: GuestProfile::small(),
            cost_model: CostModel::default(),
            overhead_pages: 64,
            max_domains_per_server: 1_024,
            worm: None,
            seed: 42,
            recycle: RecycleStrategy::DestroyAndClone,
            standby_per_host: 0,
            address_profiles: Vec::new(),
            evict_on_pressure: false,
            retry: None,
            degradation_ladder: false,
            reclaim_policy: ReclaimPolicyKind::Oldest,
            memory_budget_frames: None,
            merge_interval: None,
            services: None,
            disk_chunk_blocks: potemkin_vmm::DEFAULT_CHUNK_BLOCKS,
        }
    }

    /// The paper-scale configuration: a handful of servers backing a /16
    /// telescope with 128 MiB Windows-like guests.
    #[must_use]
    pub fn paper_scale(servers: usize) -> Self {
        FarmConfig {
            gateway: GatewayConfig::default(),
            servers,
            frames_per_server: 2 * 1024 * 1024 / 4 * 1024, // 2 GiB in 4 KiB frames
            profile: GuestProfile::windows_server(),
            cost_model: CostModel::default(),
            overhead_pages: potemkin_vmm::host::DOMAIN_OVERHEAD_PAGES,
            max_domains_per_server: 116, // the Xen-era limit the paper hit
            worm: None,
            seed: 42,
            recycle: RecycleStrategy::RollbackToPool,
            standby_per_host: 8,
            address_profiles: Vec::new(),
            evict_on_pressure: true,
            retry: None,
            degradation_ladder: false,
            reclaim_policy: ReclaimPolicyKind::Oldest,
            memory_budget_frames: None,
            merge_interval: None,
            services: None,
            disk_chunk_blocks: potemkin_vmm::DEFAULT_CHUNK_BLOCKS,
        }
    }

    /// A validating builder seeded from [`FarmConfig::small_test`].
    #[must_use]
    pub fn builder() -> FarmConfigBuilder {
        FarmConfigBuilder { inner: FarmConfig::small_test() }
    }
}

/// Typed builder for [`FarmConfig`]; see [`FarmConfig::builder`].
#[derive(Clone, Debug)]
pub struct FarmConfigBuilder {
    inner: FarmConfig,
}

impl FarmConfigBuilder {
    /// Sets the gateway configuration.
    #[must_use]
    pub fn gateway(mut self, gateway: GatewayConfig) -> Self {
        self.inner.gateway = gateway;
        self
    }

    /// Sets the physical server count.
    #[must_use]
    pub fn servers(mut self, servers: usize) -> Self {
        self.inner.servers = servers;
        self
    }

    /// Sets machine frames per server.
    #[must_use]
    pub fn frames_per_server(mut self, frames: u64) -> Self {
        self.inner.frames_per_server = frames;
        self
    }

    /// Sets the default guest image profile.
    #[must_use]
    pub fn profile(mut self, profile: GuestProfile) -> Self {
        self.inner.profile = profile;
        self
    }

    /// Sets the VMM latency model.
    #[must_use]
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.inner.cost_model = cost_model;
        self
    }

    /// Sets the fixed per-domain page overhead.
    #[must_use]
    pub fn overhead_pages(mut self, pages: u64) -> Self {
        self.inner.overhead_pages = pages;
        self
    }

    /// Sets the per-server live-domain cap.
    #[must_use]
    pub fn max_domains_per_server(mut self, max: usize) -> Self {
        self.inner.max_domains_per_server = max;
        self
    }

    /// Sets the worm infected guests exhibit.
    #[must_use]
    pub fn worm(mut self, worm: WormSpec) -> Self {
        self.inner.worm = Some(worm);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the VM recycling strategy.
    #[must_use]
    pub fn recycle(mut self, recycle: RecycleStrategy) -> Self {
        self.inner.recycle = recycle;
        self
    }

    /// Sets the per-host standby-pool size.
    #[must_use]
    pub fn standby_per_host(mut self, n: usize) -> Self {
        self.inner.standby_per_host = n;
        self
    }

    /// Sets heterogeneous per-prefix guest profiles.
    #[must_use]
    pub fn address_profiles(
        mut self,
        profiles: Vec<(potemkin_net::addr::Ipv4Prefix, GuestProfile)>,
    ) -> Self {
        self.inner.address_profiles = profiles;
        self
    }

    /// Enables or disables pressure eviction.
    #[must_use]
    pub fn evict_on_pressure(mut self, on: bool) -> Self {
        self.inner.evict_on_pressure = on;
        self
    }

    /// Sets bounded retry for transient clone faults.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.inner.retry = Some(retry);
        self
    }

    /// Enables or disables the degradation ladder.
    #[must_use]
    pub fn degradation_ladder(mut self, on: bool) -> Self {
        self.inner.degradation_ladder = on;
        self
    }

    /// Sets the pressure-reclaim policy.
    #[must_use]
    pub fn reclaim_policy(mut self, policy: ReclaimPolicyKind) -> Self {
        self.inner.reclaim_policy = policy;
        self
    }

    /// Sets the per-host resident-frame budget.
    #[must_use]
    pub fn memory_budget_frames(mut self, frames: u64) -> Self {
        self.inner.memory_budget_frames = Some(frames);
        self
    }

    /// Sets the content-merge pass period.
    #[must_use]
    pub fn merge_interval(mut self, interval: SimTime) -> Self {
        self.inner.merge_interval = Some(interval);
        self
    }

    /// Installs the adaptive interaction plane (scenario-driven service
    /// responses instead of the fixed banner).
    #[must_use]
    pub fn services(mut self, services: ServicesConfig) -> Self {
        self.inner.services = Some(services);
        self
    }

    /// Sets the chunk size (in blocks) of the shared disk store.
    #[must_use]
    pub fn disk_chunk_blocks(mut self, blocks: u64) -> Self {
        self.inner.disk_chunk_blocks = blocks;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero servers, zero frames, a zero
    /// memory budget, or a zero merge interval.
    pub fn build(self) -> Result<FarmConfig, ConfigError> {
        let c = self.inner;
        if c.servers == 0 {
            return Err(ConfigError::new("FarmConfig", "servers", "must be > 0"));
        }
        if c.frames_per_server == 0 {
            return Err(ConfigError::new("FarmConfig", "frames_per_server", "must be > 0"));
        }
        if c.max_domains_per_server == 0 {
            return Err(ConfigError::new("FarmConfig", "max_domains_per_server", "must be > 0"));
        }
        if c.memory_budget_frames == Some(0) {
            return Err(ConfigError::new(
                "FarmConfig",
                "memory_budget_frames",
                "budget of zero frames admits nothing; use None to disable",
            ));
        }
        if c.merge_interval == Some(SimTime::ZERO) {
            return Err(ConfigError::new(
                "FarmConfig",
                "merge_interval",
                "must be > 0; use None to disable merging",
            ));
        }
        if c.disk_chunk_blocks == 0 {
            return Err(ConfigError::new(
                "FarmConfig",
                "disk_chunk_blocks",
                "must be > 0; use 1 for the flat layout",
            ));
        }
        Ok(c)
    }
}

/// Provenance record of one infection — who infected whom, how (the
/// attribution data the paper's per-source binding refinement enables).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfectionRecord {
    /// The newly infected VM.
    pub vm: VmRef,
    /// The address the VM impersonates.
    pub victim_addr: Option<Ipv4Addr>,
    /// The source address of the infecting packet (an external attacker or
    /// an in-farm honeypot under reflection).
    pub infected_by: Ipv4Addr,
    /// The exploited destination port.
    pub port: Option<u16>,
    /// Whether the infecting source was itself a farm honeypot (internal
    /// epidemic) rather than an external host.
    pub internal_origin: bool,
    /// Virtual time of the infection.
    pub at: SimTime,
}

/// A captured exploit payload (deduplicated by content).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureRecord {
    /// The payload bytes as delivered to the guest.
    pub payload: Vec<u8>,
    /// The service port it arrived on.
    pub port: u16,
    /// The first source observed delivering it.
    pub first_source: Ipv4Addr,
    /// Virtual time of first capture.
    pub first_seen: SimTime,
    /// How many times this exact payload has been delivered.
    pub hits: u64,
}

/// Externally visible farm emissions, recorded for assertions and reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FarmOutput {
    /// A packet left the farm toward the real Internet.
    SentExternal(Packet),
    /// A reflected packet whose destination address is owned by another
    /// cell of a sharded farm (see [`crate::parallel`]): the internal
    /// fabric must tunnel it to the owning cell's gateway. The owning
    /// cell index is resolved once at emission so the fabric never
    /// re-derives it per packet.
    ForwardedCell {
        /// The reflected packet.
        packet: Packet,
        /// Index of the cell that owns `packet.dst()`.
        cell: usize,
    },
    /// An inbound packet was dropped with a reason.
    DroppedInbound(DropReason),
    /// An outbound (guest-emitted) packet was dropped with a reason.
    DroppedOutbound(DropReason),
}

#[derive(Clone, Copy)]
struct VmSlot {
    host: usize,
    domain: DomainId,
}

/// The honeyfarm: gateway + server pool + guest behaviour.
pub struct Honeyfarm {
    config: Arc<FarmConfig>,
    gateway: Gateway,
    hosts: Vec<Host>,
    /// Per host: one image per profile (index 0 = the default profile).
    images: Vec<Vec<ImageId>>,
    vms: HashMap<VmRef, VmSlot>,
    /// Pre-cloned, unbound, pristine domains per host.
    standby: Vec<Vec<DomainId>>,
    next_vmref: u64,
    next_host: usize,
    rng: SimRng,
    request_counter: u64,
    /// VMs infected since the last drain (the scenario schedules their
    /// scanning).
    newly_infected: Vec<VmRef>,
    /// Full provenance log of every infection.
    infection_log: Vec<InfectionRecord>,
    /// Captured exploit payloads, keyed by content hash.
    captures: HashMap<u64, CaptureRecord>,
    outputs: Vec<FarmOutput>,
    counters: CounterSet,
    clone_latency_us: LogHistogram,
    last_clone_timing: Option<CloneTiming>,
    /// Virtual time spent in VMM operations (clone + destroy + faults).
    vmm_time: SimTime,
    /// Scheduled fault events (None = fault-free run).
    faults: Option<FaultInjector>,
    /// RNG for fault decisions. Seeded independently of `rng` (not forked
    /// from it) so installing a zero fault plan leaves every main-path
    /// draw, and hence every fault-free result, byte-identical.
    fault_rng: SimRng,
    fault_ledger: FaultLedger,
    /// Addresses orphaned by a host crash, with the crash time — resolved
    /// (into the MTTR histogram) when the address is re-bound.
    pending_rebinds: HashMap<Ipv4Addr, SimTime>,
    /// Probability an individual clone attempt fails (from the fault plan).
    clone_failure_prob: f64,
    /// When this farm is one cell of a sharded run: which slice of the
    /// telescope it owns. Reflections to addresses outside the slice are
    /// surfaced as [`FarmOutput::ForwardedCell`] instead of re-entering
    /// locally.
    cell: Option<crate::parallel::CellSlot>,
    /// Tunnel degradation window state.
    tunnel_degraded_until: SimTime,
    tunnel_loss: f64,
    tunnel_extra_latency: SimTime,
    /// Observability lane (disabled by default: one branch per call site).
    tracer: Tracer,
    /// The instantiated pressure-reclaim policy (from
    /// `config.reclaim_policy`). Stateful policies (clock) keep their
    /// state here across evictions.
    reclaim: Box<dyn ReclaimPolicy>,
    /// Per-host resident-frame budget (None = unbudgeted).
    budget: Option<MemoryBudget>,
    /// Next merge-pass deadline (meaningful only with a merge interval).
    next_merge: SimTime,
    /// Cumulative totals across every merge pass.
    merge_total: MergeReport,
    /// Every budget rejection, in occurrence order.
    pressure_log: Vec<PressureEvent>,
    /// Farm-wide sharing ratio sampled at each merge pass.
    sharing_series: TimeSeries,
    /// Farm-wide resident frames sampled at each merge pass.
    resident_series: TimeSeries,
    /// Wire-buffer pool for farm-built packets (guest dialogue emissions,
    /// degraded SYN/ACKs, worm probes). Transient perf state: recycled
    /// slots make the steady-state emission path allocation-free; never
    /// serialized, so restores simply start with a cold pool.
    pool: BufferPool,
    /// The interaction-service engine (None without `config.services`).
    /// Conversation state lives here, not in checkpoints: services runs
    /// are not snapshot/restored (see DESIGN.md §15).
    services: Option<ServiceEngine>,
    /// The farm-wide content-addressed chunk store. Every host's reference
    /// images share it, so identical golden-disk chunks are stored once
    /// across the whole farm regardless of server or image count.
    store: SharedChunkStore,
}

impl Honeyfarm {
    /// Builds a farm: creates the servers and boots one reference image on
    /// each.
    ///
    /// # Errors
    ///
    /// Returns [`FarmError::BadConfig`] for zero servers and
    /// [`FarmError::Vmm`] when an image does not fit in a server's memory.
    pub fn new(config: FarmConfig) -> Result<Self, FarmError> {
        let seed = config.seed;
        Self::with_shared_config(Arc::new(config), seed)
    }

    /// Builds a farm over a *shared* config, seeding its RNGs from `seed`
    /// rather than `config.seed`.
    ///
    /// Sharded runs ([`crate::parallel`]) construct one cell farm per
    /// telescope slice from the same base configuration; sharing one
    /// [`Arc`] avoids cloning the (service-table- and hitlist-carrying)
    /// config per cell while still giving each cell its own derived seed.
    ///
    /// # Errors
    ///
    /// Same as [`Honeyfarm::new`].
    pub fn with_shared_config(config: Arc<FarmConfig>, seed: u64) -> Result<Self, FarmError> {
        if config.servers == 0 {
            return Err(FarmError::BadConfig { what: "servers must be > 0" });
        }
        if config.frames_per_server == 0 {
            return Err(FarmError::BadConfig { what: "frames_per_server must be > 0" });
        }
        let store = SharedChunkStore::new_memory();
        let mut hosts = Vec::with_capacity(config.servers);
        let mut images = Vec::with_capacity(config.servers);
        for _ in 0..config.servers {
            let mut host = Host::new(config.frames_per_server)
                .with_cost_model(config.cost_model)
                .with_overhead_pages(config.overhead_pages)
                .with_max_domains(config.max_domains_per_server)
                .with_chunk_store(store.clone())
                .with_disk_chunk_blocks(config.disk_chunk_blocks);
            let mut host_images =
                vec![host.create_reference_image("reference", config.profile.clone())?];
            for (i, (_, profile)) in config.address_profiles.iter().enumerate() {
                host_images.push(
                    host.create_reference_image(&format!("profile-{}", i + 1), profile.clone())?,
                );
            }
            hosts.push(host);
            images.push(host_images);
        }
        // Pre-clone the standby pools so first contacts skip the expensive
        // clone stages.
        let mut standby: Vec<Vec<DomainId>> = Vec::with_capacity(config.servers);
        for (host, host_images) in hosts.iter_mut().zip(&images) {
            let mut pool = Vec::with_capacity(config.standby_per_host);
            for _ in 0..config.standby_per_host {
                let (dom, _) = host.flash_clone(host_images[0])?;
                pool.push(dom);
            }
            standby.push(pool);
        }
        let gateway = Gateway::new(config.gateway.clone());
        let rng = SimRng::seed_from(seed);
        let fault_rng = SimRng::seed_from(seed ^ 0xFA17);
        let reclaim = config.reclaim_policy.instantiate();
        let budget = config.memory_budget_frames.map(MemoryBudget::new);
        // Sample series at merge cadence; one-second bins when merging is
        // off (the series stay empty then anyway).
        let bin = config.merge_interval.unwrap_or(SimTime::from_secs(1));
        let next_merge = config.merge_interval.unwrap_or(SimTime::ZERO);
        let config_services = config.services.as_ref().map(ServiceEngine::new);
        Ok(Honeyfarm {
            config,
            gateway,
            hosts,
            images,
            standby,
            vms: HashMap::new(),
            next_vmref: 0,
            next_host: 0,
            rng,
            request_counter: 0,
            newly_infected: Vec::new(),
            infection_log: Vec::new(),
            captures: HashMap::new(),
            outputs: Vec::new(),
            counters: CounterSet::new(),
            clone_latency_us: LogHistogram::new(32),
            last_clone_timing: None,
            vmm_time: SimTime::ZERO,
            faults: None,
            fault_rng,
            fault_ledger: FaultLedger::new(),
            pending_rebinds: HashMap::new(),
            clone_failure_prob: 0.0,
            cell: None,
            tunnel_degraded_until: SimTime::ZERO,
            tunnel_loss: 0.0,
            tunnel_extra_latency: SimTime::ZERO,
            tracer: Tracer::disabled(),
            reclaim,
            budget,
            next_merge,
            merge_total: MergeReport::default(),
            pressure_log: Vec::new(),
            sharing_series: TimeSeries::new(bin),
            resident_series: TimeSeries::new(bin),
            pool: BufferPool::new(),
            services: config_services,
            store,
        })
    }

    /// Accounting snapshot of the farm-wide chunk store: puts, dedupe
    /// hits, lazy materializations, and resident footprint (the disk-side
    /// analogue of [`Honeyfarm::sharing_report`]).
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Enables tracing: the farm records on lane `base_lane`, its gateway
    /// on `base_lane + 1`. Tracing is passive — it never draws from the
    /// farm's RNGs and never reorders work — so every deterministic report
    /// is byte-identical with it on or off (`tests/prop_obs.rs` proves
    /// this property-style).
    pub fn enable_tracing(&mut self, config: TraceConfig, base_lane: u32) {
        self.tracer = Tracer::new(base_lane, config);
        self.gateway.set_tracer(Tracer::new(base_lane + 1, config));
    }

    /// Drains every trace event recorded so far (farm and gateway lanes),
    /// merged in `(sim-time, lane, seq)` order. Empty while tracing is
    /// disabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = self.tracer.drain();
        events.extend(self.gateway.take_trace());
        events.sort_by_key(|e| (e.at, e.lane, e.seq));
        events
    }

    /// Trace events lost to flight-recorder overwrite (farm + gateway
    /// lanes).
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped() + self.gateway.trace_dropped()
    }

    /// Declares this farm to be one cell of a sharded run. From then on,
    /// reflected packets whose destination hashes to a different cell are
    /// emitted as [`FarmOutput::ForwardedCell`] for the driver to route,
    /// instead of re-entering this farm's gateway.
    pub fn assign_cell(&mut self, slot: crate::parallel::CellSlot) {
        self.cell = Some(slot);
    }

    /// Installs a fault plan. Events fire as virtual time passes through
    /// them ([`Honeyfarm::tick`] / [`Honeyfarm::inject_external`]); the
    /// plan's clone-failure probability applies to every subsequent clone
    /// attempt. Installing [`FaultPlan::zero`] is a no-op by construction.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        let injector = FaultInjector::new(plan);
        self.clone_failure_prob = injector.clone_failure_prob();
        self.faults = Some(injector);
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Injects a packet arriving from the external world (telescope
    /// traffic). Processes the entire causal chain synchronously: cloning,
    /// delivery, guest responses, reflections.
    pub fn inject_external(&mut self, now: SimTime, packet: Packet) {
        let span = self.tracer.begin(now, obs::FARM_INJECT);
        self.inject_external_inner(now, packet);
        self.tracer.end(now, span);
    }

    fn inject_external_inner(&mut self, now: SimTime, packet: Packet) {
        self.poll_faults(now);
        if now < self.tunnel_degraded_until {
            if self.fault_rng.chance(self.tunnel_loss) {
                self.fault_ledger.record(FaultClass::TunnelDrop);
                self.counters.incr("tunnel_dropped");
                self.outputs.push(FarmOutput::DroppedInbound(DropReason::TunnelLoss));
                return;
            }
            // The packet survives the degraded tunnel but arrives late;
            // delivery stays synchronous, the added delay is accounted.
            self.fault_ledger.record_tunnel_delay_us(self.tunnel_extra_latency.as_micros());
        }
        let action = self.gateway.on_inbound(now, packet);
        self.run_actions(now, vec![action]);
    }

    /// Emits a packet from a live VM (worm probes, delayed guest traffic)
    /// and processes the causal chain.
    ///
    /// Returns `false` if the VM no longer exists.
    pub fn emit_from_vm(&mut self, now: SimTime, vm: VmRef, packet: Packet) -> bool {
        if !self.vms.contains_key(&vm) {
            return false;
        }
        let action = self.gateway.on_outbound(now, vm, packet);
        self.run_actions(now, vec![action]);
        true
    }

    /// One probe from an infected VM's scan loop. Returns `false` when the
    /// VM is gone or not infected (the scenario stops scheduling).
    pub fn worm_probe(&mut self, now: SimTime, vm: VmRef, probe_idx: u64) -> bool {
        if self.config.worm.is_none() {
            return false;
        }
        let Some(slot) = self.vms.get(&vm) else {
            return false;
        };
        let Ok(dom) = self.hosts[slot.host].domain(slot.domain) else {
            return false;
        };
        if !dom.is_infected() || !dom.is_running() {
            return false;
        }
        let Some(src) = dom.bound_addr() else {
            return false;
        };
        // Borrow the spec in place: cloning it per probe would copy the
        // whole hitlist for list-scanning worms.
        let worm = self.config.worm.as_ref().expect("checked above");
        let Some(dst) = worm.pick_target(&mut self.rng, src, probe_idx) else {
            return false;
        };
        if dst == src {
            return true; // self-probe: skip but keep scanning
        }
        let src_port = 1024 + (probe_idx % 60_000) as u16;
        let instance = probe_idx.wrapping_mul(0x9E37_79B9).wrapping_add(vm.0);
        let probe = worm.probe_instance_pooled(src, src_port, dst, instance, &self.pool);
        self.counters.incr("worm_probes");
        self.emit_from_vm(now, vm, probe)
    }

    /// Advances time: fires due fault events, expires idle bindings,
    /// reclaims expired VMs according to the configured
    /// [`RecycleStrategy`], and runs the content-merge pass when its
    /// period elapses.
    pub fn tick(&mut self, now: SimTime) {
        let span = self.tracer.begin(now, obs::FARM_TICK);
        self.poll_faults(now);
        for expired in self.gateway.expire(now) {
            self.reclaim_vm(expired.vm);
        }
        if let Some(interval) = self.config.merge_interval {
            if now >= self.next_merge {
                self.run_merge(now);
                while self.next_merge <= now {
                    self.next_merge = self.next_merge.saturating_add(interval);
                }
            }
        }
        self.tracer.end(now, span);
    }

    /// Runs one content-index merge pass over every live host, records
    /// its accounting (counters, trace lane, sharing/resident series),
    /// and returns the pass report. Scheduled by [`Honeyfarm::tick`] at
    /// `merge_interval` cadence; experiments may also call it directly.
    ///
    /// Determinism: hosts are swept in index order and each host's scan
    /// is itself deterministic, so the merged state — and every report
    /// derived from it — depends only on the farm state, never on wall
    /// clock or worker count.
    pub fn run_merge(&mut self, now: SimTime) -> MergeReport {
        let span = self.tracer.begin(now, obs::MEM_SCAN);
        let mut pass = MergeReport::default();
        for host in &mut self.hosts {
            if let Ok(report) = host.scan_and_merge() {
                pass.absorb(report);
            }
        }
        self.tracer.end(now, span);
        if pass.merged_pages > 0 {
            self.tracer.instant(now, obs::MEM_MERGE, pass.merged_pages);
        }
        self.counters.incr("mem_scans");
        self.counters.add("pages_merged", pass.merged_pages);
        self.counters.add("frames_reclaimed_by_merge", pass.frames_reclaimed);
        self.merge_total.absorb(pass);
        let sharing = self.sharing_report();
        self.sharing_series.record_max(now, sharing.ratio());
        self.resident_series.record_max(now, sharing.resident_frames as f64);
        // Disk-side accounting rides the same cadence: trace-lane only
        // (digest-invisible), mirroring the memory sharing samples above.
        let store = self.store.stats();
        self.tracer.instant(now, obs::STORE_CHUNK, store.resident_chunks);
        self.tracer.instant(now, obs::STORE_DEDUPE, store.dedupe_hits);
        self.tracer.instant(now, obs::STORE_MATERIALIZE, store.materialized);
        pass
    }

    /// Fires every scheduled fault event whose time has passed.
    fn poll_faults(&mut self, now: SimTime) {
        let Some(injector) = self.faults.as_mut() else { return };
        let mut due = Vec::new();
        while let Some(event) = injector.next_due(now) {
            due.push(event);
        }
        for event in due {
            self.apply_fault(event.at, event.kind);
        }
    }

    fn apply_fault(&mut self, at: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::HostCrash { host } => self.crash_host(at, host),
            FaultKind::HostRecover { host } => self.revive_host(host),
            FaultKind::CloneFaultBurst { host, count } => {
                if let Some(h) = self.hosts.get_mut(host) {
                    h.fail_next_clones(count);
                }
            }
            FaultKind::TunnelDegrade { loss, extra_latency, duration } => {
                self.tunnel_loss = loss;
                self.tunnel_extra_latency = extra_latency;
                self.tunnel_degraded_until = at.saturating_add(duration);
                self.counters.incr("tunnel_degrades");
            }
            FaultKind::GatewayStall { duration } => {
                self.fault_ledger.record(FaultClass::GatewayStall);
                self.gateway.stall_for(at, duration);
            }
        }
    }

    /// Fails a host: tears down its domains, unbinds their addresses at
    /// the gateway (retiring flow state so no stale dialogue can leak),
    /// and immediately tries to re-materialize each orphaned address on a
    /// surviving server. Addresses that cannot be re-placed stay pending
    /// and resolve on their next packet.
    fn crash_host(&mut self, now: SimTime, host: usize) {
        if host >= self.hosts.len() || !self.hosts[host].is_alive() {
            return;
        }
        self.fault_ledger.record(FaultClass::HostCrash);
        self.counters.incr("host_crashes");
        let mut victims: Vec<(VmRef, Option<Ipv4Addr>)> = self
            .vms
            .iter()
            .filter(|(_, slot)| slot.host == host)
            .map(|(&vm, slot)| {
                (vm, self.hosts[host].domain(slot.domain).ok().and_then(|d| d.bound_addr()))
            })
            .collect();
        victims.sort_by_key(|(vm, _)| vm.0); // vms is a HashMap; fix the order
        self.hosts[host].crash();
        self.standby[host].clear();
        self.counters.add("vms_lost_to_crash", victims.len() as u64);
        for (vm, _) in &victims {
            self.vms.remove(vm);
        }
        for (vm, bound) in victims {
            let mut addrs = self.gateway.unbind_vm(vm);
            if let Some(a) = bound {
                if !addrs.contains(&a) {
                    addrs.push(a);
                }
            }
            for addr in addrs {
                self.pending_rebinds.entry(addr).or_insert(now);
                if self.place_clone(now, addr, addr).is_none() {
                    self.counters.incr("rebind_deferred");
                }
            }
        }
    }

    /// Revives a crashed host and refills its standby pool from the
    /// reference image (which lives on stable storage and survives the
    /// crash).
    fn revive_host(&mut self, host: usize) {
        if host >= self.hosts.len() || self.hosts[host].is_alive() {
            return;
        }
        self.fault_ledger.record(FaultClass::HostRecovery);
        self.counters.incr("host_recoveries");
        self.hosts[host].revive();
        while self.standby[host].len() < self.config.standby_per_host {
            match self.hosts[host].flash_clone(self.images[host][0]) {
                Ok((dom, timing)) => {
                    self.standby[host].push(dom);
                    self.vmm_time += timing.total();
                }
                Err(_) => break,
            }
        }
    }

    /// Reclaims one VM per the configured [`RecycleStrategy`].
    fn reclaim_vm(&mut self, vm: VmRef) {
        let Some(slot) = self.vms.remove(&vm) else { return };
        let result = match self.config.recycle {
            RecycleStrategy::DestroyAndClone => self.hosts[slot.host].destroy(slot.domain),
            RecycleStrategy::RollbackToPool => {
                // The pool only holds default-profile domains; other
                // profiles are destroyed (they are rare by design).
                let is_default = self.hosts[slot.host]
                    .domain(slot.domain)
                    .is_ok_and(|d| d.image() == self.images[slot.host][0]);
                if is_default {
                    let r = self.hosts[slot.host].rollback(slot.domain);
                    if r.is_ok() {
                        self.standby[slot.host].push(slot.domain);
                        self.counters.incr("vms_rolled_back");
                    }
                    r
                } else {
                    self.hosts[slot.host].destroy(slot.domain)
                }
            }
        };
        match result {
            Ok(cost) => {
                self.vmm_time += cost;
                self.counters.incr("vms_recycled");
            }
            Err(_) => self.counters.incr("recycle_races"),
        }
    }

    fn run_actions(&mut self, now: SimTime, actions: Vec<GatewayAction>) {
        let span = self.tracer.begin(now, obs::FARM_DISPATCH);
        self.run_actions_inner(now, actions);
        self.tracer.end(now, span);
    }

    fn run_actions_inner(&mut self, now: SimTime, actions: Vec<GatewayAction>) {
        let mut queue: Vec<GatewayAction> = actions;
        // Bound the causal chain defensively; real chains are short (a
        // reflection plus a few dialogue rounds).
        let mut budget = 256;
        while let Some(action) = queue.pop() {
            if budget == 0 {
                self.counters.incr("action_budget_exhausted");
                break;
            }
            budget -= 1;
            match action {
                GatewayAction::Deliver { vm, packet } => {
                    let emissions = self.handle_delivery(now, vm, packet);
                    for p in emissions {
                        queue.push(self.gateway.on_outbound(now, vm, p));
                    }
                }
                GatewayAction::CloneAndDeliver { addr, packet } => {
                    let mut placed = self.place_clone(now, packet.src(), addr);
                    if placed.is_none() && self.config.evict_on_pressure {
                        // Resource pressure: the configured reclaim policy
                        // picks the victim binding.
                        if let Some(evicted) =
                            self.gateway.evict_for_pressure(now, self.reclaim.as_mut())
                        {
                            self.reclaim_vm(evicted.vm);
                            self.counters.incr("evicted_for_pressure");
                            placed = self.place_clone(now, packet.src(), addr);
                        }
                    }
                    match placed {
                        Some(_) => queue.push(self.gateway.on_inbound(now, packet)),
                        None if self.config.degradation_ladder => {
                            self.degrade_without_vm(addr, &packet);
                        }
                        None => {
                            self.counters.incr("dropped_no_capacity");
                            self.outputs.push(FarmOutput::DroppedInbound(DropReason::SourceQuota));
                        }
                    }
                }
                GatewayAction::GatewayReply(packet) => {
                    // A gateway-synthesized packet: deliver to a VM if its
                    // destination is one, else it leaves the farm.
                    if let Some(vm) = self.vm_for_addr(now, packet.dst()) {
                        let emissions = self.handle_delivery(now, vm, packet);
                        for p in emissions {
                            queue.push(self.gateway.on_outbound(now, vm, p));
                        }
                    } else {
                        self.counters.incr("sent_external");
                        self.outputs.push(FarmOutput::SentExternal(packet));
                    }
                }
                GatewayAction::ForwardExternal(packet) => {
                    self.counters.incr("sent_external");
                    self.outputs.push(FarmOutput::SentExternal(packet));
                }
                GatewayAction::Reflect { addr: _, packet } => {
                    // Containment: the outbound packet re-enters as inbound
                    // — locally, unless a sharded run assigned this farm a
                    // cell and another cell owns the destination, in which
                    // case the internal fabric must carry it there.
                    if let Some(cell) = self.cell.and_then(|slot| slot.route(packet.dst())) {
                        self.counters.incr("forwarded_cross_cell");
                        self.outputs.push(FarmOutput::ForwardedCell { packet, cell });
                    } else {
                        queue.push(self.gateway.on_inbound(now, packet));
                    }
                }
                GatewayAction::Drop { reason } => {
                    self.outputs.push(FarmOutput::DroppedOutbound(reason));
                }
            }
        }
    }

    /// The bottom rungs of the degradation ladder, reached when no server
    /// can supply a VM: answer TCP SYNs with a stateless SYN/ACK (keeping
    /// the attacker engaged at zero fidelity — no guest, no capture) and
    /// count-drop everything else.
    fn degrade_without_vm(&mut self, addr: Ipv4Addr, packet: &Packet) {
        if let PacketPayload::Tcp { header, .. } = packet.payload() {
            if header.flags.syn && !header.flags.ack {
                self.counters.incr("degraded_synacks");
                let reply = PacketBuilder::new(addr, packet.src()).pooled(&self.pool).tcp_segment(
                    header.dst_port,
                    header.src_port,
                    TcpFlags::SYN_ACK,
                    self.fault_rng.next_u32(),
                    header.seq.wrapping_add(1),
                    &[],
                );
                self.counters.incr("sent_external");
                self.outputs.push(FarmOutput::SentExternal(reply));
                return;
            }
        }
        self.counters.incr("dropped_degraded");
        self.outputs.push(FarmOutput::DroppedInbound(DropReason::Degraded));
    }

    /// Finds the VM bound to `addr` without consuming gateway state beyond
    /// an activity refresh.
    fn vm_for_addr(&mut self, _now: SimTime, addr: Ipv4Addr) -> Option<VmRef> {
        self.vms
            .iter()
            .find(|(_, slot)| {
                self.hosts[slot.host]
                    .domain(slot.domain)
                    .is_ok_and(|d| d.bound_addr() == Some(addr))
            })
            .map(|(&vm, _)| vm)
    }

    /// The profile index serving `addr` (0 = the default profile).
    fn profile_index_for(&self, addr: Ipv4Addr) -> usize {
        self.config
            .address_profiles
            .iter()
            .position(|(prefix, _)| prefix.contains(addr))
            .map_or(0, |i| i + 1)
    }

    /// Provisions a VM for `addr` — from a standby pool when one is
    /// available (cheap), else by flash-cloning — and binds it at the
    /// gateway.
    fn place_clone(&mut self, now: SimTime, src: Ipv4Addr, addr: Ipv4Addr) -> Option<VmRef> {
        let n = self.hosts.len();
        let profile_idx = self.profile_index_for(addr);
        // Standby pool first: only the binding stages remain.
        for offset in 0..n {
            let h = (self.next_host + offset) % n;
            if profile_idx != 0 {
                break; // The pool only holds default-profile domains.
            }
            if let Some(domain) = self.standby[h].pop() {
                self.next_host = (h + 1) % n;
                let timing = CloneTiming::new(self.config.cost_model.standby_bind_stages());
                self.counters.incr("standby_hits");
                let slot = VmSlot { host: h, domain };
                return self.finish_placement(now, src, addr, slot, timing, obs::VMM_STANDBY_BIND);
            }
        }
        for offset in 0..n {
            let h = (self.next_host + offset) % n;
            // Budget admission: a fresh clone pins its overhead frames
            // immediately (image pages stay CoW-shared). Over-budget hosts
            // are skipped; if every host is over, the caller's pressure
            // path evicts per the reclaim policy and retries. Standby
            // binds above allocate nothing, so they bypass the check.
            if let Some(budget) = self.budget {
                let used = self.hosts[h].memory_report().used_frames;
                if let Err(event) = budget.admit(used, self.config.overhead_pages) {
                    self.counters.incr("memory_pressure_events");
                    self.tracer.instant(now, obs::MEM_PRESSURE, event.requested_frames);
                    self.pressure_log.push(event);
                    continue;
                }
            }
            match self.clone_with_retry(h, self.images[h][profile_idx]) {
                Ok((domain, timing)) => {
                    self.next_host = (h + 1) % n;
                    let slot = VmSlot { host: h, domain };
                    return self.finish_placement(
                        now,
                        src,
                        addr,
                        slot,
                        timing,
                        obs::VMM_FLASH_CLONE,
                    );
                }
                Err(VmmError::TooManyDomains { .. })
                | Err(VmmError::OutOfMemory { .. })
                | Err(VmmError::HostDown)
                | Err(VmmError::InjectedFault { .. }) => {
                    continue; // per-host condition: another server may serve
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// One clone attempt, with fault injection: the plan's clone-failure
    /// probability is rolled first, then the host may consume a pending
    /// injected-fault budget of its own.
    fn clone_attempt(
        &mut self,
        host: usize,
        image: ImageId,
    ) -> Result<(DomainId, CloneTiming), VmmError> {
        if self.clone_failure_prob > 0.0
            && self.hosts[host].is_alive()
            && self.fault_rng.chance(self.clone_failure_prob)
        {
            self.fault_ledger.record(FaultClass::CloneFault);
            self.counters.incr("clone_faults_injected");
            return Err(VmmError::InjectedFault { op: "flash_clone" });
        }
        let result = self.hosts[host].flash_clone(image);
        if matches!(result, Err(VmmError::InjectedFault { .. })) {
            self.fault_ledger.record(FaultClass::CloneFault);
            self.counters.incr("clone_faults_injected");
        }
        result
    }

    /// Flash-clones with bounded retry on transient (injected) faults.
    /// Backoff is budgeted in virtual time and folded into the clone's
    /// stage breakdown, so retried clones correctly report higher latency.
    fn clone_with_retry(
        &mut self,
        host: usize,
        image: ImageId,
    ) -> Result<(DomainId, CloneTiming), VmmError> {
        let policy = self.config.retry;
        let max_attempts = policy.map_or(1, |p| p.max_attempts.max(1));
        let mut backoff_total = SimTime::ZERO;
        let mut attempt = 1;
        loop {
            match self.clone_attempt(host, image) {
                Ok((domain, mut timing)) => {
                    if backoff_total > SimTime::ZERO {
                        timing.push_stage("retry_backoff", backoff_total);
                        self.counters.incr("clone_retries_succeeded");
                    }
                    return Ok((domain, timing));
                }
                Err(e) if e.is_transient() && attempt < max_attempts => {
                    if let Some(p) = policy {
                        backoff_total =
                            backoff_total.saturating_add(p.backoff(attempt, self.fault_rng.f64()));
                    }
                    self.counters.incr("clone_retries");
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn finish_placement(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        addr: Ipv4Addr,
        slot: VmSlot,
        timing: CloneTiming,
        provision: &'static str,
    ) -> Option<VmRef> {
        let VmSlot { host, domain } = slot;
        // The domain can vanish between clone and bind if its host crashed
        // mid-placement; treat it as a failed placement, not a panic.
        let Ok(dom) = self.hosts[host].domain_mut(domain) else {
            self.counters.incr("placement_races");
            return None;
        };
        dom.bind_addr(addr);
        let vm = VmRef(self.next_vmref);
        self.next_vmref += 1;
        self.vms.insert(vm, slot);
        self.gateway.bind(now, src, addr, vm);
        self.counters.incr("vms_cloned");
        self.clone_latency_us.record(timing.total().as_micros());
        self.vmm_time += timing.total();
        if let Some(crashed_at) = self.pending_rebinds.remove(&addr) {
            let downtime = now.saturating_sub(crashed_at).saturating_add(timing.total());
            self.fault_ledger.record_rebind_us(downtime.as_micros());
            self.counters.incr("rebinds_after_crash");
        }
        // The provisioning stages happened "inside" this instant of virtual
        // time; replay them as a span tree (root = clone/standby-bind, one
        // child per stage) so the observed breakdown can be rebuilt from
        // the trace alone.
        timing.emit_spans(&mut self.tracer, now, provision);
        self.last_clone_timing = Some(timing);
        Some(vm)
    }

    /// Models the guest receiving a packet: page activity, infection, and
    /// response emission. Deliberately unspanned: each delivery already
    /// leaves a `gw.action.deliver` instant in the trace, and a redundant
    /// span pair here would be the single largest event source (E12 holds
    /// recorder overhead under 5%).
    fn handle_delivery(&mut self, now: SimTime, vm: VmRef, packet: Packet) -> Vec<Packet> {
        let Some(slot) = self.vms.get(&vm) else {
            return vec![];
        };
        let (host_idx, domain) = (slot.host, slot.domain);
        if !self.hosts[host_idx].domain(domain).is_ok_and(|d| d.is_running()) {
            return vec![];
        }
        self.counters.incr("packets_to_guests");
        let me = packet.dst();
        let remote = packet.src();
        // The VM's behaviour comes from *its* image (farms can impersonate
        // heterogeneous OS profiles across the address space). The domain
        // or its image can disappear under a concurrent host crash; drop
        // the delivery rather than panic.
        let (listens_tcp, listens_udp) = {
            let Ok(dom) = self.hosts[host_idx].domain(domain) else {
                self.counters.incr("delivery_races");
                return vec![];
            };
            let image = dom.image();
            let Ok(img) = self.hosts[host_idx].image(image) else {
                self.counters.incr("delivery_races");
                return vec![];
            };
            // Only the port-listen verdicts are needed downstream; looking
            // them up here (while the image borrow is live) avoids cloning
            // the whole service-table-carrying profile per delivery.
            let profile = img.profile();
            match packet.payload() {
                PacketPayload::Tcp { header, .. } => {
                    (profile.listens_on_tcp(header.dst_port), false)
                }
                PacketPayload::Udp { header, .. } => {
                    (false, profile.listens_on_udp(header.dst_port))
                }
                _ => (false, false),
            }
        };
        let marker = self.config.worm.as_ref().map(|w| w.payload_marker);
        let req_idx = self.request_counter;
        self.request_counter += 1;

        let mut emissions = Vec::new();
        match packet.payload() {
            PacketPayload::Icmp(msg) => {
                if let Some(reply) = msg.reply_to() {
                    emissions.push(PacketBuilder::new(me, remote).pooled(&self.pool).icmp(reply));
                }
            }
            PacketPayload::Tcp { header, payload } => {
                let flags = header.flags;
                let listening = listens_tcp;
                if flags.syn && !flags.ack {
                    if listening {
                        self.touch(now, host_idx, domain, req_idx);
                        emissions.push(
                            PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                header.dst_port,
                                header.src_port,
                                TcpFlags::SYN_ACK,
                                self.rng.next_u32(),
                                header.seq.wrapping_add(1),
                                &[],
                            ),
                        );
                    } else {
                        emissions.push(
                            PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                header.dst_port,
                                header.src_port,
                                TcpFlags::RST,
                                0,
                                header.seq.wrapping_add(1),
                                &[],
                            ),
                        );
                    }
                } else if flags.syn && flags.ack {
                    // Our connection attempt was accepted. An infected guest
                    // is mid-exploit: send the payload.
                    let infected =
                        self.hosts[host_idx].domain(domain).is_ok_and(|d| d.is_infected());
                    if infected {
                        if let Some(worm) = self.config.worm.as_ref() {
                            let instance = self.rng.next_u64();
                            emissions.push(
                                PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                    header.dst_port,
                                    header.src_port,
                                    TcpFlags::PSH_ACK,
                                    header.ack,
                                    header.seq.wrapping_add(1),
                                    &worm.payload_instance(instance),
                                ),
                            );
                        }
                    }
                } else if !payload.is_empty() {
                    let carries_exploit =
                        marker.is_some_and(|m| Self::contains(payload, m)) && listening;
                    if carries_exploit {
                        self.capture_payload(now, payload, header.dst_port, remote);
                        self.infect(
                            now,
                            vm,
                            (host_idx, domain),
                            req_idx,
                            remote,
                            Some(header.dst_port),
                        );
                        emissions.push(
                            PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                header.dst_port,
                                header.src_port,
                                TcpFlags::ACK,
                                header.ack,
                                header.seq.wrapping_add(payload.len() as u32),
                                &[],
                            ),
                        );
                    } else if listening {
                        self.touch(now, host_idx, domain, req_idx);
                        let banner =
                            self.service_response(now, remote, me, header.dst_port, payload);
                        emissions.push(
                            PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                header.dst_port,
                                header.src_port,
                                TcpFlags::PSH_ACK,
                                header.ack,
                                header.seq.wrapping_add(payload.len() as u32),
                                &banner,
                            ),
                        );
                    } else {
                        emissions.push(
                            PacketBuilder::new(me, remote).pooled(&self.pool).tcp_segment(
                                header.dst_port,
                                header.src_port,
                                TcpFlags::RST,
                                0,
                                header.seq,
                                &[],
                            ),
                        );
                    }
                }
                // Bare ACK/FIN segments need no response in this model.
            }
            PacketPayload::Udp { header, payload } => {
                let listening = listens_udp;
                let carries_exploit =
                    marker.is_some_and(|m| Self::contains(payload, m)) && listening;
                if header.src_port == potemkin_net::dns::DNS_PORT {
                    // A DNS response to the guest's own query: the resolver
                    // consumes it (the guest had the socket open).
                    self.counters.incr("dns_responses_consumed");
                } else if carries_exploit {
                    self.capture_payload(now, payload, header.dst_port, remote);
                    self.infect(
                        now,
                        vm,
                        (host_idx, domain),
                        req_idx,
                        remote,
                        Some(header.dst_port),
                    );
                    // Slammer-style worms elicit no reply.
                } else if listening {
                    self.touch(now, host_idx, domain, req_idx);
                } else {
                    // Closed UDP port: ICMP port unreachable, as a real
                    // stack would.
                    let original: Vec<u8> = packet.wire().iter().take(28).copied().collect();
                    emissions.push(PacketBuilder::new(me, remote).pooled(&self.pool).icmp(
                        IcmpMessage::DestUnreachable {
                            code: IcmpMessage::CODE_PORT_UNREACHABLE,
                            original,
                        },
                    ));
                }
            }
            PacketPayload::Raw { .. } => {
                // Unmodeled transports are absorbed silently.
            }
        }
        emissions
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }

    /// The service-side reply for inbound data on a listening port.
    ///
    /// Without an interaction plane this is the seed's fixed
    /// `220 service ready` banner — runs with `services: None` keep every
    /// byte of their reports unchanged. With one, the scenario engine
    /// classifies the request, steps the claimed scenario's state machine,
    /// and answers in character; fresh sessions pass gateway admission
    /// first, and captured scenario payloads land in the farm's capture
    /// table exactly like exploit-marker payloads.
    fn service_response(
        &mut self,
        now: SimTime,
        remote: Ipv4Addr,
        me: Ipv4Addr,
        port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        const FIXED_BANNER: &[u8] = b"220 service ready";
        // Disjoint field borrows: the engine converses, the gateway
        // admits, the counters count.
        let outcome = match self.services.as_mut() {
            None => None,
            Some(engine) => {
                let fresh = !engine.has_session(remote, port, payload);
                let admitted = !fresh || self.gateway.admit_service_session(engine.open_sessions());
                if admitted {
                    engine.on_request(now, remote, me, port, payload)
                } else {
                    None
                }
            }
        };
        let Some(outcome) = outcome else {
            return FIXED_BANNER.to_vec();
        };
        self.tracer.instant(now, obs::SVC_DETECT, outcome.scenario as u64);
        if outcome.opened {
            self.counters.incr("svc_sessions_opened");
            let open = self.services.as_ref().map_or(0, |e| e.open_sessions() as u64);
            self.tracer.instant(now, obs::SVC_SESSION, open);
        }
        if outcome.stalled {
            self.counters.incr("svc_stalls");
        }
        if let Some(captured) = outcome.capture {
            self.counters.incr("svc_payloads_captured");
            self.tracer.instant(now, obs::SVC_CAPTURE, captured.len() as u64);
            self.capture_payload(now, &captured, port, remote);
        }
        outcome.response
    }

    /// The interaction-service engine, when one is configured.
    #[must_use]
    pub fn service_engine(&self) -> Option<&ServiceEngine> {
        self.services.as_ref()
    }

    /// Mutable access to the interaction-service engine (end-of-run
    /// finalization, record export).
    pub fn service_engine_mut(&mut self) -> Option<&mut ServiceEngine> {
        self.services.as_mut()
    }

    fn touch(&mut self, _now: SimTime, host: usize, domain: DomainId, req_idx: u64) {
        if let Ok(stats) = self.hosts[host].apply_request(domain, req_idx) {
            self.vmm_time += stats.cost;
        } else {
            self.counters.incr("guest_memory_errors");
        }
    }

    fn infect(
        &mut self,
        now: SimTime,
        vm: VmRef,
        slot: (usize, DomainId),
        seed: u64,
        infected_by: Ipv4Addr,
        port: Option<u16>,
    ) {
        let (host, domain) = slot;
        let already = self.hosts[host].domain(domain).map_or(true, |d| d.is_infected());
        if already {
            return;
        }
        match self.hosts[host].apply_infection(domain, seed) {
            Ok(stats) => {
                self.vmm_time += stats.cost;
                self.counters.incr("infections");
                self.newly_infected.push(vm);
                // Attribution: is the infecting source one of our own
                // honeypots (internal epidemic) or an external host?
                let internal_origin = self.vms.values().any(|slot| {
                    self.hosts[slot.host]
                        .domain(slot.domain)
                        .is_ok_and(|d| d.bound_addr() == Some(infected_by))
                });
                if internal_origin {
                    self.counters.incr("infections_internal");
                } else {
                    self.counters.incr("infections_external");
                }
                let victim_addr = self.hosts[host].domain(domain).ok().and_then(|d| d.bound_addr());
                self.infection_log.push(InfectionRecord {
                    vm,
                    victim_addr,
                    infected_by,
                    port,
                    internal_origin,
                    at: now,
                });
            }
            Err(_) => self.counters.incr("guest_memory_errors"),
        }
    }

    /// Directly infects a VM (experiment seeding: "patient zero").
    ///
    /// # Errors
    ///
    /// Returns [`FarmError::Vmm`] if the VM does not exist.
    pub fn seed_infection(&mut self, vm: VmRef) -> Result<(), FarmError> {
        let slot =
            self.vms.get(&vm).ok_or(FarmError::Vmm(VmmError::NoSuchDomain(DomainId(vm.0))))?;
        let (host, domain) = (slot.host, slot.domain);
        self.hosts[host].apply_infection(domain, vm.0)?;
        self.counters.incr("infections");
        self.newly_infected.push(vm);
        let victim_addr = self.hosts[host].domain(domain).ok().and_then(|d| d.bound_addr());
        self.infection_log.push(InfectionRecord {
            vm,
            victim_addr,
            infected_by: victim_addr.unwrap_or(Ipv4Addr::UNSPECIFIED),
            port: None,
            internal_origin: false,
            at: SimTime::ZERO,
        });
        Ok(())
    }

    /// Materializes a VM for `addr` without waiting for traffic (experiment
    /// seeding). The binding's "source" is the address itself.
    ///
    /// Returns `None` when no server has capacity.
    pub fn materialize(&mut self, now: SimTime, addr: Ipv4Addr) -> Option<VmRef> {
        self.place_clone(now, addr, addr)
    }

    /// Drains the list of VMs infected since the last call.
    pub fn take_new_infections(&mut self) -> Vec<VmRef> {
        std::mem::take(&mut self.newly_infected)
    }

    /// The full infection provenance log (who infected whom, when, how).
    #[must_use]
    pub fn infection_log(&self) -> &[InfectionRecord] {
        &self.infection_log
    }

    /// The captured exploit payloads (deduplicated by content), in
    /// first-seen order.
    #[must_use]
    pub fn captures(&self) -> Vec<&CaptureRecord> {
        let mut v: Vec<&CaptureRecord> = self.captures.values().collect();
        v.sort_by_key(|c| (c.first_seen, c.port));
        v
    }

    /// Records a payload delivery into the capture store.
    fn capture_payload(&mut self, now: SimTime, payload: &[u8], port: u16, src: Ipv4Addr) {
        // FNV-1a content hash for dedup.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in payload {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        match self.captures.get_mut(&h) {
            Some(rec) => rec.hits += 1,
            None => {
                self.counters.incr("unique_payloads_captured");
                self.captures.insert(
                    h,
                    CaptureRecord {
                        payload: payload.to_vec(),
                        port,
                        first_source: src,
                        first_seen: now,
                        hits: 1,
                    },
                );
            }
        }
    }

    /// Recycling statistics of the farm's wire-buffer pool. In steady
    /// state `reused` grows while `allocated` stays flat — the invariant
    /// the allocation-free-path tests assert.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drains recorded farm outputs.
    pub fn take_outputs(&mut self) -> Vec<FarmOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Drains recorded farm outputs in place, retaining the buffer's
    /// capacity. The steady-state alternative to [`Honeyfarm::take_outputs`]:
    /// a driver that drains after every event otherwise reallocates the
    /// outputs vector each time it refills.
    pub fn drain_outputs(&mut self) -> std::vec::Drain<'_, FarmOutput> {
        self.outputs.drain(..)
    }

    /// Ends a simulation window: folds the gateway's hot-path counters
    /// into its counter set and applies deferred flow-table refreshes.
    ///
    /// Drivers that batch bookkeeping at window barriers (see
    /// [`crate::parallel`]) call this once per window instead of paying
    /// map updates per packet.
    pub fn end_window(&mut self) {
        self.gateway.end_window();
    }

    /// Live (bound) VM count. Standby-pool domains are not included.
    #[must_use]
    pub fn live_vms(&self) -> usize {
        self.vms.len()
    }

    /// Standby-pool size across all hosts.
    #[must_use]
    pub fn standby_vms(&self) -> usize {
        self.standby.iter().map(Vec::len).sum()
    }

    /// Count of currently infected live VMs.
    #[must_use]
    pub fn infected_vms(&self) -> usize {
        self.vms
            .values()
            .filter(|slot| self.hosts[slot.host].domain(slot.domain).is_ok_and(|d| d.is_infected()))
            .count()
    }

    /// The gateway (read access for stats and assertions).
    #[must_use]
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// The server pool (read access).
    #[must_use]
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable access to the server pool, for VMM-level operations the
    /// controller does not wrap (forensic snapshots, direct memory
    /// inspection). Mutating domains the gateway has bound is the caller's
    /// responsibility.
    pub fn hosts_mut(&mut self) -> &mut [Host] {
        &mut self.hosts
    }

    /// The most recent clone's stage breakdown.
    #[must_use]
    pub fn last_clone_timing(&self) -> Option<&CloneTiming> {
        self.last_clone_timing.as_ref()
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> FarmStats {
        FarmStats::collect(self)
    }

    /// Farm-level counters (the gateway keeps its own; see
    /// [`Honeyfarm::gateway`]).
    #[must_use]
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Histogram of clone latencies (microseconds of virtual time).
    #[must_use]
    pub fn clone_latency_us(&self) -> &LogHistogram {
        &self.clone_latency_us
    }

    /// Total virtual time spent inside VMM operations.
    #[must_use]
    pub fn vmm_time(&self) -> SimTime {
        self.vmm_time
    }

    /// Per-fault-class counters and recovery-latency histograms.
    #[must_use]
    pub fn fault_ledger(&self) -> &FaultLedger {
        &self.fault_ledger
    }

    /// Addresses orphaned by a crash and still awaiting a re-bind.
    #[must_use]
    pub fn pending_rebinds(&self) -> usize {
        self.pending_rebinds.len()
    }

    /// Fault events not yet fired (0 for fault-free runs).
    #[must_use]
    pub fn pending_fault_events(&self) -> usize {
        self.faults.as_ref().map_or(0, FaultInjector::remaining)
    }

    /// Farm-wide logical-vs-resident memory occupancy (summed over all
    /// servers). `ratio() > 1` means frames are multiply shared.
    #[must_use]
    pub fn sharing_report(&self) -> SharingReport {
        let mut total = SharingReport::default();
        for host in &self.hosts {
            total.absorb(host.sharing_report());
        }
        total
    }

    /// Cumulative totals across every content-merge pass run so far.
    #[must_use]
    pub fn merge_report(&self) -> MergeReport {
        self.merge_total
    }

    /// Every memory-budget rejection so far, in occurrence order.
    #[must_use]
    pub fn pressure_events(&self) -> &[PressureEvent] {
        &self.pressure_log
    }

    /// Sharing ratio sampled at each merge pass (empty when merging is
    /// off).
    #[must_use]
    pub fn sharing_ratio_series(&self) -> &TimeSeries {
        &self.sharing_series
    }

    /// Resident machine frames sampled at each merge pass.
    #[must_use]
    pub fn resident_frames_series(&self) -> &TimeSeries {
        &self.resident_series
    }

    /// Stable name of the active pressure-reclaim policy.
    #[must_use]
    pub fn reclaim_policy_name(&self) -> &'static str {
        self.reclaim.name()
    }
}

/// Whole-farm checkpoint support.
///
/// [`Honeyfarm::encode_state`] serializes every piece of mutable farm
/// state — the server pool (via [`Host::encode_state`]), the gateway (via
/// [`Gateway::encode_state`]), VM slots, standby pools, both RNG streams,
/// the fault-injector cursor, provenance/capture logs, counters and
/// histograms — into one flat payload. [`Honeyfarm::restore_state`] loads
/// it back into a farm built from the *same configuration* (config-derived
/// state — images, budget, cell slot, tracer — is reconstructed by
/// [`Honeyfarm::new`] and the driver, not serialized).
///
/// Restore parses and validates the entire payload before committing any
/// field **except** the per-host blobs, which restore in place; on error,
/// discard the farm and rebuild (the whole-farm snapshot layer always
/// restores into a scratch farm).
///
/// [`Host::encode_state`]: potemkin_vmm::Host::encode_state
/// [`Gateway::encode_state`]: potemkin_gateway::gateway::Gateway::encode_state
impl Honeyfarm {
    /// Encodes the farm's mutable state for a checkpoint section.
    #[must_use]
    pub fn encode_state(&self) -> Vec<u8> {
        use potemkin_snapshot::SnapWriter;
        let mut w = SnapWriter::new();
        // Server pool.
        w.u64(self.hosts.len() as u64);
        for host in &self.hosts {
            w.bytes(&host.encode_state());
        }
        for pool in &self.standby {
            w.u64(pool.len() as u64);
            for dom in pool {
                w.u64(dom.0);
            }
        }
        // VM slots, in VmRef order (the map key is unique and monotone).
        let mut vms: Vec<(u64, usize, u64)> =
            self.vms.iter().map(|(vm, slot)| (vm.0, slot.host, slot.domain.0)).collect();
        vms.sort_unstable();
        w.u64(vms.len() as u64);
        for (vm, host, domain) in vms {
            w.u64(vm);
            w.usize(host);
            w.u64(domain);
        }
        w.u64(self.next_vmref);
        w.usize(self.next_host);
        w.u64(self.request_counter);
        // RNG streams.
        for part in self.rng.state() {
            w.u64(part);
        }
        for part in self.fault_rng.state() {
            w.u64(part);
        }
        // Infection bookkeeping.
        w.u64(self.newly_infected.len() as u64);
        for vm in &self.newly_infected {
            w.u64(vm.0);
        }
        w.u64(self.infection_log.len() as u64);
        for rec in &self.infection_log {
            w.u64(rec.vm.0);
            match rec.victim_addr {
                Some(a) => {
                    w.bool(true);
                    w.u32(u32::from(a));
                }
                None => w.bool(false),
            }
            w.u32(u32::from(rec.infected_by));
            match rec.port {
                Some(p) => {
                    w.bool(true);
                    w.u16(p);
                }
                None => w.bool(false),
            }
            w.bool(rec.internal_origin);
            w.u64(rec.at.as_nanos());
        }
        // Captures, in content-hash order (the map key).
        let mut captures: Vec<(&u64, &CaptureRecord)> = self.captures.iter().collect();
        captures.sort_unstable_by_key(|(hash, _)| **hash);
        w.u64(captures.len() as u64);
        for (hash, rec) in captures {
            w.u64(*hash);
            w.bytes(&rec.payload);
            w.u16(rec.port);
            w.u32(u32::from(rec.first_source));
            w.u64(rec.first_seen.as_nanos());
            w.u64(rec.hits);
        }
        // Undrained outputs (packets ride as wire bytes).
        w.u64(self.outputs.len() as u64);
        for out in &self.outputs {
            match out {
                FarmOutput::SentExternal(p) => {
                    w.u8(0);
                    w.bytes(p.wire());
                }
                FarmOutput::ForwardedCell { packet, cell } => {
                    w.u8(1);
                    w.bytes(packet.wire());
                    w.u64(*cell as u64);
                }
                FarmOutput::DroppedInbound(reason) => {
                    w.u8(2);
                    w.u8(encode_drop_reason(*reason));
                }
                FarmOutput::DroppedOutbound(reason) => {
                    w.u8(3);
                    w.u8(encode_drop_reason(*reason));
                }
            }
        }
        // Counters and latency accounting.
        w.usize(self.counters.len());
        for (name, value) in self.counters.iter() {
            w.str(name);
            w.u64(value);
        }
        encode_histogram(&mut w, &self.clone_latency_us);
        w.u64(self.vmm_time.as_nanos());
        // Fault machinery: the plan plus the injector's cursor.
        match &self.faults {
            Some(injector) => {
                w.bool(true);
                let plan = injector.plan();
                w.f64(plan.clone_failure_prob);
                w.u64(injector.cursor() as u64);
                w.u64(plan.events.len() as u64);
                for event in &plan.events {
                    w.u64(event.at.as_nanos());
                    encode_fault_kind(&mut w, event.kind);
                }
            }
            None => w.bool(false),
        }
        let (counts, rebind, delay) = self.fault_ledger.snapshot_parts();
        w.u64(counts.len() as u64);
        for c in counts {
            w.u64(c);
        }
        encode_histogram(&mut w, rebind);
        encode_histogram(&mut w, delay);
        let mut rebinds: Vec<(u32, u64)> = self
            .pending_rebinds
            .iter()
            .map(|(addr, at)| (u32::from(*addr), at.as_nanos()))
            .collect();
        rebinds.sort_unstable();
        w.u64(rebinds.len() as u64);
        for (addr, at) in rebinds {
            w.u32(addr);
            w.u64(at);
        }
        w.f64(self.clone_failure_prob);
        w.u64(self.tunnel_degraded_until.as_nanos());
        w.f64(self.tunnel_loss);
        w.u64(self.tunnel_extra_latency.as_nanos());
        // Memory control plane.
        w.bytes(&self.reclaim.snapshot_state());
        w.u64(self.next_merge.as_nanos());
        w.u64(self.merge_total.scanned_pages);
        w.u64(self.merge_total.merged_pages);
        w.u64(self.merge_total.frames_reclaimed);
        w.u64(self.pressure_log.len() as u64);
        for event in &self.pressure_log {
            w.u64(event.used_frames);
            w.u64(event.requested_frames);
            w.u64(event.limit_frames);
        }
        encode_series(&mut w, &self.sharing_series);
        encode_series(&mut w, &self.resident_series);
        // Chunk-store accounting. Resident contents are NOT walked here:
        // each host blob carries manifest references, and restore re-puts
        // materialized chunks from those — O(chunks) bools, not O(blocks).
        let store = self.store.stats();
        w.u64(store.puts);
        w.u64(store.dedupe_hits);
        w.u64(store.materialized);
        w.u64(store.reads);
        // The gateway composite blob last.
        w.bytes(&self.gateway.encode_state());
        w.into_bytes()
    }

    /// Restores state encoded by [`Honeyfarm::encode_state`] into this
    /// farm, which must have been built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Decode`] when the payload is truncated,
    /// structurally inconsistent, or was captured from a farm with a
    /// different server count. On error this farm may be partially
    /// restored — discard it and rebuild.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        const CTX: &str = "core.farm";
        let bad = || SnapshotError::Decode { context: CTX };
        let mut r = SnapReader::new(bytes, CTX);
        let host_count = r.u64()? as usize;
        if host_count != self.hosts.len() {
            return Err(bad());
        }
        let mut host_blobs = Vec::with_capacity(host_count);
        for _ in 0..host_count {
            host_blobs.push(r.bytes()?);
        }
        let mut standby = Vec::with_capacity(host_count);
        for _ in 0..host_count {
            let n = r.u64()?;
            let mut pool = Vec::with_capacity(n.min(1 << 20) as usize);
            for _ in 0..n {
                pool.push(DomainId(r.u64()?));
            }
            standby.push(pool);
        }
        let n_vms = r.u64()?;
        let mut vms = HashMap::with_capacity(n_vms.min(1 << 20) as usize);
        for _ in 0..n_vms {
            let vm = VmRef(r.u64()?);
            let host = r.usize()?;
            if host >= host_count {
                return Err(bad());
            }
            let domain = DomainId(r.u64()?);
            vms.insert(vm, VmSlot { host, domain });
        }
        let next_vmref = r.u64()?;
        let next_host = r.usize()?;
        let request_counter = r.u64()?;
        let rng = SimRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let fault_rng = SimRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let n_newly = r.u64()?;
        let mut newly_infected = Vec::with_capacity(n_newly.min(1 << 20) as usize);
        for _ in 0..n_newly {
            newly_infected.push(VmRef(r.u64()?));
        }
        let n_log = r.u64()?;
        let mut infection_log = Vec::with_capacity(n_log.min(1 << 20) as usize);
        for _ in 0..n_log {
            let vm = VmRef(r.u64()?);
            let victim_addr = if r.bool()? { Some(Ipv4Addr::from(r.u32()?)) } else { None };
            let infected_by = Ipv4Addr::from(r.u32()?);
            let port = if r.bool()? { Some(r.u16()?) } else { None };
            let internal_origin = r.bool()?;
            let at = SimTime::from_nanos(r.u64()?);
            infection_log.push(InfectionRecord {
                vm,
                victim_addr,
                infected_by,
                port,
                internal_origin,
                at,
            });
        }
        let n_captures = r.u64()?;
        let mut captures = HashMap::with_capacity(n_captures.min(1 << 20) as usize);
        for _ in 0..n_captures {
            let hash = r.u64()?;
            let payload = r.bytes()?.to_vec();
            let port = r.u16()?;
            let first_source = Ipv4Addr::from(r.u32()?);
            let first_seen = SimTime::from_nanos(r.u64()?);
            let hits = r.u64()?;
            captures.insert(hash, CaptureRecord { payload, port, first_source, first_seen, hits });
        }
        let n_outputs = r.u64()?;
        let mut outputs = Vec::with_capacity(n_outputs.min(1 << 20) as usize);
        for _ in 0..n_outputs {
            outputs.push(match r.u8()? {
                0 => FarmOutput::SentExternal(decode_packet(r.bytes()?)?),
                1 => {
                    let packet = decode_packet(r.bytes()?)?;
                    let cell = r.u64()? as usize;
                    FarmOutput::ForwardedCell { packet, cell }
                }
                2 => FarmOutput::DroppedInbound(decode_drop_reason(r.u8()?)?),
                3 => FarmOutput::DroppedOutbound(decode_drop_reason(r.u8()?)?),
                _ => return Err(bad()),
            });
        }
        let n_counters = r.usize()?;
        let mut pairs = Vec::with_capacity(n_counters.min(1 << 16));
        for _ in 0..n_counters {
            let name = r.str()?.to_string();
            let value = r.u64()?;
            pairs.push((name, value));
        }
        let counters = CounterSet::from_pairs(pairs);
        let clone_latency_us = decode_histogram(&mut r)?;
        let vmm_time = SimTime::from_nanos(r.u64()?);
        let faults = if r.bool()? {
            let clone_failure_prob = r.f64()?;
            let cursor = r.u64()? as usize;
            let n_events = r.u64()?;
            let mut events = Vec::with_capacity(n_events.min(1 << 20) as usize);
            for _ in 0..n_events {
                let at = SimTime::from_nanos(r.u64()?);
                let kind = decode_fault_kind(&mut r)?;
                events.push(potemkin_sim::FaultEvent { at, kind });
            }
            if cursor > events.len() {
                return Err(bad());
            }
            Some(FaultInjector::from_plan_at(FaultPlan { events, clone_failure_prob }, cursor))
        } else {
            None
        };
        let n_counts = r.u64()?;
        let mut class_counts = Vec::with_capacity(n_counts.min(64) as usize);
        for _ in 0..n_counts {
            class_counts.push(r.u64()?);
        }
        let rebind_hist = decode_histogram(&mut r)?;
        let delay_hist = decode_histogram(&mut r)?;
        let fault_ledger =
            FaultLedger::from_parts(&class_counts, rebind_hist, delay_hist).ok_or_else(bad)?;
        let n_rebinds = r.u64()?;
        let mut pending_rebinds = HashMap::with_capacity(n_rebinds.min(1 << 20) as usize);
        for _ in 0..n_rebinds {
            let addr = Ipv4Addr::from(r.u32()?);
            let at = SimTime::from_nanos(r.u64()?);
            pending_rebinds.insert(addr, at);
        }
        let clone_failure_prob = r.f64()?;
        let tunnel_degraded_until = SimTime::from_nanos(r.u64()?);
        let tunnel_loss = r.f64()?;
        let tunnel_extra_latency = SimTime::from_nanos(r.u64()?);
        let reclaim_blob = r.bytes()?.to_vec();
        let next_merge = SimTime::from_nanos(r.u64()?);
        let merge_total = MergeReport {
            scanned_pages: r.u64()?,
            merged_pages: r.u64()?,
            frames_reclaimed: r.u64()?,
        };
        let n_pressure = r.u64()?;
        let mut pressure_log = Vec::with_capacity(n_pressure.min(1 << 20) as usize);
        for _ in 0..n_pressure {
            pressure_log.push(PressureEvent {
                used_frames: r.u64()?,
                requested_frames: r.u64()?,
                limit_frames: r.u64()?,
            });
        }
        let sharing_series = decode_series(&mut r)?;
        let resident_series = decode_series(&mut r)?;
        let store_puts = r.u64()?;
        let store_dedupe = r.u64()?;
        let store_materialized = r.u64()?;
        let store_reads = r.u64()?;
        let gateway_blob = r.bytes()?.to_vec();
        r.finish()?;

        // Everything parsed; commit. Host and gateway restores mutate in
        // place, which is why whole-farm restore targets a scratch farm.
        // The shared store is rebuilt from scratch: each host's manifest
        // decode re-puts its materialized chunks (deduped on arrival), and
        // the checkpointed accounting is reinstated afterwards so dedupe /
        // materialization counters continue from the captured run.
        self.store.clear();
        for (host, blob) in self.hosts.iter_mut().zip(&host_blobs) {
            host.restore_state(blob)?;
        }
        self.store.set_accounting(store_puts, store_dedupe, store_materialized, store_reads);
        self.gateway.restore_state(&gateway_blob)?;
        let mut reclaim = self.config.reclaim_policy.instantiate();
        reclaim.restore_state(&reclaim_blob)?;
        self.reclaim = reclaim;
        self.standby = standby;
        self.vms = vms;
        self.next_vmref = next_vmref;
        self.next_host = next_host;
        self.request_counter = request_counter;
        self.rng = rng;
        self.fault_rng = fault_rng;
        self.newly_infected = newly_infected;
        self.infection_log = infection_log;
        self.captures = captures;
        self.outputs = outputs;
        self.counters = counters;
        self.clone_latency_us = clone_latency_us;
        self.last_clone_timing = None;
        self.vmm_time = vmm_time;
        self.faults = faults;
        self.fault_ledger = fault_ledger;
        self.pending_rebinds = pending_rebinds;
        self.clone_failure_prob = clone_failure_prob;
        self.tunnel_degraded_until = tunnel_degraded_until;
        self.tunnel_loss = tunnel_loss;
        self.tunnel_extra_latency = tunnel_extra_latency;
        self.next_merge = next_merge;
        self.merge_total = merge_total;
        self.pressure_log = pressure_log;
        self.sharing_series = sharing_series;
        self.resident_series = resident_series;
        Ok(())
    }

    /// Reseeds both RNG streams from the current state mixed with `salt`,
    /// diverging this farm from the run it was restored from (the `fork`
    /// operation's what-if branch). Deterministic: the same restored state
    /// and salt always produce the same branch.
    pub fn reseed(&mut self, salt: u64) {
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = self.rng.state();
        let f = self.fault_rng.state();
        self.rng = SimRng::seed_from(s[0] ^ mix(salt));
        self.fault_rng = SimRng::seed_from(f[0] ^ mix(salt ^ 0xFA17));
    }
}

fn encode_drop_reason(reason: DropReason) -> u8 {
    match reason {
        DropReason::Containment => 0,
        DropReason::RateLimited => 1,
        DropReason::SourceQuota => 2,
        DropReason::PortFiltered => 3,
        DropReason::Backscatter => 4,
        DropReason::Malformed => 5,
        DropReason::SpoofedSource => 6,
        DropReason::AdmissionControl => 7,
        DropReason::GatewayStalled => 8,
        DropReason::TunnelLoss => 9,
        DropReason::Degraded => 10,
    }
}

fn decode_drop_reason(tag: u8) -> Result<DropReason, SnapshotError> {
    Ok(match tag {
        0 => DropReason::Containment,
        1 => DropReason::RateLimited,
        2 => DropReason::SourceQuota,
        3 => DropReason::PortFiltered,
        4 => DropReason::Backscatter,
        5 => DropReason::Malformed,
        6 => DropReason::SpoofedSource,
        7 => DropReason::AdmissionControl,
        8 => DropReason::GatewayStalled,
        9 => DropReason::TunnelLoss,
        10 => DropReason::Degraded,
        _ => return Err(SnapshotError::Decode { context: "core.farm.drop_reason" }),
    })
}

fn encode_fault_kind(w: &mut potemkin_snapshot::SnapWriter, kind: FaultKind) {
    match kind {
        FaultKind::HostCrash { host } => {
            w.u8(0);
            w.usize(host);
        }
        FaultKind::HostRecover { host } => {
            w.u8(1);
            w.usize(host);
        }
        FaultKind::CloneFaultBurst { host, count } => {
            w.u8(2);
            w.usize(host);
            w.u32(count);
        }
        FaultKind::TunnelDegrade { loss, extra_latency, duration } => {
            w.u8(3);
            w.f64(loss);
            w.u64(extra_latency.as_nanos());
            w.u64(duration.as_nanos());
        }
        FaultKind::GatewayStall { duration } => {
            w.u8(4);
            w.u64(duration.as_nanos());
        }
    }
}

fn decode_fault_kind(r: &mut SnapReader<'_>) -> Result<FaultKind, SnapshotError> {
    Ok(match r.u8()? {
        0 => FaultKind::HostCrash { host: r.usize()? },
        1 => FaultKind::HostRecover { host: r.usize()? },
        2 => FaultKind::CloneFaultBurst { host: r.usize()?, count: r.u32()? },
        3 => FaultKind::TunnelDegrade {
            loss: r.f64()?,
            extra_latency: SimTime::from_nanos(r.u64()?),
            duration: SimTime::from_nanos(r.u64()?),
        },
        4 => FaultKind::GatewayStall { duration: SimTime::from_nanos(r.u64()?) },
        _ => return Err(SnapshotError::Decode { context: "core.farm.fault_kind" }),
    })
}

/// Encodes a [`LogHistogram`] (shared by the clone-latency and ledger
/// histograms).
fn encode_histogram(w: &mut potemkin_snapshot::SnapWriter, h: &LogHistogram) {
    let (sub_buckets, count, sum, min, max, sparse) = h.snapshot_parts();
    w.u32(sub_buckets);
    w.u64(count);
    w.u128(sum);
    w.u64(min);
    w.u64(max);
    w.u64(sparse.len() as u64);
    for (idx, c) in sparse {
        w.u64(idx);
        w.u64(c);
    }
}

fn decode_histogram(r: &mut SnapReader<'_>) -> Result<LogHistogram, SnapshotError> {
    let bad = || SnapshotError::Decode { context: "core.farm.histogram" };
    let sub_buckets = r.u32()?;
    let count = r.u64()?;
    let sum = r.u128()?;
    let min = r.u64()?;
    let max = r.u64()?;
    let n = r.u64()?;
    let mut sparse = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        sparse.push((r.u64()?, r.u64()?));
    }
    LogHistogram::from_parts(sub_buckets, count, sum, min, max, &sparse).ok_or_else(bad)
}

/// Encodes a [`TimeSeries`] (bin width plus raw bins).
pub(crate) fn encode_series(w: &mut potemkin_snapshot::SnapWriter, series: &TimeSeries) {
    let (bin, bins) = series.snapshot_parts();
    w.u64(bin.as_nanos());
    w.u64(bins.len() as u64);
    for &v in bins {
        w.f64(v);
    }
}

pub(crate) fn decode_series(r: &mut SnapReader<'_>) -> Result<TimeSeries, SnapshotError> {
    let bad = || SnapshotError::Decode { context: "core.farm.series" };
    let bin = SimTime::from_nanos(r.u64()?);
    let n = r.u64()?;
    let mut bins = Vec::with_capacity(n.min(1 << 24) as usize);
    for _ in 0..n {
        bins.push(r.f64()?);
    }
    TimeSeries::from_parts(bin, bins).ok_or_else(bad)
}

pub(crate) fn decode_packet(wire: &[u8]) -> Result<Packet, SnapshotError> {
    Packet::parse(wire).map_err(|_| SnapshotError::Decode { context: "core.farm.packet" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use potemkin_gateway::policy::PolicyConfig;
    use potemkin_net::addr::Ipv4Prefix;

    const ATTACKER: Ipv4Addr = Ipv4Addr::new(6, 6, 6, 6);
    const HP1: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);

    fn syn(src: Ipv4Addr, dst: Ipv4Addr, dport: u16) -> Packet {
        PacketBuilder::new(src, dst).tcp_syn(40_000, dport)
    }

    fn space() -> Ipv4Prefix {
        "10.1.0.0/16".parse().unwrap()
    }

    #[test]
    fn first_contact_materializes_a_vm_that_answers() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 1);
        let outputs = farm.take_outputs();
        let replies: Vec<&Packet> = outputs
            .iter()
            .filter_map(|o| match o {
                FarmOutput::SentExternal(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].src(), HP1);
        assert_eq!(replies[0].dst(), ATTACKER);
        assert_eq!(replies[0].tcp_flags().unwrap(), TcpFlags::SYN_ACK);
    }

    #[test]
    fn closed_port_elicits_rst() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 9_999));
        let outputs = farm.take_outputs();
        let rst = outputs
            .iter()
            .find_map(|o| match o {
                FarmOutput::SentExternal(p) if p.tcp_flags().is_some_and(|f| f.rst) => Some(p),
                _ => None,
            })
            .expect("expected a RST");
        assert_eq!(rst.dst(), ATTACKER);
    }

    #[test]
    fn second_packet_reuses_the_vm() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        farm.inject_external(SimTime::from_secs(1), syn(ATTACKER, HP1, 80));
        assert_eq!(farm.live_vms(), 1, "same destination address, same VM");
        let (flash, _, _, _) = farm.hosts()[0].lifecycle_counts();
        assert_eq!(flash, 1);
    }

    #[test]
    fn distinct_addresses_get_distinct_vms() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        for i in 1..=5u8 {
            farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, i), 445));
        }
        assert_eq!(farm.live_vms(), 5);
    }

    #[test]
    fn ping_answered_without_vm() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        let ping = PacketBuilder::new(ATTACKER, HP1).icmp_echo(1, 1, b"x");
        farm.inject_external(SimTime::ZERO, ping);
        assert_eq!(farm.live_vms(), 0);
        let outputs = farm.take_outputs();
        assert!(matches!(&outputs[0], FarmOutput::SentExternal(p) if p.dst() == ATTACKER));
    }

    #[test]
    fn idle_vms_are_recycled_and_memory_returned() {
        let mut cfg = FarmConfig::small_test();
        cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(30));
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let baseline = farm.hosts()[0].memory_report().used_frames;
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 1);
        farm.tick(SimTime::from_secs(10));
        assert_eq!(farm.live_vms(), 1, "still active window");
        farm.tick(SimTime::from_secs(31));
        assert_eq!(farm.live_vms(), 0, "recycled after idle timeout");
        assert_eq!(farm.hosts()[0].memory_report().used_frames, baseline, "no frame leak");
        assert_eq!(farm.counters().get("vms_recycled"), 1);
    }

    #[test]
    fn slammer_probe_reflects_and_infects_internally() {
        let mut cfg = FarmConfig::small_test();
        // The small profile listens on UDP nowhere; use windows profile for
        // the 1434 listener.
        cfg.profile = GuestProfile::windows_server();
        cfg.frames_per_server = 262_144;
        cfg.worm = Some(WormSpec::slammer(space()));
        let mut farm = Honeyfarm::new(cfg).unwrap();

        // Patient zero materializes and is seeded.
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        assert_eq!(farm.take_new_infections(), vec![vm0]);

        // One scan probe: reflected, new VM cloned, infected on delivery.
        let mut probes = 0;
        loop {
            assert!(farm.worm_probe(SimTime::from_millis(probes), vm0, probes));
            probes += 1;
            if farm.infected_vms() >= 2 {
                break;
            }
            assert!(probes < 500, "worm failed to spread in 500 probes");
        }
        assert!(farm.live_vms() >= 2);
        let infected = farm.take_new_infections();
        assert_eq!(infected.len(), 1);
        assert_ne!(infected[0], vm0);
        // Nothing escaped.
        let escapes =
            farm.take_outputs().iter().filter(|o| matches!(o, FarmOutput::SentExternal(_))).count();
        assert_eq!(escapes, 0, "reflection must keep worm traffic internal");
        assert_eq!(farm.gateway().counters().get("escaped"), 0);
    }

    #[test]
    fn tcp_worm_completes_dialogue_through_reflection() {
        let mut cfg = FarmConfig::small_test();
        cfg.worm = Some(WormSpec::code_red(space()));
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        farm.take_new_infections();

        let mut probes = 0u64;
        while farm.infected_vms() < 2 {
            assert!(farm.worm_probe(SimTime::from_millis(probes * 90), vm0, probes));
            probes += 1;
            assert!(probes < 2_000, "TCP worm failed to spread");
        }
        // The victim was infected through SYN → SYNACK → payload, all
        // internal.
        assert_eq!(farm.gateway().counters().get("escaped"), 0);
        assert!(farm.gateway().counters().get("intra_farm_delivered") > 0);
        assert_eq!(farm.counters().get("infections"), 2); // includes seed
    }

    #[test]
    fn allow_all_lets_probes_escape() {
        let mut cfg = FarmConfig::small_test();
        cfg.gateway.policy = PolicyConfig::allow_all();
        cfg.worm = Some(WormSpec::code_red(space()));
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        for i in 0..10 {
            farm.worm_probe(SimTime::from_millis(i * 100), vm0, i);
        }
        assert!(farm.gateway().counters().get("escaped") > 0);
        let escapes =
            farm.take_outputs().iter().filter(|o| matches!(o, FarmOutput::SentExternal(_))).count();
        assert!(escapes > 0);
    }

    #[test]
    fn drop_all_suppresses_probes_and_infections() {
        let mut cfg = FarmConfig::small_test();
        cfg.gateway.policy = PolicyConfig::drop_all();
        cfg.worm = Some(WormSpec::code_red(space()));
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        for i in 0..50 {
            farm.worm_probe(SimTime::from_millis(i * 100), vm0, i);
        }
        assert_eq!(farm.gateway().counters().get("escaped"), 0);
        assert_eq!(farm.infected_vms(), 1, "worm cannot spread under drop-all");
        assert_eq!(farm.live_vms(), 1, "no reflection, no new VMs");
    }

    #[test]
    fn pressure_eviction_replaces_the_oldest_binding() {
        let mut cfg = FarmConfig::small_test();
        cfg.max_domains_per_server = 2;
        cfg.evict_on_pressure = true;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        // Fill the farm, with the first binding oldest.
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 1), 445));
        farm.inject_external(SimTime::from_secs(1), syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 2), 445));
        assert_eq!(farm.live_vms(), 2);
        // A third address arrives: the oldest VM is replaced, nothing is
        // dropped.
        farm.inject_external(SimTime::from_secs(2), syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 3), 445));
        assert_eq!(farm.live_vms(), 2);
        assert_eq!(farm.counters().get("evicted_for_pressure"), 1);
        assert_eq!(farm.counters().get("dropped_no_capacity"), 0);
        // The evicted address re-binds on its next packet (evicting the now
        // oldest, address 2).
        farm.inject_external(SimTime::from_secs(3), syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 1), 445));
        assert_eq!(farm.live_vms(), 2);
        assert_eq!(farm.counters().get("evicted_for_pressure"), 2);
    }

    #[test]
    fn capacity_exhaustion_drops_new_addresses() {
        let mut cfg = FarmConfig::small_test();
        cfg.max_domains_per_server = 3;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        for i in 1..=10u8 {
            farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, i), 445));
        }
        assert_eq!(farm.live_vms(), 3);
        assert_eq!(farm.counters().get("dropped_no_capacity"), 7);
    }

    #[test]
    fn multiple_servers_share_load() {
        let mut cfg = FarmConfig::small_test();
        cfg.servers = 3;
        cfg.max_domains_per_server = 2;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        for i in 1..=6u8 {
            farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, i), 445));
        }
        assert_eq!(farm.live_vms(), 6);
        for host in farm.hosts() {
            assert_eq!(host.live_domains(), 2, "round-robin placement");
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let mut cfg = FarmConfig::small_test();
        cfg.servers = 0;
        assert!(matches!(Honeyfarm::new(cfg), Err(FarmError::BadConfig { .. })));
        let mut cfg2 = FarmConfig::small_test();
        cfg2.frames_per_server = 100; // image does not fit
        assert!(matches!(Honeyfarm::new(cfg2), Err(FarmError::Vmm(_))));
    }

    #[test]
    fn clone_latency_recorded() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        assert_eq!(farm.clone_latency_us().count(), 1);
        let timing = farm.last_clone_timing().unwrap();
        assert!(timing.total() > SimTime::from_millis(100));
        assert!(farm.vmm_time() >= timing.total());
    }

    #[test]
    fn heterogeneous_profiles_by_prefix() {
        let mut cfg = FarmConfig::small_test();
        // Upper half of the /16 impersonates Linux servers (ssh open).
        cfg.address_profiles =
            vec![("10.1.128.0/17".parse().unwrap(), GuestProfile::linux_server())];
        cfg.frames_per_server = 300_000;
        let mut farm = Honeyfarm::new(cfg).unwrap();

        // ssh to a "Linux" address: accepted.
        let linux_addr = Ipv4Addr::new(10, 1, 200, 1);
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, linux_addr, 22));
        let r1 = farm.take_outputs();
        assert!(
            r1.iter().any(|o| matches!(o, FarmOutput::SentExternal(p)
                if p.tcp_flags().is_some_and(|f| f.syn && f.ack))),
            "Linux profile must accept tcp/22"
        );

        // ssh to a default (small-profile) address: refused.
        let default_addr = Ipv4Addr::new(10, 1, 0, 1);
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, default_addr, 22));
        let r2 = farm.take_outputs();
        assert!(
            r2.iter().any(|o| matches!(o, FarmOutput::SentExternal(p)
                if p.tcp_flags().is_some_and(|f| f.rst))),
            "default profile must refuse tcp/22"
        );

        // Both servers host both images.
        let report = farm.hosts()[0].memory_report();
        let expected_image_frames =
            GuestProfile::small().memory_pages + GuestProfile::linux_server().memory_pages;
        assert_eq!(report.image_frames, expected_image_frames);
    }

    #[test]
    fn standby_pool_hides_clone_latency() {
        let mut cfg = FarmConfig::small_test();
        cfg.standby_per_host = 2;
        cfg.frames_per_server = 200_000;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        assert_eq!(farm.standby_vms(), 2);

        // First two contacts hit the pool: only bind stages.
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 1), 445));
        let pool_timing = farm.last_clone_timing().unwrap().total();
        assert!(pool_timing < SimTime::from_millis(200), "pool hit took {pool_timing}");
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 2), 445));
        assert_eq!(farm.standby_vms(), 0);

        // Third contact pays the full flash clone.
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 3), 445));
        let cold_timing = farm.last_clone_timing().unwrap().total();
        assert!(cold_timing > pool_timing * 3, "cold {cold_timing} vs pool {pool_timing}");
        assert_eq!(farm.counters().get("standby_hits"), 2);
        assert_eq!(farm.live_vms(), 3);
    }

    #[test]
    fn rollback_recycling_refills_the_pool() {
        let mut cfg = FarmConfig::small_test();
        cfg.standby_per_host = 1;
        cfg.recycle = RecycleStrategy::RollbackToPool;
        cfg.frames_per_server = 200_000;
        cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let baseline = farm.hosts()[0].memory_report().used_frames;

        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        assert_eq!(farm.standby_vms(), 0, "pool VM bound");
        farm.tick(SimTime::from_secs(11));
        assert_eq!(farm.live_vms(), 0);
        assert_eq!(farm.standby_vms(), 1, "rolled back into the pool");
        assert_eq!(farm.counters().get("vms_rolled_back"), 1);
        assert_eq!(
            farm.hosts()[0].memory_report().used_frames,
            baseline,
            "rollback returned the delta"
        );

        // The next contact reuses the rolled-back domain — pristine.
        farm.inject_external(SimTime::from_secs(12), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.counters().get("standby_hits"), 2);
        let (flash, _, _, destroys) = farm.hosts()[0].lifecycle_counts();
        assert_eq!(flash, 1, "only the initial pool fill cloned");
        assert_eq!(destroys, 0, "nothing destroyed under rollback recycling");
    }

    #[test]
    fn rolled_back_vm_is_not_infected_anymore() {
        let mut cfg = FarmConfig::small_test();
        cfg.recycle = RecycleStrategy::RollbackToPool;
        cfg.worm = Some(WormSpec::code_red("10.1.0.0/24".parse().unwrap()));
        cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
        cfg.frames_per_server = 200_000;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        assert_eq!(farm.infected_vms(), 1);
        farm.tick(SimTime::from_secs(11));
        assert_eq!(farm.infected_vms(), 0);
        assert_eq!(farm.standby_vms(), 1);
        // Reuse: the standby domain serves a fresh address, uninfected.
        farm.inject_external(
            SimTime::from_secs(12),
            syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 9), 445),
        );
        assert_eq!(farm.live_vms(), 1);
        assert_eq!(farm.infected_vms(), 0);
    }

    #[test]
    fn payload_capture_deduplicates_by_content() {
        let mut cfg = FarmConfig::small_test();
        cfg.worm = Some(WormSpec::code_red("10.1.0.0/24".parse().unwrap()));
        cfg.frames_per_server = 600_000;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let atk = Ipv4Addr::new(6, 6, 6, 6);
        let atk2 = Ipv4Addr::new(7, 7, 7, 7);

        // The same exploit delivered to two addresses by two attackers.
        for (src, dst_octet) in [(atk, 1u8), (atk2, 2u8)] {
            let dst = Ipv4Addr::new(10, 1, 0, dst_octet);
            farm.inject_external(SimTime::ZERO, PacketBuilder::new(src, dst).tcp_syn(9_000, 80));
            let payload = PacketBuilder::new(src, dst).tcp_segment(
                9_000,
                80,
                TcpFlags::PSH_ACK,
                1,
                1,
                b"GET /default.ida?NNNN-marker",
            );
            farm.inject_external(SimTime::from_millis(5), payload);
        }
        assert_eq!(farm.infected_vms(), 2);
        let captures = farm.captures();
        assert_eq!(captures.len(), 1, "identical payloads deduplicate");
        assert_eq!(captures[0].hits, 2);
        assert_eq!(captures[0].port, 80);
        assert_eq!(captures[0].first_source, atk);
        assert!(captures[0].payload.windows(6).any(|w| w == b"marker"));
        assert_eq!(farm.counters().get("unique_payloads_captured"), 1);
    }

    #[test]
    fn polymorphic_worm_defeats_content_dedup_but_not_capture() {
        let run_with = |polymorphic: bool| {
            let mut cfg = FarmConfig::small_test();
            cfg.profile = GuestProfile::windows_server();
            cfg.frames_per_server = 8_000_000;
            cfg.max_domains_per_server = 4_096;
            cfg.gateway.policy.binding_idle_timeout = SimTime::from_secs(600);
            cfg.worm =
                Some(WormSpec { polymorphic, ..WormSpec::slammer("10.1.0.0/24".parse().unwrap()) });
            let mut farm = Honeyfarm::new(cfg).unwrap();
            let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
            farm.seed_infection(vm0).unwrap();
            for i in 0..40u64 {
                farm.worm_probe(SimTime::from_millis(i), vm0, i);
            }
            (farm.infected_vms(), farm.captures().len())
        };
        let (mono_infected, mono_unique) = run_with(false);
        let (poly_infected, poly_unique) = run_with(true);
        assert!(mono_infected > 5 && poly_infected > 5, "both spread");
        assert_eq!(mono_unique, 1, "monomorphic payloads collapse to one capture");
        assert!(
            poly_unique > mono_unique,
            "polymorphic instances produce distinct captures: {poly_unique}"
        );
    }

    #[test]
    fn infection_provenance_distinguishes_internal_from_external() {
        let mut cfg = FarmConfig::small_test();
        cfg.worm = Some(WormSpec::code_red("10.1.0.0/24".parse().unwrap()));
        cfg.frames_per_server = 600_000;
        cfg.max_domains_per_server = 4_096;
        let mut farm = Honeyfarm::new(cfg).unwrap();

        // External attacker delivers the exploit by hand: SYN, then payload.
        let atk = Ipv4Addr::new(6, 6, 6, 6);
        farm.inject_external(SimTime::ZERO, PacketBuilder::new(atk, HP1).tcp_syn(9_000, 80));
        let payload = PacketBuilder::new(atk, HP1).tcp_segment(
            9_000,
            80,
            TcpFlags::PSH_ACK,
            1,
            1,
            b"GET /default.ida?NNNN-marker",
        );
        farm.inject_external(SimTime::from_millis(5), payload);
        assert_eq!(farm.infected_vms(), 1);
        {
            let log = farm.infection_log();
            assert_eq!(log.len(), 1);
            assert_eq!(log[0].infected_by, atk);
            assert_eq!(log[0].victim_addr, Some(HP1));
            assert_eq!(log[0].port, Some(80));
            assert!(!log[0].internal_origin, "external attacker");
        }

        // The infected honeypot now spreads: reflected infections are
        // attributed as internal.
        let vm0 = farm.take_new_infections()[0];
        let mut probes = 0u64;
        while farm.infected_vms() < 2 {
            farm.worm_probe(SimTime::from_millis(100 + probes * 90), vm0, probes);
            probes += 1;
            assert!(probes < 2_000);
        }
        let log = farm.infection_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].infected_by, HP1, "spread by the first honeypot");
        assert!(log[1].internal_origin, "internal epidemic");
        assert_eq!(farm.counters().get("infections_internal"), 1);
        assert_eq!(farm.counters().get("infections_external"), 1);
    }

    #[test]
    fn emit_from_dead_vm_returns_false() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        let pkt = PacketBuilder::new(HP1, ATTACKER).tcp_syn(1, 2);
        assert!(!farm.emit_from_vm(SimTime::ZERO, VmRef(99), pkt));
        assert!(!farm.worm_probe(SimTime::ZERO, VmRef(99), 0));
    }

    use potemkin_metrics::FaultClass;
    use potemkin_sim::FaultEvent;

    fn plan_of(events: Vec<FaultEvent>) -> potemkin_sim::FaultPlan {
        potemkin_sim::FaultPlan { events, clone_failure_prob: 0.0 }
    }

    #[test]
    fn host_crash_rebinds_victims_on_the_survivor() {
        let mut cfg = FarmConfig::small_test();
        cfg.servers = 2;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        for i in 1..=4u8 {
            farm.inject_external(SimTime::ZERO, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, i), 445));
        }
        assert_eq!(farm.live_vms(), 4);
        assert_eq!(farm.hosts()[0].live_domains(), 2, "round-robin put 2 on each");

        farm.install_fault_plan(plan_of(vec![FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::HostCrash { host: 0 },
        }]));
        farm.tick(SimTime::from_secs(6));

        assert!(!farm.hosts()[0].is_alive());
        assert_eq!(farm.live_vms(), 4, "victims re-placed on the survivor");
        assert_eq!(farm.hosts()[1].live_domains(), 4);
        assert_eq!(farm.counters().get("host_crashes"), 1);
        assert_eq!(farm.counters().get("vms_lost_to_crash"), 2);
        assert_eq!(farm.counters().get("rebinds_after_crash"), 2);
        assert_eq!(farm.pending_rebinds(), 0);
        assert_eq!(farm.fault_ledger().count(FaultClass::HostCrash), 1);
        assert_eq!(farm.fault_ledger().rebind_latency().count(), 2);

        // The re-bound address still answers — through its new VM.
        farm.inject_external(SimTime::from_secs(7), syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 1), 80));
        assert_eq!(farm.counters().get("vms_cloned"), 6, "no extra clone: binding is live");
    }

    #[test]
    fn crash_with_no_survivor_defers_rebinds_until_recovery() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        farm.install_fault_plan(plan_of(vec![
            FaultEvent { at: SimTime::from_secs(2), kind: FaultKind::HostCrash { host: 0 } },
            FaultEvent { at: SimTime::from_secs(32), kind: FaultKind::HostRecover { host: 0 } },
        ]));
        farm.tick(SimTime::from_secs(3));
        assert_eq!(farm.live_vms(), 0, "sole server down, nothing to re-place");
        assert_eq!(farm.pending_rebinds(), 1);
        assert_eq!(farm.counters().get("rebind_deferred"), 1);

        // While down, new first contacts cannot be served.
        farm.inject_external(SimTime::from_secs(4), syn(ATTACKER, Ipv4Addr::new(10, 1, 0, 9), 445));
        assert_eq!(farm.live_vms(), 0);
        assert_eq!(farm.counters().get("dropped_no_capacity"), 1);

        // Recovery fires at 32s; the orphaned address re-binds on its next
        // packet and the full downtime lands in the MTTR histogram.
        farm.inject_external(SimTime::from_secs(40), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 1);
        assert_eq!(farm.pending_rebinds(), 0);
        assert_eq!(farm.counters().get("host_recoveries"), 1);
        let mttr_us = farm.fault_ledger().rebind_latency().quantile(0.5);
        assert!(mttr_us >= 38_000_000, "downtime spans crash to re-bind: {mttr_us}us");
    }

    #[test]
    fn clone_faults_exhaust_retries_and_fall_down_the_ladder() {
        let mut cfg = FarmConfig::small_test();
        cfg.retry = Some(RetryPolicy::default_clone());
        cfg.degradation_ladder = true;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        farm.install_fault_plan(potemkin_sim::FaultPlan {
            events: Vec::new(),
            clone_failure_prob: 1.0, // every attempt fails
        });
        farm.inject_external(SimTime::ZERO, syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 0);
        assert_eq!(farm.counters().get("clone_retries"), 2, "3 attempts, 2 retries");
        assert_eq!(farm.counters().get("degraded_synacks"), 1);
        let outputs = farm.take_outputs();
        let synack = outputs
            .iter()
            .find_map(|o| match o {
                FarmOutput::SentExternal(p) => Some(p),
                _ => None,
            })
            .expect("stateless responder answered");
        assert_eq!(synack.src(), HP1);
        assert_eq!(synack.tcp_flags().unwrap(), TcpFlags::SYN_ACK);

        // Non-SYN traffic hits the bottom rung: drop-with-count.
        let udp = PacketBuilder::new(ATTACKER, Ipv4Addr::new(10, 1, 0, 8)).udp(40_000, 1434, b"x");
        farm.inject_external(SimTime::ZERO, udp);
        assert_eq!(farm.counters().get("dropped_degraded"), 1);
        assert!(farm.fault_ledger().count(FaultClass::CloneFault) >= 3);
    }

    #[test]
    fn transient_clone_fault_is_retried_to_success() {
        let mut cfg = FarmConfig::small_test();
        cfg.retry = Some(RetryPolicy::default_clone());
        let mut farm = Honeyfarm::new(cfg).unwrap();
        // A host-level burst of exactly one fault: attempt 1 fails, the
        // retry succeeds.
        farm.install_fault_plan(plan_of(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::CloneFaultBurst { host: 0, count: 1 },
        }]));
        farm.inject_external(SimTime::from_secs(1), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 1, "retry recovered the clone");
        assert_eq!(farm.counters().get("clone_retries"), 1);
        assert_eq!(farm.counters().get("clone_retries_succeeded"), 1);
        // The backoff shows up in the clone's stage breakdown.
        let timing = farm.last_clone_timing().unwrap();
        assert!(timing.stages().iter().any(|(name, _)| *name == "retry_backoff"));
    }

    #[test]
    fn gateway_stall_and_tunnel_loss_drop_inbound_without_vms() {
        let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
        farm.install_fault_plan(plan_of(vec![
            FaultEvent {
                at: SimTime::ZERO,
                kind: FaultKind::GatewayStall { duration: SimTime::from_secs(5) },
            },
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::TunnelDegrade {
                    loss: 1.0,
                    extra_latency: SimTime::from_millis(50),
                    duration: SimTime::from_secs(5),
                },
            },
        ]));
        // During the stall: the gateway refuses the new binding.
        farm.inject_external(SimTime::from_secs(1), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 0);
        assert_eq!(farm.gateway().counters().get("dropped_gateway_stalled"), 1);
        // During tunnel degradation at 100% loss: the packet never reaches
        // the gateway.
        farm.inject_external(SimTime::from_secs(11), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 0);
        assert_eq!(farm.counters().get("tunnel_dropped"), 1);
        assert_eq!(farm.fault_ledger().count(FaultClass::TunnelDrop), 1);
        // After both windows: normal service resumes.
        farm.inject_external(SimTime::from_secs(20), syn(ATTACKER, HP1, 445));
        assert_eq!(farm.live_vms(), 1);
    }

    #[test]
    fn installing_a_zero_plan_changes_nothing() {
        let run = |install: bool| {
            let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
            if install {
                farm.install_fault_plan(potemkin_sim::FaultPlan::zero());
            }
            for i in 1..=6u8 {
                let t = SimTime::from_secs(u64::from(i));
                farm.inject_external(t, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, i), 445));
                farm.tick(t);
            }
            let mut c = farm.counters().clone();
            c.merge(&farm.gateway().counters_snapshot());
            (farm.live_vms(), c)
        };
        let (vms_a, counters_a) = run(false);
        let (vms_b, counters_b) = run(true);
        assert_eq!(vms_a, vms_b);
        assert_eq!(format!("{counters_a:?}"), format!("{counters_b:?}"));
    }

    /// Builds the busiest farm the test config allows: worm spreading with
    /// reflection, a fault plan mid-flight, merge passes, and a memory
    /// budget, then drives it for `secs` seconds of traffic.
    fn busy_checkpoint_config() -> FarmConfig {
        let mut cfg = FarmConfig::small_test();
        cfg.profile = GuestProfile::windows_server();
        cfg.frames_per_server = 262_144;
        cfg.worm = Some(WormSpec::slammer(space()));
        cfg.merge_interval = Some(SimTime::from_secs(2));
        cfg.memory_budget_frames = Some(200_000);
        cfg
    }

    fn drive_busy(farm: &mut Honeyfarm, start_sec: u64, secs: u64) -> Vec<FarmOutput> {
        let worm_vm = farm.infection_log.first().map(|rec| rec.vm);
        let mut outputs = Vec::new();
        for s in start_sec..start_sec + secs {
            let t = SimTime::from_secs(s);
            let octet = u8::try_from(s % 200 + 1).unwrap();
            farm.inject_external(t, syn(ATTACKER, Ipv4Addr::new(10, 1, 0, octet), 445));
            if s % 3 == 0 {
                let udp = PacketBuilder::new(ATTACKER, Ipv4Addr::new(10, 1, 1, octet)).udp(
                    40_000,
                    1434,
                    &[4u8; 376],
                );
                farm.inject_external(t, udp);
            }
            if let Some(vm) = worm_vm {
                farm.worm_probe(t, vm, s);
            }
            farm.tick(t);
            farm.take_new_infections();
            outputs.extend(farm.take_outputs());
        }
        outputs
    }

    fn checkpoint_fault_plan() -> potemkin_sim::FaultPlan {
        potemkin_sim::FaultPlan {
            events: vec![
                FaultEvent { at: SimTime::from_secs(3), kind: FaultKind::HostCrash { host: 0 } },
                FaultEvent { at: SimTime::from_secs(5), kind: FaultKind::HostRecover { host: 0 } },
                FaultEvent {
                    at: SimTime::from_secs(7),
                    kind: FaultKind::TunnelDegrade {
                        loss: 0.5,
                        extra_latency: SimTime::from_millis(10),
                        duration: SimTime::from_secs(2),
                    },
                },
            ],
            clone_failure_prob: 0.05,
        }
    }

    #[test]
    fn checkpoint_round_trip_is_byte_identical() {
        let mut farm = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        farm.install_fault_plan(checkpoint_fault_plan());
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        drive_busy(&mut farm, 0, 12);
        // Leave undrained outputs in place so they round-trip too.
        farm.inject_external(SimTime::from_secs(12), syn(ATTACKER, HP1, 445));

        let encoded = farm.encode_state();
        let mut restored = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        restored.restore_state(&encoded).unwrap();
        assert_eq!(restored.encode_state(), encoded, "encode∘restore∘encode ≠ encode");
        assert_eq!(restored.live_vms(), farm.live_vms());
        assert_eq!(restored.infected_vms(), farm.infected_vms());
        assert_eq!(format!("{:?}", restored.counters()), format!("{:?}", farm.counters()));
    }

    #[test]
    fn restored_farm_behaves_identically_to_original() {
        let mut farm = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        farm.install_fault_plan(checkpoint_fault_plan());
        let vm0 = farm.materialize(SimTime::ZERO, HP1).unwrap();
        farm.seed_infection(vm0).unwrap();
        drive_busy(&mut farm, 0, 8);

        let encoded = farm.encode_state();
        let mut restored = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        restored.restore_state(&encoded).unwrap();

        // Drive both copies through the same subsequent traffic (which
        // crosses the tunnel-degradation window and more merge passes) and
        // demand bit-identical state at the end.
        let out_a = drive_busy(&mut farm, 8, 8);
        let out_b = drive_busy(&mut restored, 8, 8);
        assert_eq!(out_a.len(), out_b.len());
        assert_eq!(farm.encode_state(), restored.encode_state());
    }

    #[test]
    fn restore_rejects_truncated_and_garbage_payloads() {
        let mut farm = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        drive_busy(&mut farm, 0, 4);
        let encoded = farm.encode_state();

        for cut in [0, 1, encoded.len() / 2, encoded.len() - 1] {
            let mut scratch = Honeyfarm::new(busy_checkpoint_config()).unwrap();
            assert!(
                scratch.restore_state(&encoded[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut scratch = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        assert!(scratch.restore_state(&[0xFFu8; 64]).is_err());

        // A payload captured from a differently sized farm is rejected.
        let mut big = busy_checkpoint_config();
        big.servers = 4;
        let mut scratch = Honeyfarm::new(big).unwrap();
        assert!(matches!(scratch.restore_state(&encoded), Err(SnapshotError::Decode { .. })));
    }

    #[test]
    fn reseed_diverges_deterministically() {
        let mut farm = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        drive_busy(&mut farm, 0, 4);
        let encoded = farm.encode_state();

        let mut fork_a = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        fork_a.restore_state(&encoded).unwrap();
        fork_a.reseed(7);
        let mut fork_b = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        fork_b.restore_state(&encoded).unwrap();
        fork_b.reseed(7);
        assert_eq!(fork_a.encode_state(), fork_b.encode_state(), "same salt, same branch");

        let mut fork_c = Honeyfarm::new(busy_checkpoint_config()).unwrap();
        fork_c.restore_state(&encoded).unwrap();
        fork_c.reseed(8);
        assert_ne!(fork_a.encode_state(), fork_c.encode_state(), "different salt diverges");
    }
}
