//! A minimal JSON parser (no external dependencies).
//!
//! Just enough to validate and round-trip the workspace's structured
//! text formats: objects, arrays, strings with the standard escapes,
//! numbers as `f64`, booleans, null. Two consumers share it — the trace
//! exporters in `potemkin-obs` (round-trip tests, E12's trace self-check)
//! and the scenario DSL loader in `potemkin-services` — so the workspace
//! carries exactly one hand-rolled parser instead of growing a second.
//! Not a general-purpose parser.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`; fine for trace timestamps).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

/// Where and why a parse failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Static description.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { at: start, what: "malformed number" })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes verbatim.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Escapes `text` for inclusion inside a JSON string literal.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Strips full-line `//` comments, so annotated scenario files stay valid
/// inputs for [`JsonValue::parse`]. Only lines whose first non-whitespace
/// characters are `//` are dropped — `//` inside a string on a data line is
/// left alone, so URLs in values survive.
#[must_use]
pub fn strip_line_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if !line.trim_start().starts_with("//") {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}} "#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.as_array()).map(<[JsonValue]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("\"\\q\"").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn line_comments_are_stripped_but_inline_slashes_survive() {
        let doc = "// header comment\n{\n  // a field\n  \"url\": \"http://x/y\"\n}\n";
        let v = JsonValue::parse(&strip_line_comments(doc)).unwrap();
        assert_eq!(v.get("url").and_then(JsonValue::as_str), Some("http://x/y"));
    }
}
