//! Traffic synthesis for the Potemkin experiments.
//!
//! The paper drove its honeyfarm from the UCSD network telescope — live
//! Internet background radiation for a /16 — and from real worms. Neither is
//! available (or advisable) here, so this crate synthesizes the
//! decision-relevant equivalents (see DESIGN.md §5):
//!
//! * [`radiation`] — telescope background radiation: Poisson scan arrivals
//!   with a diurnal cycle, heavy-tailed per-source activity, Zipf port
//!   popularity, and a choice of per-source scan strategies. This drives
//!   the "VMs required vs. recycle time" scalability experiment.
//! * [`worm`] — parameterized worm models (uniform random scanning à la
//!   Code Red / Slammer, subnet-preference à la Blaster/Nimda, hitlist) that
//!   generate probe packets from infected hosts.
//! * [`epidemic`] — the analytic SI epidemic model the simulated outbreaks
//!   are validated against.
//! * [`dialogue`] — fixed multi-stage exploit dialogues for the fidelity
//!   experiment (high-interaction honeypots complete them; scripted
//!   responders stall at their scripted depth). These are the *attacker*
//!   side of an exploit as a hard-coded round sequence; the *service* side
//!   — protocol detection and data-driven interaction state machines
//!   loaded from declarative scenario files — lives in the
//!   `potemkin-services` crate, which builds [`ExploitScript`]s from
//!   parsed scenario data.
//! * [`trace`] — the timestamped packet-event container shared by all
//!   generators.

pub mod dialogue;
pub mod epidemic;
pub mod radiation;
pub mod trace;
pub mod worm;

pub use dialogue::{DialogueOutcome, ExploitScript};
pub use epidemic::SiModel;
pub use radiation::{RadiationConfig, RadiationModel};
pub use trace::{Trace, TraceEvent};
pub use worm::{ScanStrategy, WormSpec};
