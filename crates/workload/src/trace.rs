//! Timestamped packet traces.

use potemkin_net::Packet;
use potemkin_sim::SimTime;

/// One packet at one virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival time.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// A time-ordered sequence of packet events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Traffic-mix summary of a trace (see [`Trace::traffic_mix`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficMix {
    /// Total packets.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// TCP connection-opening SYNs.
    pub tcp_syns: u64,
    /// Other TCP segments (incl. backscatter SYN-ACK/RST).
    pub tcp_other: u64,
    /// UDP datagrams.
    pub udp: u64,
    /// ICMP messages.
    pub icmp: u64,
    /// Unparsed transports.
    pub other: u64,
    /// Packets per destination port (TCP + UDP).
    pub port_counts: std::collections::BTreeMap<u16, u64>,
}

impl TrafficMix {
    /// The `n` most-probed destination ports, most popular first.
    #[must_use]
    pub fn top_ports(&self, n: usize) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self.port_counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
        v.truncate(n);
        v
    }
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (kept unsorted until [`Trace::sort`] or a merge).
    pub fn push(&mut self, at: SimTime, packet: Packet) {
        self.events.push(TraceEvent { at, packet });
    }

    /// Sorts events by time (stable, so equal-time events keep generation
    /// order).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Merges another trace into this one and re-sorts.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.sort();
    }

    /// The events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the trace, yielding events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last event (zero when empty).
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.events.iter().map(|e| e.at).max().unwrap_or(SimTime::ZERO)
    }

    /// Mean packet rate over the trace span (packets/second).
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        let span = self.horizon().as_secs_f64();
        if span > 0.0 {
            self.len() as f64 / span
        } else {
            0.0
        }
    }

    /// Counts distinct source addresses.
    #[must_use]
    pub fn distinct_sources(&self) -> usize {
        let mut set: Vec<u32> = self.events.iter().map(|e| u32::from(e.packet.src())).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Counts distinct destination addresses.
    #[must_use]
    pub fn distinct_destinations(&self) -> usize {
        let mut set: Vec<u32> = self.events.iter().map(|e| u32::from(e.packet.dst())).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Summarizes the trace's traffic mix (protocol counts, top
    /// destination ports) — the deployment-report breakdown.
    #[must_use]
    pub fn traffic_mix(&self) -> TrafficMix {
        let mut mix = TrafficMix::default();
        for e in &self.events {
            mix.packets += 1;
            mix.bytes += e.packet.len() as u64;
            match e.packet.payload() {
                potemkin_net::PacketPayload::Tcp { header, .. } => {
                    if header.flags.syn && !header.flags.ack {
                        mix.tcp_syns += 1;
                    } else {
                        mix.tcp_other += 1;
                    }
                    *mix.port_counts.entry(header.dst_port).or_insert(0) += 1;
                }
                potemkin_net::PacketPayload::Udp { header, .. } => {
                    mix.udp += 1;
                    *mix.port_counts.entry(header.dst_port).or_insert(0) += 1;
                }
                potemkin_net::PacketPayload::Icmp(_) => mix.icmp += 1,
                potemkin_net::PacketPayload::Raw { .. } => mix.other += 1,
            }
        }
        mix
    }

    /// Writes the trace as a standard libpcap file (LINKTYPE_RAW), openable
    /// in Wireshark/tcpdump. Virtual time maps to the pcap timestamp.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_pcap<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let records: Vec<potemkin_net::pcap::PcapRecord> = self
            .events
            .iter()
            .map(|e| potemkin_net::pcap::PcapRecord {
                ts_sec: e.at.as_secs() as u32,
                ts_usec: (e.at.as_micros() % 1_000_000) as u32,
                packet: e.packet.clone(),
            })
            .collect();
        potemkin_net::pcap::write_pcap(w, &records)
    }

    /// Writes the trace in the line-oriented text format
    /// (`<nanoseconds> <hex wire bytes>` per event), so runs can be
    /// replayed across processes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for e in &self.events {
            write!(w, "{} ", e.at.as_nanos())?;
            for b in e.packet.wire() {
                write!(w, "{b:02x}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed lines or unparseable packets,
    /// and propagates I/O errors from `r`.
    pub fn read_from<R: std::io::BufRead>(r: &mut R) -> std::io::Result<Trace> {
        use std::io::{Error, ErrorKind};
        let bad = |what: &str| Error::new(ErrorKind::InvalidData, what.to_string());
        let mut trace = Trace::new();
        let mut line = String::new();
        loop {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            let (nanos, hex) = line.split_once(' ').ok_or_else(|| bad("missing separator"))?;
            let hex = hex.trim_end();
            let nanos: u64 = nanos.parse().map_err(|_| bad("bad timestamp"))?;
            if !hex.len().is_multiple_of(2) {
                return Err(bad("odd hex length"));
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let byte =
                    u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| bad("bad hex digit"))?;
                bytes.push(byte);
            }
            let packet = Packet::parse(&bytes)
                .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
            trace.push(SimTime::from_nanos(nanos), packet);
        }
        trace.sort();
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use potemkin_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(src: u8, dst: u8) -> Packet {
        PacketBuilder::new(Ipv4Addr::new(1, 1, 1, src), Ipv4Addr::new(10, 0, 0, dst))
            .tcp_syn(1000, 80)
    }

    #[test]
    fn sort_orders_by_time() {
        let mut t = Trace::new();
        t.push(SimTime::from_secs(3), pkt(1, 1));
        t.push(SimTime::from_secs(1), pkt(2, 2));
        t.push(SimTime::from_secs(2), pkt(3, 3));
        t.sort();
        let times: Vec<u64> = t.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn merge_interleaves() {
        let mut a = Trace::new();
        a.push(SimTime::from_secs(1), pkt(1, 1));
        a.push(SimTime::from_secs(3), pkt(1, 2));
        let mut b = Trace::new();
        b.push(SimTime::from_secs(2), pkt(2, 1));
        a.merge(b);
        assert_eq!(a.len(), 3);
        let times: Vec<u64> = a.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn traffic_mix_classifies_packets() {
        let mut t = Trace::new();
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(10, 0, 0, 1);
        t.push(SimTime::ZERO, PacketBuilder::new(a, b).tcp_syn(1, 445));
        t.push(SimTime::ZERO, PacketBuilder::new(a, b).tcp_syn(2, 445));
        t.push(
            SimTime::ZERO,
            PacketBuilder::new(a, b).tcp_segment(
                3,
                80,
                potemkin_net::tcp::TcpFlags::RST,
                0,
                0,
                &[],
            ),
        );
        t.push(SimTime::ZERO, PacketBuilder::new(a, b).udp(4, 1434, b"x"));
        t.push(SimTime::ZERO, PacketBuilder::new(a, b).icmp_echo(1, 1, b"p"));
        let mix = t.traffic_mix();
        assert_eq!(mix.packets, 5);
        assert_eq!(mix.tcp_syns, 2);
        assert_eq!(mix.tcp_other, 1);
        assert_eq!(mix.udp, 1);
        assert_eq!(mix.icmp, 1);
        assert_eq!(mix.top_ports(1), vec![(445, 2)]);
        assert_eq!(mix.top_ports(10).len(), 3);
        assert!(mix.bytes > 0);
    }

    #[test]
    fn pcap_export_roundtrips_through_parser() {
        let mut t = Trace::new();
        t.push(SimTime::from_millis(1_500), pkt(1, 1));
        t.push(SimTime::from_secs(3), pkt(2, 2));
        let mut buf = Vec::new();
        t.write_pcap(&mut buf).unwrap();
        let records = potemkin_net::pcap::parse_pcap(&buf).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_sec, 1);
        assert_eq!(records[0].ts_usec, 500_000);
        assert_eq!(records[0].packet, t.events()[0].packet);
        assert_eq!(records[1].ts_sec, 3);
    }

    #[test]
    fn file_format_roundtrips() {
        let mut t = Trace::new();
        t.push(SimTime::from_millis(5), pkt(1, 1));
        t.push(SimTime::from_secs(2), pkt(2, 3));
        t.push(
            SimTime::from_nanos(17),
            PacketBuilder::new(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(10, 0, 0, 1))
                .udp(53, 53, b"payload"),
        );
        t.sort();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let parsed = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), t.len());
        for (a, b) in parsed.events().iter().zip(t.events()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.packet, b.packet);
        }
    }

    #[test]
    fn file_format_rejects_garbage() {
        for bad in ["nonsense", "123 zz", "123 abc", "123 dead"] {
            let r = Trace::read_from(&mut bad.as_bytes());
            assert!(r.is_err(), "{bad:?} should fail");
        }
        // Empty input and blank lines are fine.
        assert_eq!(Trace::read_from(&mut "".as_bytes()).unwrap().len(), 0);
        assert_eq!(Trace::read_from(&mut "\n\n".as_bytes()).unwrap().len(), 0);
    }

    #[test]
    fn stats() {
        let mut t = Trace::new();
        assert_eq!(t.mean_rate(), 0.0);
        t.push(SimTime::from_secs(0), pkt(1, 1));
        t.push(SimTime::from_secs(5), pkt(1, 2));
        t.push(SimTime::from_secs(10), pkt(2, 1));
        assert_eq!(t.horizon(), SimTime::from_secs(10));
        assert!((t.mean_rate() - 0.3).abs() < 1e-9);
        assert_eq!(t.distinct_sources(), 2);
        assert_eq!(t.distinct_destinations(), 2);
    }
}
