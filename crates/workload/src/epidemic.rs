//! The analytic SI epidemic model.
//!
//! The containment experiment releases a worm inside the farm and watches it
//! propagate under reflection. Classic epidemic modeling (Staniford et al.'s
//! random-constant-spread model) predicts logistic growth:
//!
//! `i(t) = N / (1 + (N/i0 − 1) · e^(−β t))`
//!
//! where `β = scan_rate × N / |address space|` is the pairwise contact rate
//! times the population. The simulated outbreak's infection curve is
//! validated against this closed form.

use potemkin_sim::SimTime;

/// Susceptible–Infected epidemic with logistic growth.
#[derive(Clone, Copy, Debug)]
pub struct SiModel {
    /// Vulnerable population size.
    pub population: f64,
    /// Initially infected count.
    pub initial_infected: f64,
    /// Probes per second per infected host.
    pub scan_rate: f64,
    /// Size of the scanned address space.
    pub address_space: f64,
}

impl SiModel {
    /// Creates a model.
    ///
    /// Returns `None` for degenerate parameters (empty population, zero
    /// space, no initial infection, or initial > population).
    #[must_use]
    pub fn new(
        population: u64,
        initial_infected: u64,
        scan_rate: f64,
        address_space: u64,
    ) -> Option<Self> {
        if population == 0
            || address_space == 0
            || initial_infected == 0
            || initial_infected > population
            || scan_rate.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater)
        {
            return None;
        }
        Some(SiModel {
            population: population as f64,
            initial_infected: initial_infected as f64,
            scan_rate,
            address_space: address_space as f64,
        })
    }

    /// The epidemic growth exponent β (per second).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.scan_rate * self.population / self.address_space
    }

    /// Expected infected count at time `t`.
    #[must_use]
    pub fn infected_at(&self, t: SimTime) -> f64 {
        let n = self.population;
        let i0 = self.initial_infected;
        let b = self.beta();
        n / (1.0 + (n / i0 - 1.0) * (-b * t.as_secs_f64()).exp())
    }

    /// Time until a fraction `f` of the population is infected.
    ///
    /// Returns `None` for `f` outside `(i0/N, 1)`.
    #[must_use]
    pub fn time_to_fraction(&self, f: f64) -> Option<SimTime> {
        let n = self.population;
        let i0 = self.initial_infected;
        if f <= i0 / n || f >= 1.0 {
            return None;
        }
        let target = f * n;
        // Invert the logistic: t = ln( (N/i0 - 1) / (N/target - 1) ) / β.
        let t = ((n / i0 - 1.0) / (n / target - 1.0)).ln() / self.beta();
        Some(SimTime::from_secs_f64(t))
    }

    /// The characteristic doubling time in the early exponential phase.
    #[must_use]
    pub fn early_doubling_time(&self) -> SimTime {
        SimTime::from_secs_f64(core::f64::consts::LN_2 / self.beta())
    }
}

/// Susceptible–Infected–Susceptible epidemic: infected hosts *recover* at
/// rate γ and become reinfectable.
///
/// This models the honeyfarm's own dynamics under reflection: recycling an
/// infected VM (idle timeout or hard lifetime cap) scrubs it back to
/// pristine state, so the farm's internal epidemic is an SIS process. The
/// classic threshold applies: when the recovery rate γ exceeds the growth
/// rate β, the epidemic goes extinct; otherwise it settles at the endemic
/// equilibrium `i* = N·(1 − γ/β)` — meaning the farm can bound (or
/// extinguish) its own internal infection level purely by tuning the VM
/// recycle time.
#[derive(Clone, Copy, Debug)]
pub struct SisModel {
    /// The underlying SI parameters.
    pub si: SiModel,
    /// Recovery (recycling) rate γ, per second.
    pub gamma: f64,
}

impl SisModel {
    /// Creates an SIS model; `recycle_time` is the mean infectious period
    /// (γ = 1/recycle_time).
    ///
    /// Returns `None` for degenerate parameters.
    #[must_use]
    pub fn new(
        population: u64,
        initial_infected: u64,
        scan_rate: f64,
        address_space: u64,
        recycle_time: SimTime,
    ) -> Option<Self> {
        let si = SiModel::new(population, initial_infected, scan_rate, address_space)?;
        if recycle_time.is_zero() {
            return None;
        }
        Some(SisModel { si, gamma: 1.0 / recycle_time.as_secs_f64() })
    }

    /// Whether the epidemic sustains itself (β > γ).
    #[must_use]
    pub fn is_supercritical(&self) -> bool {
        self.si.beta() > self.gamma
    }

    /// The endemic equilibrium `i* = N(1 − γ/β)`, or zero when
    /// subcritical.
    #[must_use]
    pub fn endemic_equilibrium(&self) -> f64 {
        if self.is_supercritical() {
            self.si.population * (1.0 - self.gamma / self.si.beta())
        } else {
            0.0
        }
    }

    /// Expected infected count at time `t` (closed-form logistic toward the
    /// endemic equilibrium; exponential decay when subcritical).
    #[must_use]
    pub fn infected_at(&self, t: SimTime) -> f64 {
        let b = self.si.beta();
        let g = self.gamma;
        let n = self.si.population;
        let i0 = self.si.initial_infected;
        let r = b - g;
        let secs = t.as_secs_f64();
        if r.abs() < 1e-12 {
            // Critical case: algebraic decay i(t) = i0 / (1 + b·i0·t/N).
            return i0 / (1.0 + b * i0 * secs / n);
        }
        // di/dt = r·i·(1 − i/K) with K = N·r/b.
        let k = n * r / b;
        let x = (k / i0 - 1.0) * (-r * secs).exp();
        let i = k / (1.0 + x);
        if r < 0.0 {
            i.max(0.0)
        } else {
            i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SiModel {
        // 1000 vulnerable hosts in a /16, scanning 10 probes/s.
        SiModel::new(1_000, 1, 10.0, 65_536).unwrap()
    }

    #[test]
    fn rejects_degenerate_params() {
        assert!(SiModel::new(0, 1, 1.0, 100).is_none());
        assert!(SiModel::new(10, 0, 1.0, 100).is_none());
        assert!(SiModel::new(10, 11, 1.0, 100).is_none());
        assert!(SiModel::new(10, 1, 0.0, 100).is_none());
        assert!(SiModel::new(10, 1, 1.0, 0).is_none());
        assert!(SiModel::new(10, 1, f64::NAN, 100).is_none());
    }

    #[test]
    fn starts_at_initial_and_saturates() {
        let m = model();
        assert!((m.infected_at(SimTime::ZERO) - 1.0).abs() < 1e-9);
        let late = m.infected_at(SimTime::from_hours(10));
        assert!((late - 1_000.0).abs() < 1.0, "late = {late}");
    }

    #[test]
    fn growth_is_monotone() {
        let m = model();
        let mut last = 0.0;
        for s in (0..3600).step_by(60) {
            let i = m.infected_at(SimTime::from_secs(s));
            assert!(i >= last);
            last = i;
        }
    }

    #[test]
    fn early_phase_is_exponential() {
        let m = model();
        let d = m.early_doubling_time();
        // At one doubling time, infections ≈ 2 (from 1), while the
        // population is far from saturation.
        let at_d = m.infected_at(d);
        assert!((at_d - 2.0).abs() < 0.1, "at doubling time: {at_d}");
        let at_2d = m.infected_at(d * 2);
        assert!((at_2d - 4.0).abs() < 0.3, "at 2 doublings: {at_2d}");
    }

    #[test]
    fn time_to_fraction_inverts_infected_at() {
        let m = model();
        for f in [0.1, 0.5, 0.9] {
            let t = m.time_to_fraction(f).unwrap();
            let i = m.infected_at(t);
            assert!((i - f * 1_000.0).abs() < 1.0, "f={f}: i={i}");
        }
        assert!(m.time_to_fraction(0.0001).is_none());
        assert!(m.time_to_fraction(1.0).is_none());
    }

    #[test]
    fn faster_scanners_spread_faster() {
        let slow = SiModel::new(1_000, 1, 10.0, 65_536).unwrap();
        let fast = SiModel::new(1_000, 1, 4_000.0, 65_536).unwrap();
        assert!(fast.early_doubling_time() < slow.early_doubling_time() / 100);
        assert!(fast.time_to_fraction(0.5).unwrap() < slow.time_to_fraction(0.5).unwrap());
    }

    #[test]
    fn denser_population_spreads_faster() {
        let sparse = SiModel::new(100, 1, 10.0, 65_536).unwrap();
        let dense = SiModel::new(10_000, 1, 10.0, 65_536).unwrap();
        assert!(dense.beta() > sparse.beta());
    }

    #[test]
    fn sis_rejects_degenerate_params() {
        assert!(SisModel::new(0, 1, 1.0, 10, SimTime::from_secs(1)).is_none());
        assert!(SisModel::new(10, 1, 1.0, 10, SimTime::ZERO).is_none());
        assert!(SisModel::new(10, 1, 1.0, 10, SimTime::from_secs(1)).is_some());
    }

    #[test]
    fn sis_subcritical_epidemic_goes_extinct() {
        // β = 0.5/s over a /24; recycle every 1 s → γ = 1 > β.
        let m = SisModel::new(256, 8, 0.5, 256, SimTime::from_secs(1)).unwrap();
        assert!(!m.is_supercritical());
        assert_eq!(m.endemic_equilibrium(), 0.0);
        assert!((m.infected_at(SimTime::ZERO) - 8.0).abs() < 1e-9);
        let mut last = 8.0;
        for s in 1..60 {
            let i = m.infected_at(SimTime::from_secs(s));
            assert!(i <= last + 1e-9, "must decay monotonically");
            last = i;
        }
        assert!(m.infected_at(SimTime::from_secs(60)) < 0.01);
    }

    #[test]
    fn sis_supercritical_settles_at_endemic_equilibrium() {
        // β = 2/s, recycle every 10 s → γ = 0.1: i* = 256·(1 − 0.05) = 243.2.
        let m = SisModel::new(256, 1, 2.0, 256, SimTime::from_secs(10)).unwrap();
        assert!(m.is_supercritical());
        let eq = m.endemic_equilibrium();
        assert!((eq - 243.2).abs() < 0.1, "eq = {eq}");
        let late = m.infected_at(SimTime::from_secs(600));
        assert!((late - eq).abs() < 0.5, "late = {late}");
        // The equilibrium is below full saturation — recycling holds the
        // internal infection level down.
        assert!(eq < 256.0);
    }

    #[test]
    fn sis_faster_recycling_lowers_equilibrium() {
        let slow = SisModel::new(256, 1, 2.0, 256, SimTime::from_secs(60)).unwrap();
        let fast = SisModel::new(256, 1, 2.0, 256, SimTime::from_secs(2)).unwrap();
        assert!(fast.endemic_equilibrium() < slow.endemic_equilibrium());
    }

    #[test]
    fn sis_critical_case_decays_algebraically() {
        // β == γ exactly.
        let m = SisModel::new(256, 16, 1.0, 256, SimTime::from_secs(1)).unwrap();
        let i0 = m.infected_at(SimTime::ZERO);
        assert!((i0 - 16.0).abs() < 1e-9);
        let i100 = m.infected_at(SimTime::from_secs(100));
        assert!(i100 < 16.0 && i100 > 0.0, "slow decay: {i100}");
        // Slower than any subcritical exponential.
        let sub = SisModel::new(256, 16, 0.5, 256, SimTime::from_secs(1)).unwrap();
        assert!(sub.infected_at(SimTime::from_secs(100)) < i100);
    }

    #[test]
    fn sis_reduces_to_si_when_recycling_is_negligible() {
        let si = model();
        let sis = SisModel::new(1_000, 1, 10.0, 65_536, SimTime::from_hours(1_000)).unwrap();
        for s in [10u64, 100, 1_000] {
            let a = si.infected_at(SimTime::from_secs(s));
            let b = sis.infected_at(SimTime::from_secs(s));
            assert!((a - b).abs() / a < 0.05, "t={s}: SI {a} vs SIS {b}");
        }
    }
}
