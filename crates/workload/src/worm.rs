//! Parameterized worm models.
//!
//! Real worm binaries are neither available nor desirable here; what the
//! containment and fidelity experiments need is each worm's
//! *decision-relevant behaviour*: how fast it scans, how it picks targets,
//! which service it exploits, how many dialogue rounds the exploit needs,
//! and a recognizable payload marker so capture can be asserted. The presets
//! are modeled on the canonical 2001–2004 worms the paper's era studied.

use std::net::Ipv4Addr;

use potemkin_net::addr::Ipv4Prefix;
use potemkin_net::{BufferPool, Packet, PacketBuilder};
use potemkin_sim::{SimRng, SimTime};

use crate::dialogue::ExploitScript;

/// How an infected host picks scan targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Uniformly random addresses within `space` (Code Red, Slammer).
    UniformRandom {
        /// The address space scanned.
        space: Ipv4Prefix,
    },
    /// With probability `local_permille`/1000 pick inside the infected
    /// host's /24 or /16 (Blaster, Nimda); otherwise uniform in `space`.
    SubnetPreference {
        /// The global address space.
        space: Ipv4Prefix,
        /// Per-mille probability of a same-/16 target.
        local16_permille: u16,
        /// Per-mille probability of a same-/24 target.
        local24_permille: u16,
    },
    /// Works through a precomputed list (hitlist/flash worms).
    Hitlist {
        /// The list of targets, probed in order.
        targets: Vec<Ipv4Addr>,
    },
}

/// Transport used by the worm's probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeTransport {
    /// TCP connect to `port` (multi-round exploits).
    Tcp,
    /// Single UDP datagram to `port` (Slammer-style, exploit in one packet).
    Udp,
}

/// A worm behaviour specification.
///
/// # Examples
///
/// ```
/// use potemkin_sim::SimRng;
/// use potemkin_workload::worm::WormSpec;
/// use std::net::Ipv4Addr;
///
/// let space = "10.1.0.0/16".parse().unwrap();
/// let worm = WormSpec::slammer(space);
/// let mut rng = SimRng::seed_from(7);
/// let src = Ipv4Addr::new(10, 1, 0, 1);
/// let target = worm.pick_target(&mut rng, src, 0).unwrap();
/// let probe = worm.probe(src, 1025, target);
/// assert_eq!(probe.flow_key().transport.dst_port(), Some(1434));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WormSpec {
    /// Name for reports.
    pub name: &'static str,
    /// Probes per second per infected host.
    pub scan_rate: f64,
    /// The exploited service port.
    pub port: u16,
    /// The probe transport.
    pub transport: ProbeTransport,
    /// Target selection strategy.
    pub strategy: ScanStrategy,
    /// Dialogue rounds the exploit needs (1 for single-packet UDP worms).
    pub exploit_depth: u8,
    /// A recognizable payload marker (stands in for the exploit bytes).
    pub payload_marker: &'static [u8],
    /// Whether each exploit instance mutates its payload around the marker
    /// (polymorphic worms defeat content-hash dedup; the marker itself
    /// stays constant, as real polymorphic engines keep a functional core).
    pub polymorphic: bool,
}

impl WormSpec {
    /// A Code-Red-like TCP/80 uniform-random scanner.
    #[must_use]
    pub fn code_red(space: Ipv4Prefix) -> Self {
        WormSpec {
            name: "codered",
            scan_rate: 11.0,
            port: 80,
            transport: ProbeTransport::Tcp,
            strategy: ScanStrategy::UniformRandom { space },
            exploit_depth: 2,
            payload_marker: b"GET /default.ida?NNNN-marker",
            polymorphic: false,
        }
    }

    /// A Slammer-like UDP/1434 single-packet worm (very fast scanner).
    #[must_use]
    pub fn slammer(space: Ipv4Prefix) -> Self {
        WormSpec {
            name: "slammer",
            scan_rate: 4_000.0,
            port: 1434,
            transport: ProbeTransport::Udp,
            strategy: ScanStrategy::UniformRandom { space },
            exploit_depth: 1,
            payload_marker: b"\x04slammer-marker",
            polymorphic: false,
        }
    }

    /// A Blaster-like TCP/135 subnet-preference scanner.
    #[must_use]
    pub fn blaster(space: Ipv4Prefix) -> Self {
        WormSpec {
            name: "blaster",
            scan_rate: 20.0,
            port: 135,
            transport: ProbeTransport::Tcp,
            strategy: ScanStrategy::SubnetPreference {
                space,
                local16_permille: 400,
                local24_permille: 0,
            },
            exploit_depth: 3,
            payload_marker: b"blaster-dcom-marker",
            polymorphic: false,
        }
    }

    /// The exploit dialogue this worm drives against a target.
    #[must_use]
    pub fn script(&self) -> ExploitScript {
        ExploitScript::new(self.name, self.port, self.exploit_depth, self.payload_marker)
    }

    /// Mean gap between probes from one infected host.
    #[must_use]
    pub fn probe_gap(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.scan_rate)
    }

    /// Picks the next scan target for an infected host at `src`.
    ///
    /// `probe_idx` sequences hitlist scans; random strategies ignore it.
    #[must_use]
    pub fn pick_target(&self, rng: &mut SimRng, src: Ipv4Addr, probe_idx: u64) -> Option<Ipv4Addr> {
        match &self.strategy {
            ScanStrategy::UniformRandom { space } => {
                Some(space.addr_at(rng.below(space.len())).expect("index in range"))
            }
            ScanStrategy::SubnetPreference { space, local16_permille, local24_permille } => {
                let roll = rng.below(1000) as u16;
                let o = src.octets();
                if roll < *local24_permille {
                    Some(Ipv4Addr::new(o[0], o[1], o[2], rng.below(256) as u8))
                } else if roll < local24_permille + local16_permille {
                    Some(Ipv4Addr::new(o[0], o[1], rng.below(256) as u8, rng.below(256) as u8))
                } else {
                    Some(space.addr_at(rng.below(space.len())).expect("index in range"))
                }
            }
            ScanStrategy::Hitlist { targets } => targets.get(probe_idx as usize).copied(),
        }
    }

    /// The payload bytes for one exploit instance: the marker, plus a
    /// per-instance mutation suffix when the worm is polymorphic.
    #[must_use]
    pub fn payload_instance(&self, instance_seed: u64) -> Vec<u8> {
        let mut p = self.payload_marker.to_vec();
        if self.polymorphic {
            // A nop-sled-style mutation: the functional marker survives.
            p.extend_from_slice(format!(":{instance_seed:016x}").as_bytes());
        }
        p
    }

    /// Builds the first probe packet toward `dst`.
    ///
    /// For UDP worms the probe *is* the exploit (depth 1); for TCP worms it
    /// is the SYN that opens the dialogue.
    #[must_use]
    pub fn probe(&self, src: Ipv4Addr, src_port: u16, dst: Ipv4Addr) -> Packet {
        self.probe_instance(src, src_port, dst, 0)
    }

    /// Like [`WormSpec::probe`], with an explicit instance seed for
    /// polymorphic payloads.
    #[must_use]
    pub fn probe_instance(
        &self,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        instance_seed: u64,
    ) -> Packet {
        match self.transport {
            ProbeTransport::Tcp => PacketBuilder::new(src, dst).tcp_syn(src_port, self.port),
            ProbeTransport::Udp => PacketBuilder::new(src, dst).udp(
                src_port,
                self.port,
                &self.payload_instance(instance_seed),
            ),
        }
    }

    /// [`WormSpec::probe_instance`] with the wire buffer drawn from `pool`
    /// — the farm's allocation-free scanning path. Wire content is
    /// identical to the unpooled builder.
    #[must_use]
    pub fn probe_instance_pooled(
        &self,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        instance_seed: u64,
        pool: &BufferPool,
    ) -> Packet {
        match self.transport {
            ProbeTransport::Tcp => {
                PacketBuilder::new(src, dst).pooled(pool).tcp_syn(src_port, self.port)
            }
            ProbeTransport::Udp => PacketBuilder::new(src, dst).pooled(pool).udp(
                src_port,
                self.port,
                &self.payload_instance(instance_seed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Ipv4Prefix {
        "10.1.0.0/16".parse().unwrap()
    }

    #[test]
    fn presets_sane() {
        for w in
            [WormSpec::code_red(space()), WormSpec::slammer(space()), WormSpec::blaster(space())]
        {
            assert!(w.scan_rate > 0.0);
            assert!(!w.payload_marker.is_empty());
            assert!(w.exploit_depth >= 1);
            assert!(w.probe_gap() > SimTime::ZERO);
        }
        assert_eq!(WormSpec::slammer(space()).exploit_depth, 1);
        assert!(WormSpec::slammer(space()).probe_gap() < WormSpec::code_red(space()).probe_gap());
    }

    #[test]
    fn uniform_targets_inside_space() {
        let w = WormSpec::code_red(space());
        let mut rng = SimRng::seed_from(1);
        let src = Ipv4Addr::new(10, 1, 3, 4);
        for i in 0..1000 {
            let t = w.pick_target(&mut rng, src, i).unwrap();
            assert!(space().contains(t));
        }
    }

    #[test]
    fn subnet_preference_biases_local() {
        let w = WormSpec::blaster(space());
        let mut rng = SimRng::seed_from(2);
        let src = Ipv4Addr::new(10, 1, 7, 7);
        let n = 10_000;
        let mut local16 = 0;
        for i in 0..n {
            let t = w.pick_target(&mut rng, src, i).unwrap();
            let o = t.octets();
            if o[0] == 10 && o[1] == 1 {
                local16 += 1;
            }
        }
        // 40% explicit local preference plus the uniform mass that happens
        // to land in-prefix (all of it here, since space == the /16). The
        // bias shows up for hosts whose /16 differs from the scanned space;
        // verify with a source outside the space instead.
        assert_eq!(local16, n, "space == /16 means everything is local16");
        let mut rng2 = SimRng::seed_from(3);
        let outside_src = Ipv4Addr::new(99, 99, 1, 1);
        let mut same16 = 0;
        for i in 0..n {
            let t = w.pick_target(&mut rng2, outside_src, i).unwrap();
            let o = t.octets();
            if o[0] == 99 && o[1] == 99 {
                same16 += 1;
            }
        }
        let frac = same16 as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.03, "local16 fraction {frac}");
    }

    #[test]
    fn hitlist_is_ordered_and_finite() {
        let targets = vec![
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            Ipv4Addr::new(10, 1, 0, 3),
        ];
        let w = WormSpec {
            name: "flash",
            scan_rate: 100.0,
            port: 80,
            transport: ProbeTransport::Tcp,
            strategy: ScanStrategy::Hitlist { targets: targets.clone() },
            exploit_depth: 1,
            payload_marker: b"flash",
            polymorphic: false,
        };
        let mut rng = SimRng::seed_from(4);
        let src = Ipv4Addr::new(1, 1, 1, 1);
        for (i, expect) in targets.iter().enumerate() {
            assert_eq!(w.pick_target(&mut rng, src, i as u64), Some(*expect));
        }
        assert_eq!(w.pick_target(&mut rng, src, 3), None, "hitlist exhausted");
    }

    #[test]
    fn probe_packet_shape() {
        let src = Ipv4Addr::new(10, 1, 0, 1);
        let dst = Ipv4Addr::new(10, 1, 0, 2);
        let tcp = WormSpec::code_red(space()).probe(src, 1025, dst);
        assert_eq!(tcp.flow_key().transport.dst_port(), Some(80));
        assert!(tcp.tcp_flags().unwrap().syn);
        let udp = WormSpec::slammer(space()).probe(src, 1025, dst);
        assert_eq!(udp.flow_key().transport.dst_port(), Some(1434));
        assert_eq!(udp.app_payload(), b"\x04slammer-marker");
    }

    #[test]
    fn polymorphic_payloads_vary_but_keep_the_marker() {
        let mut w = WormSpec::slammer(space());
        assert_eq!(w.payload_instance(1), w.payload_instance(2), "monomorphic: identical");
        w.polymorphic = true;
        let a = w.payload_instance(1);
        let b = w.payload_instance(2);
        assert_ne!(a, b, "polymorphic instances differ");
        for p in [&a, &b] {
            assert!(
                p.windows(w.payload_marker.len()).any(|win| win == w.payload_marker),
                "marker must survive mutation"
            );
        }
        // The probe carries the instance payload for UDP worms.
        let src = Ipv4Addr::new(10, 1, 0, 1);
        let dst = Ipv4Addr::new(10, 1, 0, 2);
        let p1 = w.probe_instance(src, 1, dst, 1);
        let p2 = w.probe_instance(src, 1, dst, 2);
        assert_ne!(p1.app_payload(), p2.app_payload());
    }

    #[test]
    fn script_carries_worm_identity() {
        let w = WormSpec::blaster(space());
        let s = w.script();
        assert_eq!(s.depth(), 3);
        assert_eq!(s.port(), 135);
    }
}
