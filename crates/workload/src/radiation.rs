//! Telescope background radiation synthesis.
//!
//! A network telescope receives a continuous stream of unsolicited traffic:
//! worm probes, backscatter, and misconfiguration. The published telescope
//! literature of the paper's era characterizes it as (a) Poisson-ish source
//! arrivals with a diurnal cycle, (b) heavy-tailed per-source activity (most
//! sources send a handful of probes, a few scan relentlessly), and (c)
//! highly skewed destination-port popularity. [`RadiationModel`] synthesizes
//! a trace with exactly those properties, deterministically from a seed.

use std::net::Ipv4Addr;

use potemkin_net::addr::Ipv4Prefix;
use potemkin_net::tcp::TcpFlags;
use potemkin_net::PacketBuilder;
use potemkin_sim::{Exponential, Pareto, SimRng, SimTime, Zipf};

use crate::trace::Trace;

/// Scanning behaviour of a radiation source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SourceStrategy {
    /// Probes uniformly random addresses in the telescope.
    Random,
    /// Sweeps addresses sequentially from a random start.
    Sequential,
    /// Revisits one address repeatedly (backscatter-like).
    Fixated,
}

/// Configuration for the radiation generator.
#[derive(Clone, Debug)]
pub struct RadiationConfig {
    /// The telescope prefix being watched.
    pub telescope: Ipv4Prefix,
    /// Mean new-source arrival rate at the diurnal peak (sources/second).
    pub peak_source_rate: f64,
    /// Ratio of trough to peak rate (0–1; the diurnal cycle).
    pub diurnal_trough_ratio: f64,
    /// Period of the diurnal cycle.
    pub diurnal_period: SimTime,
    /// Pareto shape for probes-per-source (≤ ~1.2 gives the observed heavy
    /// tail).
    pub probes_per_source_alpha: f64,
    /// Minimum probes per source.
    pub probes_per_source_min: f64,
    /// Mean inter-probe gap within a source's scan.
    pub mean_probe_gap: SimTime,
    /// Port popularity skew (Zipf exponent over [`Self::ports`]).
    pub port_skew: f64,
    /// The destination ports scanners probe, most popular first.
    pub ports: Vec<u16>,
    /// Fraction of sources that sweep sequentially.
    pub sequential_fraction: f64,
    /// Fraction of sources fixated on one address.
    pub fixated_fraction: f64,
    /// Fraction of sources that send ICMP echo (ping sweeps) instead of
    /// TCP/UDP probes.
    pub ping_fraction: f64,
    /// Fraction of sources that are *backscatter* — responses (SYN-ACK,
    /// RST) from victims of spoofed-source DoS attacks, a large share of
    /// real telescope traffic. Backscatter cannot start an interaction and
    /// should never earn a VM.
    pub backscatter_fraction: f64,
}

impl Default for RadiationConfig {
    /// A /16 telescope with 2005-era ambient radiation: a few new scan
    /// sources per second at peak, worm-era port mix.
    fn default() -> Self {
        RadiationConfig {
            telescope: "10.1.0.0/16".parse().expect("static prefix"),
            peak_source_rate: 4.0,
            diurnal_trough_ratio: 0.4,
            diurnal_period: SimTime::from_hours(24),
            probes_per_source_alpha: 1.15,
            probes_per_source_min: 1.0,
            mean_probe_gap: SimTime::from_millis(150),
            port_skew: 1.1,
            ports: vec![445, 135, 1434, 80, 139, 1433, 22, 25, 3389, 5554],
            sequential_fraction: 0.2,
            fixated_fraction: 0.05,
            ping_fraction: 0.08,
            backscatter_fraction: 0.25,
        }
    }
}

/// The radiation trace generator.
///
/// # Examples
///
/// ```
/// use potemkin_sim::SimTime;
/// use potemkin_workload::radiation::{RadiationConfig, RadiationModel};
///
/// let mut model = RadiationModel::new(RadiationConfig::default(), 42);
/// let trace = model.generate(SimTime::from_secs(30));
/// assert!(!trace.is_empty());
/// // Deterministic: the same seed regenerates the same trace.
/// let again = RadiationModel::new(RadiationConfig::default(), 42)
///     .generate(SimTime::from_secs(30));
/// assert_eq!(trace.len(), again.len());
/// ```
pub struct RadiationModel {
    config: RadiationConfig,
    rng: SimRng,
    port_dist: Zipf,
    probes_dist: Pareto,
}

impl RadiationModel {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no ports, non-positive
    /// rates).
    #[must_use]
    pub fn new(config: RadiationConfig, seed: u64) -> Self {
        assert!(!config.ports.is_empty(), "need at least one port");
        assert!(config.peak_source_rate > 0.0, "need a positive source rate");
        let port_dist = Zipf::new(config.ports.len(), config.port_skew).expect("validated");
        let probes_dist = Pareto::new(config.probes_per_source_min, config.probes_per_source_alpha)
            .expect("validated");
        RadiationModel { config, rng: SimRng::seed_from(seed), port_dist, probes_dist }
    }

    /// Instantaneous source arrival rate at time `t` (diurnal sinusoid
    /// between trough and peak).
    #[must_use]
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let peak = self.config.peak_source_rate;
        let trough = peak * self.config.diurnal_trough_ratio.clamp(0.0, 1.0);
        let phase = (t % self.config.diurnal_period).as_secs_f64()
            / self.config.diurnal_period.as_secs_f64();
        let mid = (peak + trough) / 2.0;
        let amp = (peak - trough) / 2.0;
        mid + amp * (core::f64::consts::TAU * phase).cos()
    }

    fn random_external_source(rng: &mut SimRng) -> Ipv4Addr {
        // Any public-looking /8 except the 10/8 we use for telescopes.
        loop {
            let a = rng.range_u64(1, 223) as u8;
            if a != 10 && a != 127 && a != 172 && a != 192 {
                return Ipv4Addr::new(
                    a,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                );
            }
        }
    }

    /// Generates the full trace up to `horizon`.
    ///
    /// Source arrivals are a non-homogeneous Poisson process (thinning
    /// method); each source then emits its Pareto-sized probe train.
    #[must_use]
    pub fn generate(&mut self, horizon: SimTime) -> Trace {
        let mut trace = Trace::new();
        let peak = self.config.peak_source_rate;
        let gap = Exponential::with_mean(1.0 / peak).expect("positive rate");
        let mut t = SimTime::ZERO;
        loop {
            // Thinning: propose at the peak rate, accept at rate(t)/peak.
            t += SimTime::from_secs_f64(gap.sample(&mut self.rng).max(1e-9));
            if t >= horizon {
                break;
            }
            if !self.rng.chance(self.rate_at(t) / peak) {
                continue;
            }
            self.emit_source(&mut trace, t, horizon);
        }
        trace.sort();
        trace
    }

    fn emit_source(&mut self, trace: &mut Trace, start: SimTime, horizon: SimTime) {
        let src = Self::random_external_source(&mut self.rng);
        let probes = self.probes_dist.sample(&mut self.rng).min(5_000.0) as u64;
        let port_rank = self.port_dist.sample(&mut self.rng);
        let port = self.config.ports[port_rank - 1];
        let r = self.rng.f64();
        let strategy = if r < self.config.fixated_fraction {
            SourceStrategy::Fixated
        } else if r < self.config.fixated_fraction + self.config.sequential_fraction {
            SourceStrategy::Sequential
        } else {
            SourceStrategy::Random
        };
        let kind = self.rng.f64();
        let is_ping = kind < self.config.ping_fraction;
        let is_backscatter =
            !is_ping && kind < self.config.ping_fraction + self.config.backscatter_fraction;
        let telescope = self.config.telescope;
        let first_index = self.rng.below(telescope.len());
        let gap_dist = Exponential::with_mean(self.config.mean_probe_gap.as_secs_f64().max(1e-9))
            .expect("positive gap");
        let mut at = start;
        let src_port = 1024 + (self.rng.below(60_000) as u16);
        let ping_ident = self.rng.next_u32() as u16;
        for i in 0..probes {
            if at >= horizon {
                break;
            }
            let dst_index = match strategy {
                SourceStrategy::Random => self.rng.below(telescope.len()),
                SourceStrategy::Sequential => (first_index + i) % telescope.len(),
                SourceStrategy::Fixated => first_index,
            };
            let dst = telescope.addr_at(dst_index).expect("index reduced mod len");
            let packet = if is_ping {
                PacketBuilder::new(src, dst).ttl(110).icmp_echo(ping_ident, i as u16, b"ping")
            } else if is_backscatter {
                // A DoS victim answering a spoofed SYN that claimed one of
                // the telescope's addresses: SYN-ACK (or RST) from the
                // victim's service port.
                let flags = if self.rng.chance(0.7) { TcpFlags::SYN_ACK } else { TcpFlags::RST };
                PacketBuilder::new(src, dst).ttl(110).tcp_segment(
                    port,
                    src_port,
                    flags,
                    self.rng.next_u32(),
                    self.rng.next_u32(),
                    &[],
                )
            } else if port == 1434 {
                // Slammer-style single-UDP-datagram probe.
                PacketBuilder::new(src, dst).ttl(110).udp(src_port, port, b"radiation-probe")
            } else {
                PacketBuilder::new(src, dst).ttl(110).tcp_syn(src_port, port)
            };
            trace.push(at, packet);
            at += SimTime::from_secs_f64(gap_dist.sample(&mut self.rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> RadiationModel {
        RadiationModel::new(RadiationConfig::default(), seed)
    }

    #[test]
    fn deterministic_given_seed() {
        let horizon = SimTime::from_secs(60);
        let a = model(1).generate(horizon);
        let b = model(1).generate(horizon);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.packet, y.packet);
        }
        let c = model(2).generate(horizon);
        assert_ne!(
            a.events().first().map(|e| e.packet.clone()),
            c.events().first().map(|e| e.packet.clone())
        );
    }

    #[test]
    fn all_destinations_inside_telescope() {
        let t = model(3).generate(SimTime::from_secs(120));
        let prefix: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        for e in t.events() {
            assert!(prefix.contains(e.packet.dst()), "dst {} outside telescope", e.packet.dst());
            assert!(!prefix.contains(e.packet.src()), "src {} inside telescope", e.packet.src());
        }
    }

    #[test]
    fn events_are_time_ordered_within_horizon() {
        let horizon = SimTime::from_secs(60);
        let t = model(4).generate(horizon);
        let mut last = SimTime::ZERO;
        for e in t.events() {
            assert!(e.at >= last);
            assert!(e.at < horizon);
            last = e.at;
        }
    }

    #[test]
    fn rate_is_plausible() {
        let t = model(5).generate(SimTime::from_secs(300));
        // With ~4 sources/s at peak and heavy-tailed probe counts the packet
        // rate must exceed the source rate.
        let rate = t.mean_rate();
        assert!(rate > 2.0, "rate {rate} too low");
        assert!(t.distinct_sources() > 200, "sources {}", t.distinct_sources());
    }

    #[test]
    fn heavy_tail_present() {
        let t = model(6).generate(SimTime::from_secs(600));
        // Count per-source packets; the max source should dominate the
        // median source by a large factor.
        use std::collections::HashMap;
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for e in t.events() {
            *counts.entry(u32::from(e.packet.src())).or_insert(0) += 1;
        }
        let mut v: Vec<u64> = counts.into_values().collect();
        v.sort_unstable();
        let median = v[v.len() / 2];
        let max = *v.last().unwrap();
        assert!(max >= median * 20, "max {max} vs median {median}: tail too light");
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let m = model(7);
        let peak = m.rate_at(SimTime::ZERO);
        let trough = m.rate_at(SimTime::from_hours(12));
        assert!(peak > trough * 2.0, "peak {peak}, trough {trough}");
        let recovered = m.rate_at(SimTime::from_hours(24));
        assert!((recovered - peak).abs() < 1e-9);
    }

    #[test]
    fn traffic_mix_includes_pings_and_backscatter() {
        let t = model(10).generate(SimTime::from_secs(600));
        let mut pings = 0u64;
        let mut backscatter = 0u64;
        let mut syns = 0u64;
        for e in t.events() {
            match e.packet.payload() {
                potemkin_net::PacketPayload::Icmp(_) => pings += 1,
                potemkin_net::PacketPayload::Tcp { header, .. } => {
                    if header.flags.syn && !header.flags.ack {
                        syns += 1;
                    } else if header.flags.rst || (header.flags.syn && header.flags.ack) {
                        backscatter += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(pings > 0, "no pings generated");
        assert!(backscatter > 0, "no backscatter generated");
        assert!(syns > backscatter / 10, "SYNs vanished from the mix");
        // Roughly a quarter of packets are backscatter (per-source fractions
        // weighted by heavy-tailed probe counts — allow a wide band).
        let frac = backscatter as f64 / t.len() as f64;
        assert!((0.05..0.60).contains(&frac), "backscatter fraction {frac}");
    }

    #[test]
    fn zero_fractions_disable_ping_and_backscatter() {
        let cfg = RadiationConfig {
            ping_fraction: 0.0,
            backscatter_fraction: 0.0,
            ..RadiationConfig::default()
        };
        let t = RadiationModel::new(cfg, 11).generate(SimTime::from_secs(120));
        for e in t.events() {
            if let potemkin_net::PacketPayload::Tcp { header, .. } = e.packet.payload() {
                assert!(header.flags.syn && !header.flags.ack, "unexpected non-SYN TCP");
            }
            assert!(
                !matches!(e.packet.payload(), potemkin_net::PacketPayload::Icmp(_)),
                "unexpected ping"
            );
        }
    }

    #[test]
    fn port_mix_is_skewed_and_slammer_is_udp() {
        let t = model(8).generate(SimTime::from_secs(600));
        let mut tcp445 = 0u64;
        let mut udp1434 = 0u64;
        let mut other = 0u64;
        for e in t.events() {
            match e.packet.flow_key().transport.dst_port() {
                Some(445) => tcp445 += 1,
                Some(1434) => {
                    udp1434 += 1;
                    assert!(matches!(e.packet.payload(), potemkin_net::PacketPayload::Udp { .. }));
                }
                _ => other += 1,
            }
        }
        assert!(tcp445 > 0);
        assert!(udp1434 > 0);
        assert!(other > 0);
        // Rank-1 port (445) beats the tail ports combined? Not necessarily,
        // but it must be the single most popular.
        assert!(tcp445 >= udp1434);
    }
}
