//! Multi-stage exploit dialogues.
//!
//! The fidelity argument in the paper is that low-interaction honeypots
//! (scripted responders à la honeyd) cannot carry an exploit past the depth
//! their scripts anticipate, while a real OS image converses indefinitely —
//! so only a high-interaction farm observes the actual payload.
//! [`ExploitScript`] models the attacker's side of an exploit as a fixed
//! sequence of request/response rounds ending in payload delivery; the
//! responder's side is scored by how many rounds it sustains.

/// The attacker's exploit dialogue: `depth` request/response rounds, then
/// the payload.
///
/// Fields are owned so dialogues can be built from parsed scenario data
/// (the `potemkin-services` DSL) as easily as from the static worm presets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploitScript {
    name: String,
    port: u16,
    depth: u8,
    payload_marker: Vec<u8>,
}

/// One attacker request within a dialogue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DialogueRequest {
    /// Round number (0-based).
    pub round: u8,
    /// The request bytes.
    pub data: Vec<u8>,
    /// Whether this request carries the exploit payload (final round).
    pub is_payload: bool,
}

/// Result of driving a dialogue against a responder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DialogueOutcome {
    /// Every round was answered; the payload executed. The honeypot
    /// captured `payload`.
    PayloadDelivered {
        /// The captured payload bytes.
        payload: Vec<u8>,
        /// Rounds completed (== depth).
        rounds: u8,
    },
    /// The responder stopped answering after `rounds` rounds; no payload
    /// was observed.
    StalledAt {
        /// Rounds that were answered.
        rounds: u8,
    },
}

impl DialogueOutcome {
    /// Whether the exploit payload was captured.
    #[must_use]
    pub fn captured(&self) -> bool {
        matches!(self, DialogueOutcome::PayloadDelivered { .. })
    }
}

impl ExploitScript {
    /// Creates a script. Accepts both `&'static` literals (the worm
    /// presets) and owned data from parsed scenarios.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        port: u16,
        depth: u8,
        payload_marker: impl Into<Vec<u8>>,
    ) -> Self {
        ExploitScript {
            name: name.into(),
            port,
            depth: depth.max(1),
            payload_marker: payload_marker.into(),
        }
    }

    /// The exploit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exploited port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Rounds required (≥ 1).
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// The request for round `round` (`None` past the end).
    #[must_use]
    pub fn request(&self, round: u8) -> Option<DialogueRequest> {
        if round >= self.depth {
            return None;
        }
        let is_payload = round + 1 == self.depth;
        let mut data = format!("{}:round{}:", self.name, round).into_bytes();
        if is_payload {
            data.extend_from_slice(&self.payload_marker);
        }
        Some(DialogueRequest { round, data, is_payload })
    }

    /// Drives the dialogue against a responder closure.
    ///
    /// The responder receives each request's bytes and returns `Some`
    /// response bytes while it can keep up, or `None` when its script runs
    /// out. The exploit succeeds only if every round up to the payload is
    /// answered. (The payload round itself must also be *accepted* — a
    /// responder returning `None` on it means a reset connection.)
    pub fn drive<F>(&self, mut responder: F) -> DialogueOutcome
    where
        F: FnMut(&DialogueRequest) -> Option<Vec<u8>>,
    {
        let mut answered = 0;
        for round in 0..self.depth {
            let req = self.request(round).expect("round < depth");
            match responder(&req) {
                Some(_) => answered += 1,
                None => return DialogueOutcome::StalledAt { rounds: answered },
            }
        }
        DialogueOutcome::PayloadDelivered { payload: self.payload_marker.clone(), rounds: answered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script(depth: u8) -> ExploitScript {
        ExploitScript::new("test-sploit", 445, depth, b"MARKER")
    }

    #[test]
    fn requests_sequence_and_payload_flag() {
        let s = script(3);
        for r in 0..3u8 {
            let req = s.request(r).unwrap();
            assert_eq!(req.round, r);
            assert_eq!(req.is_payload, r == 2);
            if req.is_payload {
                assert!(req.data.ends_with(b"MARKER"));
            }
        }
        assert!(s.request(3).is_none());
    }

    #[test]
    fn full_responder_captures_payload() {
        let s = script(3);
        let outcome = s.drive(|req| Some(format!("ack{}", req.round).into_bytes()));
        assert!(outcome.captured());
        match outcome {
            DialogueOutcome::PayloadDelivered { payload, rounds } => {
                assert_eq!(payload, b"MARKER");
                assert_eq!(rounds, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shallow_responder_stalls() {
        let s = script(4);
        // Scripted responder that only knows 2 rounds.
        let outcome = s.drive(|req| (req.round < 2).then(|| b"ok".to_vec()));
        assert_eq!(outcome, DialogueOutcome::StalledAt { rounds: 2 });
        assert!(!outcome.captured());
    }

    #[test]
    fn depth_one_is_single_packet_exploit() {
        let s = script(1);
        let req = s.request(0).unwrap();
        assert!(req.is_payload);
        let outcome = s.drive(|_| Some(vec![]));
        assert!(outcome.captured());
    }

    #[test]
    fn zero_depth_clamped_to_one() {
        let s = ExploitScript::new("x", 1, 0, b"m");
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn mute_responder_captures_nothing() {
        let s = script(2);
        let outcome = s.drive(|_| None);
        assert_eq!(outcome, DialogueOutcome::StalledAt { rounds: 0 });
    }
}
