//! Named monotonic counters.
//!
//! Components (gateway, VMM hosts, policy engine) export their telemetry as a
//! [`CounterSet`]; the controller merges them into one report.

use std::collections::BTreeMap;

/// A set of named monotonic `u64` counters.
///
/// Counters are created on first touch. Names are `&'static str` because the
/// set of telemetry points is fixed at compile time; a BTreeMap keeps reports
/// deterministically ordered.
///
/// # Examples
///
/// ```
/// use potemkin_metrics::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.incr("packets_in");
/// c.add("bytes_in", 1500);
/// assert_eq!(c.get("packets_in"), 1);
/// assert_eq!(c.get("bytes_in"), 1500);
/// assert_eq!(c.get("never_touched"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `delta` to `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Reads a counter (zero if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges another set into this one by summing matching names.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The number of distinct counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Checkpoint support: rebuilds a set from `(name, value)` pairs read
    /// back from a snapshot. Names are interned into a global table —
    /// telemetry names form a small fixed vocabulary, so repeated restores
    /// never grow memory beyond that vocabulary.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, u64)>) -> Self {
        let mut set = CounterSet::new();
        for (name, value) in pairs {
            set.counters.insert(intern(name), value);
        }
        set
    }
}

/// Interns a counter name, reusing a previously leaked copy when available.
fn intern(name: String) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = table.lock().expect("intern table poisoned");
    if let Some(&existing) = guard.get(name.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    guard.insert(leaked);
    leaked
}

impl core::fmt::Display for CounterSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name:<32} {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_and_add() {
        let mut c = CounterSet::new();
        c.incr("a");
        c.incr("a");
        c.add("b", 10);
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 10);
        assert_eq!(c.get("c"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = CounterSet::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut c = CounterSet::new();
        c.incr("zeta");
        c.incr("alpha");
        c.incr("mid");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn display_contains_all() {
        let mut c = CounterSet::new();
        c.add("packets", 7);
        let s = c.to_string();
        assert!(s.contains("packets"));
        assert!(s.contains('7'));
    }
}
