//! Plain-text table rendering for the `figures` binary.
//!
//! Every reproduced table/figure is ultimately printed as an aligned text
//! table so EXPERIMENTS.md can quote harness output directly.

use core::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use potemkin_metrics::Table;
///
/// let mut t = Table::new(&["stage", "time (ms)"]);
/// t.row(&["domain create", "112.3"]);
/// t.row(&["device setup", "44.0"]);
/// let s = t.to_string();
/// assert!(s.contains("domain create"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            title: None,
        }
    }

    /// Sets a title printed above the table.
    #[must_use]
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC 4180 quoting), for plotting pipelines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.headers.iter().map(|h| cell(h)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:<width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align cells that look numeric, left-align text.
                let numeric =
                    cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]).with_title("demo");
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== demo ==");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].starts_with("----"));
        // All data lines equal width of the longest.
        assert!(lines[3].len() <= lines[4].len());
        assert!(s.contains("a-much-longer-name"));
    }

    #[test]
    fn numeric_cells_right_aligned() {
        let mut t = Table::new(&["n"]);
        t.row(&["5"]);
        t.row(&["50000"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2], "    5");
        assert_eq!(lines[3], "50000");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(&["x", "y"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains('x'));
        assert!(s.contains('y'));
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new(&["name", "note"]);
        t.row(&["plain", "simple"]);
        t.row(&["with,comma", "with \"quotes\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,simple");
        assert_eq!(lines[2], "\"with,comma\",\"with \"\"quotes\"\"\"");
    }

    #[test]
    fn csv_of_empty_table_is_header_only() {
        let t = Table::new(&["a", "b"]);
        assert_eq!(t.to_csv(), "a,b\n");
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["k", "v"]);
        t.row_owned(vec!["key".into(), format!("{:.2}", 1.5)]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("1.50"));
    }
}
