//! Concurrency analysis for the paper's scalability argument.
//!
//! Potemkin's central scalability claim is a queueing argument: the number of
//! simultaneously live VMs a honeyfarm needs is (by Little's law) the product
//! of the VM *creation rate* λ and the VM *lifetime* T, so aggressive VM
//! recycling (small T) turns an intractable "one VM per telescope address"
//! requirement into hundreds of VMs. The reproduction of the paper's
//! "VMs required vs. VM lifetime" figure feeds first-contact arrival times
//! into a [`ConcurrencyAnalyzer`] and sweeps T.

use potemkin_sim::SimTime;

/// Result of a concurrency analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConcurrencyStats {
    /// Number of intervals analyzed.
    pub intervals: u64,
    /// Maximum number of simultaneously open intervals.
    pub peak: u64,
    /// Time-averaged number of open intervals over the span.
    pub mean: f64,
    /// The observation span used for the average.
    pub span: SimTime,
    /// Arrival rate λ over the span (intervals per second).
    pub arrival_rate: f64,
}

impl ConcurrencyStats {
    /// The Little's-law prediction `λ · T` for mean concurrency given the
    /// interval duration `lifetime`.
    #[must_use]
    pub fn littles_law_prediction(&self, lifetime: SimTime) -> f64 {
        self.arrival_rate * lifetime.as_secs_f64()
    }
}

/// Sweep-style analyzer: collects interval start times (and optional
/// per-interval durations), then answers concurrency queries.
#[derive(Clone, Debug, Default)]
pub struct ConcurrencyAnalyzer {
    /// (start, duration) pairs.
    intervals: Vec<(SimTime, SimTime)>,
}

impl ConcurrencyAnalyzer {
    /// Creates an empty analyzer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an interval starting at `start` lasting `duration`.
    pub fn record(&mut self, start: SimTime, duration: SimTime) {
        self.intervals.push((start, duration));
    }

    /// Records only a start; the duration is supplied at analysis time
    /// (used for lifetime sweeps over the same arrival trace).
    pub fn record_start(&mut self, start: SimTime) {
        self.intervals.push((start, SimTime::ZERO));
    }

    /// Number of recorded intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether no intervals are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Analyzes concurrency with each interval's own duration.
    #[must_use]
    pub fn analyze(&self) -> ConcurrencyStats {
        self.analyze_with(None)
    }

    /// Analyzes concurrency treating every interval as lasting `lifetime`
    /// (ignoring recorded durations) — the paper's recycle-time sweep.
    #[must_use]
    pub fn analyze_with_lifetime(&self, lifetime: SimTime) -> ConcurrencyStats {
        self.analyze_with(Some(lifetime))
    }

    fn analyze_with(&self, fixed: Option<SimTime>) -> ConcurrencyStats {
        if self.intervals.is_empty() {
            return ConcurrencyStats {
                intervals: 0,
                peak: 0,
                mean: 0.0,
                span: SimTime::ZERO,
                arrival_rate: 0.0,
            };
        }
        // Sweep-line over +1 at start, -1 at end events.
        let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(self.intervals.len() * 2);
        let mut span_end = SimTime::ZERO;
        let mut span_start = SimTime::MAX;
        for &(start, dur) in &self.intervals {
            let dur = fixed.unwrap_or(dur);
            let end = start.saturating_add(dur);
            events.push((start, 1));
            events.push((end, -1));
            span_end = span_end.max(end);
            span_start = span_start.min(start);
        }
        // Ends sort before starts at the same instant (interval is
        // half-open [start, end)).
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut current: i64 = 0;
        let mut peak: i64 = 0;
        let mut weighted: f64 = 0.0;
        let mut last = span_start;
        for (t, delta) in events {
            if t > last {
                weighted += current as f64 * (t - last).as_secs_f64();
                last = t;
            }
            current += delta;
            peak = peak.max(current);
        }
        let span = span_end.saturating_sub(span_start);
        let span_secs = span.as_secs_f64();
        ConcurrencyStats {
            intervals: self.intervals.len() as u64,
            peak: peak as u64,
            mean: if span_secs > 0.0 { weighted / span_secs } else { 0.0 },
            span,
            arrival_rate: if span_secs > 0.0 {
                self.intervals.len() as f64 / span_secs
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_analyzer() {
        let a = ConcurrencyAnalyzer::new();
        let s = a.analyze();
        assert_eq!(s.peak, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.intervals, 0);
    }

    #[test]
    fn disjoint_intervals_peak_one() {
        let mut a = ConcurrencyAnalyzer::new();
        a.record(secs(0), secs(1));
        a.record(secs(2), secs(1));
        a.record(secs(4), secs(1));
        let s = a.analyze();
        assert_eq!(s.peak, 1);
        assert_eq!(s.intervals, 3);
        // 3 seconds busy out of a 5-second span.
        assert!((s.mean - 0.6).abs() < 1e-9, "mean = {}", s.mean);
    }

    #[test]
    fn nested_intervals_stack() {
        let mut a = ConcurrencyAnalyzer::new();
        a.record(secs(0), secs(10));
        a.record(secs(2), secs(2));
        a.record(secs(3), secs(1));
        let s = a.analyze();
        assert_eq!(s.peak, 3);
    }

    #[test]
    fn half_open_semantics_no_phantom_overlap() {
        // [0, 1) and [1, 2) never overlap.
        let mut a = ConcurrencyAnalyzer::new();
        a.record(secs(0), secs(1));
        a.record(secs(1), secs(1));
        assert_eq!(a.analyze().peak, 1);
    }

    #[test]
    fn lifetime_sweep_monotonic() {
        let mut a = ConcurrencyAnalyzer::new();
        for i in 0..100 {
            a.record_start(SimTime::from_millis(i * 100));
        }
        let short = a.analyze_with_lifetime(SimTime::from_millis(50));
        let long = a.analyze_with_lifetime(secs(5));
        assert!(long.peak > short.peak);
        assert!(long.mean > short.mean);
        assert_eq!(short.peak, 1, "50ms lifetime, 100ms spacing: no overlap");
        assert_eq!(long.peak, 50, "5s lifetime, 100ms spacing: 50 concurrent");
    }

    #[test]
    fn littles_law_holds_for_poisson_like_arrivals() {
        // Deterministic arrivals at 10/s with 2s lifetime: N = λT = 20.
        let mut a = ConcurrencyAnalyzer::new();
        for i in 0..1000u64 {
            a.record_start(SimTime::from_millis(i * 100));
        }
        let lifetime = secs(2);
        let s = a.analyze_with_lifetime(lifetime);
        let predicted = s.littles_law_prediction(lifetime);
        assert!(
            (s.mean - predicted).abs() / predicted < 0.05,
            "mean {} vs predicted {predicted}",
            s.mean
        );
    }

    #[test]
    fn span_and_rate() {
        let mut a = ConcurrencyAnalyzer::new();
        a.record(secs(10), secs(1));
        a.record(secs(19), secs(1));
        let s = a.analyze();
        assert_eq!(s.span, secs(10));
        assert!((s.arrival_rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_intervals() {
        let mut a = ConcurrencyAnalyzer::new();
        a.record_start(secs(1));
        a.record_start(secs(1));
        let s = a.analyze();
        assert_eq!(s.peak, 0, "zero-length intervals never open");
    }
}
