//! Exponentially-weighted event-rate estimation.
//!
//! The gateway reports its instantaneous inbound packet rate (the load
//! figure the paper's gateway-scalability discussion is about) without
//! storing per-packet history: an exponentially-weighted moving average
//! over inter-event gaps, driven by virtual time.

use potemkin_sim::SimTime;

/// An EWMA estimator of event rate (events/second).
///
/// # Examples
///
/// ```
/// use potemkin_metrics::RateEstimator;
/// use potemkin_sim::SimTime;
///
/// // 100ms time constant: converges within ~0.5s of event time.
/// let mut r = RateEstimator::new(SimTime::from_millis(100));
/// // 100 events at 10ms spacing ≈ 100 events/s.
/// for i in 1..=100u64 {
///     r.record(SimTime::from_millis(i * 10));
/// }
/// let rate = r.rate(SimTime::from_secs(1));
/// assert!((80.0..120.0).contains(&rate), "rate = {rate}");
/// ```
#[derive(Clone, Debug)]
pub struct RateEstimator {
    /// Smoothing horizon: gaps are averaged with time constant τ.
    tau: f64,
    /// Current smoothed rate (events/s).
    rate: f64,
    last: Option<SimTime>,
    events: u64,
}

impl RateEstimator {
    /// Creates an estimator with time constant `tau` (larger = smoother).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is zero.
    #[must_use]
    pub fn new(tau: SimTime) -> Self {
        assert!(!tau.is_zero(), "time constant must be non-zero");
        RateEstimator { tau: tau.as_secs_f64(), rate: 0.0, last: None, events: 0 }
    }

    /// Records one event at virtual time `now`.
    pub fn record(&mut self, now: SimTime) {
        self.events += 1;
        match self.last {
            None => {
                self.last = Some(now);
            }
            Some(last) if now > last => {
                let gap = (now - last).as_secs_f64();
                let inst = 1.0 / gap;
                let alpha = 1.0 - (-gap / self.tau).exp();
                self.rate += alpha * (inst - self.rate);
                self.last = Some(now);
            }
            Some(_) => {
                // Same-instant burst: fold into the estimate as an
                // infinitesimally-spaced event by bumping the rate toward
                // burstiness conservatively (count it, keep the clock).
            }
        }
    }

    /// The smoothed rate, decayed for the idle gap since the last event.
    #[must_use]
    pub fn rate(&self, now: SimTime) -> f64 {
        match self.last {
            None => 0.0,
            Some(last) => {
                let idle = now.saturating_sub(last).as_secs_f64();
                // With no events for `idle`, the estimate decays toward the
                // upper bound 1/idle (you cannot claim a higher rate than
                // the silence allows).
                if idle > 0.0 {
                    self.rate.min(1.0 / idle).max(0.0)
                } else {
                    self.rate
                }
            }
        }
    }

    /// Lifetime event count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.events
    }

    /// Checkpoint support: `(tau, rate, last, events)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (f64, f64, Option<SimTime>, u64) {
        (self.tau, self.rate, self.last, self.events)
    }

    /// Checkpoint support: rebuilds an estimator bit-exactly from parts
    /// captured by [`RateEstimator::snapshot_parts`].
    #[must_use]
    pub fn from_parts(tau: f64, rate: f64, last: Option<SimTime>, events: u64) -> Self {
        RateEstimator { tau, rate, last, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_converges() {
        // EWMA time constant 1 s: after 6 s of a steady 1000/s stream the
        // estimate is within e^-6 ≈ 0.25% of the true rate.
        let mut r = RateEstimator::new(SimTime::from_secs(1));
        for i in 1..=6_000u64 {
            r.record(SimTime::from_millis(i)); // 1000 events/s
        }
        let rate = r.rate(SimTime::from_secs(6));
        assert!((950.0..1_050.0).contains(&rate), "rate = {rate}");
        assert_eq!(r.count(), 6_000);
    }

    #[test]
    fn empty_and_single_event() {
        let r = RateEstimator::new(SimTime::from_secs(1));
        assert_eq!(r.rate(SimTime::from_secs(5)), 0.0);
        let mut r2 = RateEstimator::new(SimTime::from_secs(1));
        r2.record(SimTime::from_secs(1));
        assert_eq!(r2.rate(SimTime::from_secs(1)), 0.0, "one event defines no rate yet");
    }

    #[test]
    fn idle_decay_bounds_the_estimate() {
        let mut r = RateEstimator::new(SimTime::from_secs(1));
        for i in 1..=1_000u64 {
            r.record(SimTime::from_millis(i));
        }
        let busy = r.rate(SimTime::from_secs(1));
        assert!(busy > 500.0);
        // After 100 quiet seconds, the claimable rate is at most 0.01/s.
        let quiet = r.rate(SimTime::from_secs(101));
        assert!(quiet <= 0.011, "quiet rate = {quiet}");
    }

    #[test]
    fn rate_tracks_changes() {
        let mut r = RateEstimator::new(SimTime::from_millis(500));
        // 10/s for 5 seconds.
        for i in 1..=50u64 {
            r.record(SimTime::from_millis(i * 100));
        }
        let slow = r.rate(SimTime::from_secs(5));
        assert!((7.0..13.0).contains(&slow), "slow = {slow}");
        // Then 1000/s for 2 seconds.
        for i in 0..2_000u64 {
            r.record(SimTime::from_secs(5) + SimTime::from_millis(i + 1));
        }
        let fast = r.rate(SimTime::from_secs(7));
        assert!(fast > 300.0, "fast = {fast}");
    }

    #[test]
    fn same_instant_events_do_not_panic_or_inflate() {
        let mut r = RateEstimator::new(SimTime::from_secs(1));
        for _ in 0..100 {
            r.record(SimTime::from_secs(1));
        }
        r.record(SimTime::from_secs(2));
        let rate = r.rate(SimTime::from_secs(2));
        assert!(rate.is_finite());
        assert_eq!(r.count(), 101);
    }
}
