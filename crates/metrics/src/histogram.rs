//! Log-bucketed histograms with quantile estimation.
//!
//! Latency and size distributions in the experiments span orders of magnitude
//! (sub-microsecond page faults to multi-second VM lifetimes), so buckets
//! grow geometrically: each power of two is split into a fixed number of
//! linear sub-buckets, giving a bounded relative error everywhere — the same
//! scheme HdrHistogram uses, reduced to the essentials.

/// A histogram of `u64` samples with geometric buckets.
///
/// Relative quantile error is bounded by `1 / sub_buckets`.
///
/// # Examples
///
/// ```
/// use potemkin_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new(16);
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.50);
/// assert!((450..=560).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Clone, Debug)]
pub struct LogHistogram {
    sub_buckets: u32,
    /// counts[b] where b encodes (power, sub-bucket).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates a histogram with the given number of linear sub-buckets per
    /// power of two (higher = more precision, more memory).
    ///
    /// # Panics
    ///
    /// Panics if `sub_buckets` is 0 or not a power of two.
    #[must_use]
    pub fn new(sub_buckets: u32) -> Self {
        assert!(
            sub_buckets.is_power_of_two() && sub_buckets > 0,
            "sub_buckets must be a power of two"
        );
        // 64 powers of two, each with `sub_buckets` linear sub-buckets.
        LogHistogram {
            sub_buckets,
            counts: vec![0; 64 * sub_buckets as usize],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(&self, value: u64) -> usize {
        let sb = self.sub_buckets as u64;
        if value < sb {
            // The first `sub_buckets` values map one-to-one.
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64;
        let shift = msb - sb.trailing_zeros() as u64;
        let sub = (value >> shift) - sb; // in [0, sb)
        ((msb - sb.trailing_zeros() as u64 + 1) * sb + sub) as usize
    }

    fn bucket_low(&self, bucket: usize) -> u64 {
        let sb = self.sub_buckets as u64;
        let b = bucket as u64;
        if b < sb {
            return b;
        }
        let power = b / sb - 1 + sb.trailing_zeros() as u64;
        let sub = b % sb;
        (sb + sub) << (power - sb.trailing_zeros() as u64)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = self.bucket_of(value);
        self.counts[b] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a sample `n` times.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let b = self.bucket_of(value);
        self.counts[b] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimates the quantile `q` in `[0, 1]` (returns the lower bound of the
    /// bucket containing the target rank; zero when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to observed extremes for tighter tails.
                return self.bucket_low(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Checkpoint support: `(sub_buckets, count, sum, min, max, sparse)`
    /// where `sparse` lists only non-zero buckets as `(index, count)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (u32, u64, u128, u64, u64, Vec<(u64, u64)>) {
        let sparse = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        (self.sub_buckets, self.count, self.sum, self.min, self.max, sparse)
    }

    /// Checkpoint support: rebuilds a histogram from parts captured by
    /// [`LogHistogram::snapshot_parts`]. Returns `None` when the parts are
    /// structurally invalid (bad sub-bucket count or out-of-range index).
    #[must_use]
    pub fn from_parts(
        sub_buckets: u32,
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
        sparse: &[(u64, u64)],
    ) -> Option<Self> {
        if sub_buckets == 0 || !sub_buckets.is_power_of_two() {
            return None;
        }
        let mut h = LogHistogram::new(sub_buckets);
        for &(idx, c) in sparse {
            let slot = h.counts.get_mut(usize::try_from(idx).ok()?)?;
            *slot = c;
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        Some(h)
    }

    /// Merges another histogram (must have identical `sub_buckets`).
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_buckets, other.sub_buckets, "histogram precision mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(16);
        for v in 0..16u64 {
            h.record(v);
        }
        // Values below sub_buckets land in their own bucket.
        for v in 0..16u64 {
            assert_eq!(h.bucket_of(v), v as usize);
            assert_eq!(h.bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_low_is_lower_bound_of_bucket() {
        let h = LogHistogram::new(16);
        for v in [1u64, 15, 16, 17, 100, 1000, 4096, 1 << 20, u64::MAX / 2] {
            let b = h.bucket_of(v);
            let low = h.bucket_low(b);
            assert!(low <= v, "low {low} > value {v}");
            // The next bucket's low must be above the value.
            let next_low = h.bucket_low(b + 1);
            assert!(v < next_low, "value {v} >= next bucket low {next_low}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LogHistogram::new(32);
        let v = 123_456_789u64;
        h.record(v);
        let p = h.quantile(1.0);
        let err = (v as f64 - p as f64).abs() / v as f64;
        assert!(err <= 1.0 / 32.0 + 1e-9, "err = {err}");
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = LogHistogram::new(32);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.05, "p99 = {p99}");
        assert_eq!(h.quantile(0.0), 1);
        // quantile returns a bucket lower bound: within 1/32 of the true max.
        let p100 = h.quantile(1.0) as f64;
        assert!((10_000.0 - p100) / 10_000.0 <= 1.0 / 32.0, "p100 = {p100}");
    }

    #[test]
    fn mean_min_max() {
        let mut h = LogHistogram::new(16);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LogHistogram::new(16);
        let mut b = LogHistogram::new(16);
        a.record_n(500, 100);
        for _ in 0..100 {
            b.record(500);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new(16);
        let mut b = LogHistogram::new(16);
        a.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1_000_000));
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_mismatched_precision_panics() {
        let mut a = LogHistogram::new(16);
        let b = LogHistogram::new(32);
        a.merge(&b);
    }

    #[test]
    fn extreme_values() {
        let mut h = LogHistogram::new(16);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(0.0), 0);
    }
}
