//! Fault-injection telemetry: per-fault-class counters and latency
//! histograms.
//!
//! [`FaultLedger`] is the observability surface of the fault-injection
//! harness: every injected fault is recorded under its [`FaultClass`], and
//! the two recovery latencies the degradation experiments report — time to
//! re-bind an address after its host crashed, and added tunnel delay — are
//! accumulated in log-bucketed histograms.

use core::fmt;

use crate::histogram::LogHistogram;

/// The classes of injected faults the harness distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A physical server crashed.
    HostCrash,
    /// A crashed server came back online.
    HostRecovery,
    /// A flash-clone attempt failed with an injected fault.
    CloneFault,
    /// An inbound packet was dropped by a degraded tunnel.
    TunnelDrop,
    /// The gateway entered a stall window.
    GatewayStall,
}

impl FaultClass {
    /// All classes, in the canonical reporting order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::HostCrash,
        FaultClass::HostRecovery,
        FaultClass::CloneFault,
        FaultClass::TunnelDrop,
        FaultClass::GatewayStall,
    ];

    /// Stable kebab-case name (canonical-report and display key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::HostCrash => "host-crash",
            FaultClass::HostRecovery => "host-recovery",
            FaultClass::CloneFault => "clone-fault",
            FaultClass::TunnelDrop => "tunnel-drop",
            FaultClass::GatewayStall => "gateway-stall",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Per-fault-class counters plus recovery-latency histograms.
///
/// Cloneable and mergeable so per-shard ledgers can be folded into one
/// farm-wide report after a sharded run.
#[derive(Clone)]
pub struct FaultLedger {
    counts: [u64; FaultClass::ALL.len()],
    /// Time from a host crash to an affected address being re-bound on a
    /// surviving host (microseconds) — the farm's MTTR distribution.
    rebind_latency_us: LogHistogram,
    /// Extra one-way delay injected on tunnel-degraded packets
    /// (microseconds).
    tunnel_delay_us: LogHistogram,
}

impl Default for FaultLedger {
    fn default() -> Self {
        FaultLedger::new()
    }
}

impl FaultLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        FaultLedger {
            counts: [0; FaultClass::ALL.len()],
            rebind_latency_us: LogHistogram::new(32),
            tunnel_delay_us: LogHistogram::new(32),
        }
    }

    fn idx(class: FaultClass) -> usize {
        FaultClass::ALL.iter().position(|&c| c == class).expect("class listed in ALL")
    }

    /// Records one occurrence of `class`.
    pub fn record(&mut self, class: FaultClass) {
        self.counts[Self::idx(class)] += 1;
    }

    /// Occurrences of `class` so far.
    #[must_use]
    pub fn count(&self, class: FaultClass) -> u64 {
        self.counts[Self::idx(class)]
    }

    /// Total faults recorded across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one address re-bind latency (crash → re-placement), in
    /// microseconds.
    pub fn record_rebind_us(&mut self, us: u64) {
        self.rebind_latency_us.record(us);
    }

    /// Records the extra tunnel delay applied to one packet, in
    /// microseconds.
    pub fn record_tunnel_delay_us(&mut self, us: u64) {
        self.tunnel_delay_us.record(us);
    }

    /// The re-bind (MTTR) latency histogram, in microseconds.
    #[must_use]
    pub fn rebind_latency(&self) -> &LogHistogram {
        &self.rebind_latency_us
    }

    /// The injected tunnel-delay histogram, in microseconds.
    #[must_use]
    pub fn tunnel_delay(&self) -> &LogHistogram {
        &self.tunnel_delay_us
    }

    /// Checkpoint support: `(per-class counts in `FaultClass::ALL` order,
    /// re-bind histogram, tunnel-delay histogram)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (Vec<u64>, &LogHistogram, &LogHistogram) {
        (self.counts.to_vec(), &self.rebind_latency_us, &self.tunnel_delay_us)
    }

    /// Checkpoint support: rebuilds a ledger from parts captured by
    /// [`FaultLedger::snapshot_parts`]. Returns `None` when the class-count
    /// vector does not match `FaultClass::ALL`.
    #[must_use]
    pub fn from_parts(
        counts: &[u64],
        rebind_latency_us: LogHistogram,
        tunnel_delay_us: LogHistogram,
    ) -> Option<Self> {
        let counts: [u64; FaultClass::ALL.len()] = counts.try_into().ok()?;
        Some(FaultLedger { counts, rebind_latency_us, tunnel_delay_us })
    }

    /// Folds another ledger into this one (sweep aggregation).
    pub fn merge(&mut self, other: &FaultLedger) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.rebind_latency_us.merge(&other.rebind_latency_us);
        self.tunnel_delay_us.merge(&other.tunnel_delay_us);
    }
}

impl fmt::Display for FaultLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in FaultClass::ALL {
            writeln!(f, "  {:<14} {:>8}", class.name(), self.count(class))?;
        }
        if self.rebind_latency_us.count() > 0 {
            writeln!(
                f,
                "  rebind MTTR    p50={}us p99={}us (n={})",
                self.rebind_latency_us.quantile(0.5),
                self.rebind_latency_us.quantile(0.99),
                self.rebind_latency_us.count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_class() {
        let mut l = FaultLedger::new();
        l.record(FaultClass::HostCrash);
        l.record(FaultClass::HostCrash);
        l.record(FaultClass::CloneFault);
        assert_eq!(l.count(FaultClass::HostCrash), 2);
        assert_eq!(l.count(FaultClass::CloneFault), 1);
        assert_eq!(l.count(FaultClass::TunnelDrop), 0);
        assert_eq!(l.total(), 3);
    }

    #[test]
    fn rebind_histogram_quantiles() {
        let mut l = FaultLedger::new();
        for us in [100u64, 200, 400, 100_000] {
            l.record_rebind_us(us);
        }
        assert_eq!(l.rebind_latency().count(), 4);
        assert!(l.rebind_latency().quantile(0.5) <= 400);
        assert!(l.rebind_latency().quantile(1.0) >= 50_000);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FaultLedger::new();
        let mut b = FaultLedger::new();
        a.record(FaultClass::GatewayStall);
        b.record(FaultClass::GatewayStall);
        b.record(FaultClass::TunnelDrop);
        b.record_tunnel_delay_us(1_000);
        a.merge(&b);
        assert_eq!(a.count(FaultClass::GatewayStall), 2);
        assert_eq!(a.count(FaultClass::TunnelDrop), 1);
        assert_eq!(a.tunnel_delay().count(), 1);
    }

    #[test]
    fn display_lists_classes() {
        let mut l = FaultLedger::new();
        l.record(FaultClass::HostCrash);
        l.record_rebind_us(500);
        let s = l.to_string();
        assert!(s.contains("host-crash"));
        assert!(s.contains("rebind MTTR"));
        assert_eq!(FaultClass::HostCrash.to_string(), "host-crash");
    }
}
