//! Measurement utilities for Potemkin experiments.
//!
//! Every table and figure in the reproduction is computed from the primitives
//! here: named [`counter`]s, log-bucketed [`histogram`]s with quantiles,
//! binned [`timeseries`], a concurrency/[`littles_law`] analyzer (the paper's
//! scalability argument is a Little's-law argument: VMs required ≈ arrival
//! rate × VM lifetime), and a plain-text [`table`] renderer used by the
//! `figures` binary to print paper-style tables.

pub mod counter;
pub mod faults;
pub mod histogram;
pub mod littles_law;
pub mod rate;
pub mod table;
pub mod timeseries;

pub use counter::CounterSet;
pub use faults::{FaultClass, FaultLedger};
pub use histogram::LogHistogram;
pub use littles_law::{ConcurrencyAnalyzer, ConcurrencyStats};
pub use rate::RateEstimator;
pub use table::Table;
pub use timeseries::TimeSeries;
