//! Binned time series.
//!
//! Figures like "packets per second over the run" and "infected honeypots
//! over time" are time series with a fixed bin width. [`TimeSeries`]
//! accumulates values into bins keyed by virtual time and renders the series
//! for the `figures` binary.

use potemkin_sim::SimTime;

/// A fixed-bin-width time series of `f64` accumulators.
///
/// # Examples
///
/// ```
/// use potemkin_metrics::TimeSeries;
/// use potemkin_sim::SimTime;
///
/// let mut ts = TimeSeries::new(SimTime::from_secs(1));
/// ts.add(SimTime::from_millis(500), 1.0);
/// ts.add(SimTime::from_millis(700), 1.0);
/// ts.add(SimTime::from_millis(1200), 1.0);
/// assert_eq!(ts.bin_value(0), 2.0);
/// assert_eq!(ts.bin_value(1), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bin_width: SimTime,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    #[must_use]
    pub fn new(bin_width: SimTime) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be non-zero");
        TimeSeries { bin_width, bins: Vec::new() }
    }

    /// The bin index for a timestamp.
    #[must_use]
    pub fn bin_index(&self, at: SimTime) -> usize {
        (at / self.bin_width) as usize
    }

    /// Adds `value` to the bin containing `at`, growing the series as
    /// needed.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = self.bin_index(at);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Records an observation of 1 (a count series).
    pub fn incr(&mut self, at: SimTime) {
        self.add(at, 1.0);
    }

    /// Sets the bin containing `at` to the max of its current value and
    /// `value` (a peak-tracking series).
    pub fn record_max(&mut self, at: SimTime, value: f64) {
        let idx = self.bin_index(at);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] = self.bins[idx].max(value);
    }

    /// The value of bin `idx` (zero beyond the end).
    #[must_use]
    pub fn bin_value(&self, idx: usize) -> f64 {
        self.bins.get(idx).copied().unwrap_or(0.0)
    }

    /// The number of bins (highest touched bin + 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether no bin has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The configured bin width.
    #[must_use]
    pub fn bin_width(&self) -> SimTime {
        self.bin_width
    }

    /// Iterates `(bin_start_time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &v)| (self.bin_width * i as u64, v))
    }

    /// Sum of all bins.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Largest bin value (zero when empty).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// Mean of the bins that exist (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.total() / self.bins.len() as f64
        }
    }

    /// Checkpoint support: `(bin_width, bins)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (SimTime, &[f64]) {
        (self.bin_width, &self.bins)
    }

    /// Checkpoint support: rebuilds a series from parts captured by
    /// [`TimeSeries::snapshot_parts`]. Returns `None` for a zero bin width.
    #[must_use]
    pub fn from_parts(bin_width: SimTime, bins: Vec<f64>) -> Option<Self> {
        if bin_width.is_zero() {
            return None;
        }
        Some(TimeSeries { bin_width, bins })
    }

    /// Adds `other` into `self` bin-by-bin, growing as needed. Used to fold
    /// per-shard series (e.g. live VMs per cell) into a farm-wide series.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.bin_width, other.bin_width, "cannot merge differing bin widths");
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_bins_and_grows() {
        let mut a = TimeSeries::new(SimTime::from_secs(1));
        a.add(SimTime::from_secs(0), 2.0);
        a.add(SimTime::from_secs(1), 3.0);
        let mut b = TimeSeries::new(SimTime::from_secs(1));
        b.add(SimTime::from_secs(1), 5.0);
        b.add(SimTime::from_secs(3), 7.0);
        a.merge(&b);
        assert_eq!(a.bin_value(0), 2.0);
        assert_eq!(a.bin_value(1), 8.0);
        assert_eq!(a.bin_value(2), 0.0);
        assert_eq!(a.bin_value(3), 7.0);
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "differing bin widths")]
    fn merge_mismatched_widths_panics() {
        let mut a = TimeSeries::new(SimTime::from_secs(1));
        a.merge(&TimeSeries::new(SimTime::from_secs(2)));
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn binning_boundaries() {
        let mut ts = TimeSeries::new(secs(10));
        ts.incr(SimTime::ZERO);
        ts.incr(SimTime::from_millis(9_999));
        ts.incr(secs(10)); // exactly on the boundary goes to bin 1
        assert_eq!(ts.bin_value(0), 2.0);
        assert_eq!(ts.bin_value(1), 1.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn sparse_bins_are_zero() {
        let mut ts = TimeSeries::new(secs(1));
        ts.incr(secs(5));
        assert_eq!(ts.len(), 6);
        for i in 0..5 {
            assert_eq!(ts.bin_value(i), 0.0);
        }
        assert_eq!(ts.bin_value(5), 1.0);
        assert_eq!(ts.bin_value(99), 0.0, "beyond end reads zero");
    }

    #[test]
    fn record_max_tracks_peaks() {
        let mut ts = TimeSeries::new(secs(1));
        ts.record_max(secs(0), 5.0);
        ts.record_max(secs(0), 3.0);
        ts.record_max(secs(0), 8.0);
        assert_eq!(ts.bin_value(0), 8.0);
    }

    #[test]
    fn aggregates() {
        let mut ts = TimeSeries::new(secs(1));
        ts.add(secs(0), 1.0);
        ts.add(secs(1), 3.0);
        ts.add(secs(2), 2.0);
        assert_eq!(ts.total(), 6.0);
        assert_eq!(ts.peak(), 3.0);
        assert!((ts.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_bin_starts() {
        let mut ts = TimeSeries::new(secs(2));
        ts.incr(secs(3));
        let points: Vec<(SimTime, f64)> = ts.iter().collect();
        assert_eq!(points, vec![(secs(0), 0.0), (secs(2), 1.0)]);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(secs(1));
        assert!(ts.is_empty());
        assert_eq!(ts.total(), 0.0);
        assert_eq!(ts.peak(), 0.0);
        assert_eq!(ts.mean(), 0.0);
    }
}
