//! The federation's top-level routing tier.
//!
//! N member farms sit behind one [`FederationRouter`]: each farm's
//! monitored range is advertised into a longest-prefix-match
//! [`RouteTable`], and each farm terminates a GRE uplink keyed by its farm
//! id (reusing the gateway's [`TunnelEndpoint`], which rejects overlapping
//! advertisements). A packet leaving farm A for an address farm B owns is
//! GRE-encapsulated with A's key, *transits* the tier — decapsulate,
//! route, re-encapsulate with B's key — and is handed to B's ingress. The
//! hop is content-preserving byte-for-byte (GRE encap/decap round-trips
//! exactly), which is one leg of the federation determinism argument.

use potemkin_gateway::tunnel::{Telescope, TunnelEndpoint, TunnelStats};
use potemkin_gateway::GatewayError;
use potemkin_net::addr::Ipv4Prefix;
use potemkin_net::gre::GreHeader;
use potemkin_net::Packet;
use potemkin_snapshot::{SnapReader, SnapWriter, SnapshotError};
use std::collections::BTreeMap;

use crate::route::RouteTable;

/// Why the routing tier dropped a frame in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransitDrop {
    /// The uplink frame failed GRE decapsulation (malformed, keyless, or
    /// an unknown farm key).
    Decap,
    /// No route — not even a default — covers the inner destination.
    NoRoute,
}

/// Per-farm link accounting at the routing tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets forwarded *to* this farm (downlink).
    pub downlink_packets: u64,
    /// Inner bytes forwarded to this farm.
    pub downlink_bytes: u64,
    /// Frames from this farm dropped because no route covered the
    /// destination.
    pub route_drops: u64,
}

/// The federation routing tier: per-farm GRE uplinks plus the route table.
#[derive(Default)]
pub struct FederationRouter {
    uplinks: TunnelEndpoint,
    table: RouteTable,
    links: BTreeMap<u32, LinkStats>,
    decap_drops: u64,
}

impl FederationRouter {
    /// A tier with no farms attached.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins a member farm: terminates its uplink tunnel (key = `farm`)
    /// and advertises its monitored prefix.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::OverlappingPrefix`] when `prefix` overlaps
    /// an already-advertised farm — two owners for one address would make
    /// the longest-prefix decision ambiguous.
    pub fn advertise(&mut self, farm: u32, prefix: Ipv4Prefix) -> Result<(), GatewayError> {
        self.uplinks.attach(Telescope { key: farm, prefix })?;
        self.table.insert(prefix, farm);
        self.links.entry(farm).or_default();
        Ok(())
    }

    /// Installs a default route: packets no advertisement covers go to
    /// `farm` instead of being dropped.
    pub fn set_default_route(&mut self, farm: u32) {
        self.table.set_default(farm);
    }

    /// Carries one uplink frame across the tier: decapsulate (charging the
    /// source farm's tunnel stats), longest-prefix-route the inner
    /// destination, re-encapsulate with the owning farm's key.
    ///
    /// # Errors
    ///
    /// Returns the counted [`TransitDrop`] — the frame is dropped, never a
    /// panic, because uplink traffic is untrusted input.
    pub fn transit(&mut self, frame: &[u8]) -> Result<(u32, Vec<u8>), TransitDrop> {
        let (src, inner) = match self.uplinks.decapsulate(frame) {
            Ok(decapsulated) => decapsulated,
            Err(_) => {
                self.decap_drops += 1;
                return Err(TransitDrop::Decap);
            }
        };
        let Some(dest) = self.table.lookup(inner.dst()) else {
            self.links.entry(src).or_default().route_drops += 1;
            return Err(TransitDrop::NoRoute);
        };
        let link = self.links.entry(dest).or_default();
        link.downlink_packets += 1;
        link.downlink_bytes += inner.len() as u64;
        Ok((dest, GreHeader::encapsulate_ipv4(dest, inner.wire())))
    }

    /// Convenience for farm egress: encapsulates `packet` on `src_farm`'s
    /// uplink and transits it, yielding the owning farm and its downlink
    /// frame, or `None` on a (counted) drop.
    pub fn forward(&mut self, src_farm: u32, packet: &Packet) -> Option<(u32, Vec<u8>)> {
        let frame = GreHeader::encapsulate_ipv4(src_farm, packet.wire());
        self.transit(&frame).ok()
    }

    /// The routing tier's view of one farm's uplink (GRE-level counters).
    #[must_use]
    pub fn uplink_stats(&self, farm: u32) -> TunnelStats {
        self.uplinks.stats(farm)
    }

    /// Downlink/drop accounting for one farm.
    #[must_use]
    pub fn link_stats(&self, farm: u32) -> LinkStats {
        self.links.get(&farm).copied().unwrap_or_default()
    }

    /// Frames dropped because no route covered their destination.
    #[must_use]
    pub fn route_drops(&self) -> u64 {
        self.links.values().map(|l| l.route_drops).sum()
    }

    /// Frames dropped at decapsulation (malformed or unknown-key uplinks).
    #[must_use]
    pub fn decap_drops(&self) -> u64 {
        self.decap_drops
    }

    /// Installed routes (excluding any default).
    #[must_use]
    pub fn advertised_routes(&self) -> usize {
        self.table.routes().filter(|r| r.prefix.bits() > 0).count()
    }

    /// Total addresses monitored across member farms.
    #[must_use]
    pub fn monitored_addresses(&self) -> u64 {
        self.uplinks.monitored_addresses()
    }

    /// Number of member farms.
    #[must_use]
    pub fn farms(&self) -> usize {
        self.uplinks.len()
    }

    /// The route table's lookup/miss counters.
    #[must_use]
    pub fn table_counters(&self) -> (u64, u64) {
        (self.table.lookups(), self.table.misses())
    }

    /// Checkpoint support: serializes every transit counter — tunnel
    /// stats, per-farm link stats, route-table counters. Advertisements
    /// are configuration and are rebuilt by the owner before restore.
    #[must_use]
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.bytes(&self.uplinks.encode_state());
        self.table.encode_counters(&mut w);
        w.usize(self.links.len());
        for (&farm, link) in &self.links {
            w.u32(farm);
            w.u64(link.downlink_packets);
            w.u64(link.downlink_bytes);
            w.u64(link.route_drops);
        }
        w.u64(self.decap_drops);
        w.into_bytes()
    }

    /// Restores counters captured by [`FederationRouter::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error on truncated or malformed input; the router
    /// is left untouched in that case.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapReader::new(bytes, "federation.router");
        let tunnel_bytes = r.bytes()?.to_vec();
        let mut table = self.table.clone();
        table.restore_counters(&mut r)?;
        let n = r.usize()?;
        let mut links = BTreeMap::new();
        for _ in 0..n {
            let farm = r.u32()?;
            let link = LinkStats {
                downlink_packets: r.u64()?,
                downlink_bytes: r.u64()?,
                route_drops: r.u64()?,
            };
            links.insert(farm, link);
        }
        let decap_drops = r.u64()?;
        r.finish()?;
        self.uplinks.restore_state(&tunnel_bytes)?;
        self.table = table;
        self.links = links;
        self.decap_drops = decap_drops;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use potemkin_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn router() -> FederationRouter {
        let mut r = FederationRouter::new();
        r.advertise(0, "10.0.0.0/15".parse().unwrap()).unwrap();
        r.advertise(1, "10.2.0.0/15".parse().unwrap()).unwrap();
        r
    }

    fn probe(dst: Ipv4Addr) -> Packet {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 9), dst).tcp_syn(4444, 445)
    }

    #[test]
    fn cross_farm_transit_preserves_packet_bytes() {
        let mut r = router();
        let packet = probe(Ipv4Addr::new(10, 2, 7, 7));
        let (dest, downlink) = r.forward(0, &packet).unwrap();
        assert_eq!(dest, 1);
        let (header, inner) = GreHeader::parse(&downlink).unwrap();
        assert_eq!(header.key, Some(1), "downlink keyed by the owning farm");
        assert_eq!(inner, packet.wire(), "transit is byte-exact");
        assert_eq!(r.uplink_stats(0).packets_in, 1);
        assert_eq!(r.link_stats(1).downlink_packets, 1);
        assert_eq!(r.link_stats(1).downlink_bytes, packet.len() as u64);
    }

    #[test]
    fn overlapping_advertisement_rejected() {
        let mut r = router();
        let err = r.advertise(2, "10.0.4.0/24".parse().unwrap()).unwrap_err();
        assert!(matches!(err, GatewayError::OverlappingPrefix { .. }));
        assert_eq!(r.farms(), 2);
        assert_eq!(r.advertised_routes(), 2, "rejected farm must not leak a route");
    }

    #[test]
    fn unrouted_destination_dropped_and_counted() {
        let mut r = router();
        let stray = probe(Ipv4Addr::new(172, 16, 0, 1));
        assert!(r.forward(0, &stray).is_none());
        assert_eq!(r.link_stats(0).route_drops, 1);
        assert_eq!(r.route_drops(), 1);
        // With a default route installed the same packet transits.
        r.set_default_route(1);
        let (dest, _) = r.forward(0, &stray).unwrap();
        assert_eq!(dest, 1);
    }

    #[test]
    fn malformed_uplinks_dropped_and_counted() {
        let mut r = router();
        assert_eq!(r.transit(&[0x20]), Err(TransitDrop::Decap));
        let unknown_key = GreHeader::encapsulate_ipv4(99, probe(Ipv4Addr::new(10, 0, 0, 1)).wire());
        assert_eq!(r.transit(&unknown_key), Err(TransitDrop::Decap));
        assert_eq!(r.decap_drops(), 2);
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let mut r = router();
        r.forward(0, &probe(Ipv4Addr::new(10, 2, 0, 1))).unwrap();
        r.forward(1, &probe(Ipv4Addr::new(10, 0, 0, 1))).unwrap();
        assert!(r.forward(0, &probe(Ipv4Addr::new(8, 8, 8, 8))).is_none());
        assert!(r.transit(&[0xff]).is_err());
        let bytes = r.encode_state();
        let mut restored = router();
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.encode_state(), bytes, "re-encode must be bit-identical");
        assert_eq!(restored.link_stats(0), r.link_stats(0));
        assert_eq!(restored.link_stats(1), r.link_stats(1));
        assert_eq!(restored.uplink_stats(0), r.uplink_stats(0));
        assert_eq!(restored.table_counters(), r.table_counters());
        assert_eq!(restored.decap_drops(), 1);
        for cut in [0, 3, bytes.len() - 1] {
            let mut fresh = router();
            assert!(fresh.restore_state(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }
}
