//! Federated honeyfarm routing tier.
//!
//! The paper's end vision is a honeyfarm monitoring internet-scale dark
//! address space — far more than one cluster serves. This crate provides
//! the *top tier* that joins N member farms into one federated telescope:
//!
//! * [`RouteTable`] — a deterministic BGP-style longest-prefix-match table
//!   over [`potemkin_net`] prefixes; each farm advertises its monitored
//!   ranges, unadvertised destinations are counted drops (or follow a
//!   default route).
//! * [`FederationRouter`] — the transit hub: per-farm GRE uplinks (the
//!   gateway's [`TunnelEndpoint`](potemkin_gateway::tunnel::TunnelEndpoint)
//!   with overlap-checked advertisements), decapsulate → route →
//!   re-encapsulate, with per-link accounting and checkpoint codecs.
//! * [`FederationLayout`] — the arithmetic tying a telescope prefix, a
//!   global cell partition, and a farm count together so that farms own
//!   clean aggregate prefixes and *regrouping cells into different farm
//!   counts never moves an address between cells*. That invariance is the
//!   heart of the cross-topology determinism argument: see
//!   `potemkin_core::federation` for the driver that rides on it.
//! * [`AdmissionConfig`] — global load-shedding policy, keyed off the
//!   member farms' `MemoryBudget`/`PressureEvent` plumbing.

pub mod route;
pub mod router;

use potemkin_gateway::{ConfigError, GatewayError};
use potemkin_net::addr::Ipv4Prefix;
use std::net::Ipv4Addr;

pub use route::{Route, RouteTable};
pub use router::{FederationRouter, LinkStats, TransitDrop};

/// Global admission control for the federation tier.
///
/// Shedding is decided *per destination cell* from that cell's own farm
/// pressure state — deliberately not per member farm — so the decision is
/// a pure function of simulation state that does not depend on how cells
/// are grouped into farms. The same packets are shed in a 1-farm and a
/// 16-farm layout, keeping merged reports byte-identical across
/// topologies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Shed fabric deliveries into a cell once its farm has logged at
    /// least this many memory-pressure events. `None` (the default)
    /// disables shedding.
    pub shed_after_pressure_events: Option<u64>,
}

impl AdmissionConfig {
    /// Shedding disabled.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Shed once a destination cell's farm has logged `events` pressure
    /// events.
    #[must_use]
    pub fn shed_after(events: u64) -> Self {
        AdmissionConfig { shed_after_pressure_events: Some(events) }
    }
}

/// The geometry of a federated telescope: one monitored prefix split into
/// `cells` contiguous slices, grouped into `farms` contiguous clusters.
///
/// The *cell* partition is the unit of determinism — it is fixed by
/// `(telescope, cells)` alone. Farms are groupings of
/// `cells / farms` consecutive cells, so every farm owns one aggregate
/// sub-prefix ([`FederationLayout::farm_prefix`]) it can advertise, and
/// changing `farms` (1 vs. 16) changes *transport* (which deliveries ride
/// a GRE uplink) but never *ownership* (which cell an address belongs to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FederationLayout {
    telescope: Ipv4Prefix,
    farms: usize,
    cells: usize,
}

impl FederationLayout {
    /// Validates and builds a layout.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `farms` and `cells` are powers of
    /// two with `farms <= cells <= telescope size` (CIDR prefixes only
    /// split evenly at powers of two).
    pub fn new(telescope: Ipv4Prefix, farms: usize, cells: usize) -> Result<Self, ConfigError> {
        if farms == 0 || !farms.is_power_of_two() {
            return Err(ConfigError::new(
                "FederationLayout",
                "farms",
                "must be a power of two >= 1",
            ));
        }
        if cells == 0 || !cells.is_power_of_two() || cells < farms {
            return Err(ConfigError::new(
                "FederationLayout",
                "cells",
                "must be a power of two >= farms",
            ));
        }
        if cells as u64 > telescope.len() {
            return Err(ConfigError::new(
                "FederationLayout",
                "cells",
                "more cells than telescope addresses",
            ));
        }
        Ok(FederationLayout { telescope, farms, cells })
    }

    /// The monitored prefix.
    #[must_use]
    pub fn telescope(&self) -> Ipv4Prefix {
        self.telescope
    }

    /// Member-farm count.
    #[must_use]
    pub fn farms(&self) -> usize {
        self.farms
    }

    /// Global cell count (layout-invariant across farm counts).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Cells per member farm.
    #[must_use]
    pub fn cells_per_farm(&self) -> usize {
        self.cells / self.farms
    }

    /// The farm owning `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cells`.
    #[must_use]
    pub fn farm_of_cell(&self, cell: usize) -> usize {
        assert!(cell < self.cells, "cell out of range");
        cell / self.cells_per_farm()
    }

    /// The aggregate prefix farm `farm` advertises.
    ///
    /// # Panics
    ///
    /// Panics if `farm >= farms`.
    #[must_use]
    pub fn farm_prefix(&self, farm: usize) -> Ipv4Prefix {
        self.telescope
            .subprefix(farm as u64, self.farms as u64)
            .expect("validated farms split the telescope")
    }

    /// The contiguous slice cell `cell` owns.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cells`.
    #[must_use]
    pub fn cell_prefix(&self, cell: usize) -> Ipv4Prefix {
        self.telescope
            .subprefix(cell as u64, self.cells as u64)
            .expect("validated cells split the telescope")
    }

    /// The farm owning `addr`, or `None` outside the telescope.
    #[must_use]
    pub fn farm_of_addr(&self, addr: Ipv4Addr) -> Option<usize> {
        let index = self.telescope.index_of(addr)?;
        Some((index / (self.telescope.len() / self.farms as u64)) as usize)
    }

    /// Builds the routing tier for this layout: one uplink + one
    /// advertisement per farm.
    ///
    /// # Errors
    ///
    /// Returns a [`GatewayError`] if any advertisement overlaps — a
    /// validated layout's slices never do, so an error here is a bug.
    pub fn router(&self) -> Result<FederationRouter, GatewayError> {
        let mut router = FederationRouter::new();
        for farm in 0..self.farms {
            router.advertise(farm as u32, self.farm_prefix(farm))?;
        }
        Ok(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_validation() {
        let telescope: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
        assert!(FederationLayout::new(telescope, 3, 8).is_err(), "farms not a power of two");
        assert!(FederationLayout::new(telescope, 0, 8).is_err());
        assert!(FederationLayout::new(telescope, 4, 6).is_err(), "cells not a power of two");
        assert!(FederationLayout::new(telescope, 8, 4).is_err(), "farms > cells");
        let host: Ipv4Prefix = "10.0.0.0/31".parse().unwrap();
        assert!(FederationLayout::new(host, 1, 4).is_err(), "more cells than addresses");
        assert!(FederationLayout::new(telescope, 4, 16).is_ok());
        assert!(FederationLayout::new(telescope, 1, 1).is_ok(), "degenerate single farm");
    }

    #[test]
    fn cell_ownership_is_farm_count_invariant() {
        let telescope: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
        let cells = 16;
        let reference = FederationLayout::new(telescope, 1, cells).unwrap();
        for farms in [2usize, 4, 8, 16] {
            let layout = FederationLayout::new(telescope, farms, cells).unwrap();
            for cell in 0..cells {
                // The cell slice never moves when farms regroup…
                assert_eq!(layout.cell_prefix(cell), reference.cell_prefix(cell));
                // …and each farm owns a contiguous run of cells whose
                // slices tile its advertised prefix.
                let farm = layout.farm_of_cell(cell);
                assert!(layout.farm_prefix(farm).covers(layout.cell_prefix(cell)));
                assert_eq!(layout.farm_of_addr(layout.cell_prefix(cell).network()), Some(farm));
            }
        }
    }

    #[test]
    fn layout_router_advertises_every_farm_without_overlap() {
        let telescope: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
        let layout = FederationLayout::new(telescope, 8, 16).unwrap();
        let mut router = layout.router().unwrap();
        assert_eq!(router.farms(), 8);
        assert_eq!(router.monitored_addresses(), telescope.len());
        // Every cell's network address routes to the owning farm.
        for cell in 0..16 {
            let addr = layout.cell_prefix(cell).network();
            let packet =
                potemkin_net::PacketBuilder::new(std::net::Ipv4Addr::new(6, 6, 6, 6), addr)
                    .tcp_syn(1024, 80);
            let (dest, _) = router.forward(0, &packet).unwrap();
            assert_eq!(dest as usize, layout.farm_of_cell(cell));
        }
    }

    #[test]
    fn admission_config_constructors() {
        assert_eq!(AdmissionConfig::disabled().shed_after_pressure_events, None);
        assert_eq!(AdmissionConfig::shed_after(3).shed_after_pressure_events, Some(3));
    }
}
