//! A deterministic BGP-style route table over IPv4 prefixes.
//!
//! The federation's top tier decides which member farm owns a packet by
//! longest-prefix match, exactly like a BGP RIB reduced to its
//! best-path-per-prefix view: each farm *advertises* the prefixes it
//! monitors, a default route may catch everything else, and a packet no
//! route covers is counted and dropped — never a panic, because remote
//! traffic is untrusted input.
//!
//! Determinism: the table is a pure value. Lookups depend only on the
//! inserted routes, iteration order is canonical (`BTreeMap`), and the
//! only mutable state is the lookup/miss counters — which are themselves
//! deterministic functions of the traffic.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use potemkin_net::addr::Ipv4Prefix;
use potemkin_snapshot::{SnapReader, SnapWriter, SnapshotError};

/// One advertised route: a prefix and the farm that owns it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The advertised prefix.
    pub prefix: Ipv4Prefix,
    /// The owning farm (tunnel key of its uplink).
    pub next_hop: u32,
}

/// A longest-prefix-match route table.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    /// `(prefix length, network base)` → next hop. Keying by length first
    /// lets the lookup probe each present length exactly once.
    routes: BTreeMap<(u8, u32), u32>,
    /// Distinct prefix lengths present, longest first.
    lengths: Vec<u8>,
    lookups: u64,
    misses: u64,
}

impl RouteTable {
    /// An empty table (every lookup misses).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertises `prefix` as owned by `next_hop`. Re-advertising the
    /// exact same prefix replaces the route and returns the previous next
    /// hop — the tie-break for equal-length, equal-prefix announcements is
    /// last-writer-wins, which is deterministic because insertion order is
    /// program order. Distinct prefixes of equal length never tie: at most
    /// one of them can contain a given address.
    pub fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u32) -> Option<u32> {
        let bits = prefix.bits();
        if !self.lengths.contains(&bits) {
            self.lengths.push(bits);
            self.lengths.sort_unstable_by(|a, b| b.cmp(a));
        }
        self.routes.insert((bits, u32::from(prefix.network())), next_hop)
    }

    /// Installs a default route (`0.0.0.0/0`): the fallback for addresses
    /// no advertised prefix covers.
    pub fn set_default(&mut self, next_hop: u32) -> Option<u32> {
        self.insert(Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 0).expect("/0 is valid"), next_hop)
    }

    /// Withdraws an exact route, returning its next hop if present.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u32> {
        let removed = self.routes.remove(&(prefix.bits(), u32::from(prefix.network())));
        if removed.is_some() && !self.routes.keys().any(|&(b, _)| b == prefix.bits()) {
            self.lengths.retain(|&b| b != prefix.bits());
        }
        removed
    }

    /// Longest-prefix match for `addr`. `None` — a counted miss — when no
    /// route (not even a default) covers it.
    pub fn lookup(&mut self, addr: Ipv4Addr) -> Option<u32> {
        self.lookups += 1;
        let raw = u32::from(addr);
        for &bits in &self.lengths {
            let mask = if bits == 0 { 0 } else { u32::MAX << (32 - bits) };
            if let Some(&hop) = self.routes.get(&(bits, raw & mask)) {
                return Some(hop);
            }
        }
        self.misses += 1;
        None
    }

    /// All routes in canonical `(length, network)` order.
    pub fn routes(&self) -> impl Iterator<Item = Route> + '_ {
        self.routes.iter().map(|(&(bits, base), &next_hop)| Route {
            prefix: Ipv4Prefix::new(Ipv4Addr::from(base), bits).expect("stored bits are valid"),
            next_hop,
        })
    }

    /// Number of installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table has no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Total lookups performed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups no route covered.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Checkpoint support: serializes the counters. Routes are
    /// configuration (rebuilt by the owner) and are not included.
    pub(crate) fn encode_counters(&self, w: &mut SnapWriter) {
        w.u64(self.lookups);
        w.u64(self.misses);
    }

    /// Restores counters captured by [`RouteTable::encode_counters`].
    pub(crate) fn restore_counters(&mut self, r: &mut SnapReader) -> Result<(), SnapshotError> {
        self.lookups = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RouteTable {
        let mut t = RouteTable::new();
        t.insert("10.0.0.0/14".parse().unwrap(), 0);
        t.insert("10.4.0.0/14".parse().unwrap(), 1);
        t
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = table();
        // A /16 carved out of farm 0's /14 and delegated to farm 7.
        t.insert("10.1.0.0/16".parse().unwrap(), 7);
        // And a /24 inside that /16 delegated further.
        t.insert("10.1.5.0/24".parse().unwrap(), 9);
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 1, 1)), Some(0), "/14 only");
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 200, 1)), Some(7), "/16 beats /14");
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 5, 77)), Some(9), "/24 beats /16 and /14");
        assert_eq!(t.lookup(Ipv4Addr::new(10, 4, 0, 1)), Some(1));
    }

    #[test]
    fn equal_length_readvertisement_tie_breaks_last_writer() {
        let mut t = table();
        // The same prefix re-advertised moves ownership deterministically.
        assert_eq!(t.insert("10.4.0.0/14".parse().unwrap(), 5), Some(1));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 4, 0, 1)), Some(5));
        // Distinct equal-length prefixes never collide on one address.
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn default_route_fallback() {
        let mut t = table();
        assert_eq!(t.lookup(Ipv4Addr::new(192, 168, 1, 1)), None, "no default yet");
        t.set_default(42);
        assert_eq!(t.lookup(Ipv4Addr::new(192, 168, 1, 1)), Some(42));
        // Specific routes still beat the default.
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(0));
        assert_eq!(t.misses(), 1, "the defaulted lookup is not a miss");
    }

    #[test]
    fn unadvertised_prefix_counts_as_miss_without_panicking() {
        let mut t = table();
        for i in 0..5u8 {
            assert_eq!(t.lookup(Ipv4Addr::new(172, 16, 0, i)), None);
        }
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.misses(), 5);
        // The empty table is the degenerate everything-misses case.
        let mut empty = RouteTable::new();
        assert!(empty.is_empty());
        assert_eq!(empty.lookup(Ipv4Addr::new(1, 2, 3, 4)), None);
        assert_eq!(empty.misses(), 1);
    }

    #[test]
    fn withdraw_restores_covering_route() {
        let mut t = table();
        t.insert("10.1.0.0/16".parse().unwrap(), 7);
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 0, 1)), Some(7));
        assert_eq!(t.remove("10.1.0.0/16".parse().unwrap()), Some(7));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 0, 1)), Some(0), "falls back to the /14");
        assert_eq!(t.remove("10.1.0.0/16".parse().unwrap()), None);
        assert_eq!(t.routes().count(), 2);
    }
}
