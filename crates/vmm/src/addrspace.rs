//! Per-domain pseudo-physical address spaces (the p2m map).
//!
//! Each domain sees a contiguous pseudo-physical frame space `0..size`.
//! Every entry maps to a machine frame plus a writable bit. Delta
//! virtualization is exactly this indirection: many domains map the same
//! machine frame read-only, and the first write by any of them triggers a
//! CoW fault that remaps that single entry.

use crate::error::VmmError;
use crate::frame::{FrameId, FrameTable};

/// One p2m entry: which machine frame, and whether writes are permitted
/// without a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The backing machine frame.
    pub frame: FrameId,
    /// Whether the domain owns the frame exclusively.
    pub writable: bool,
}

/// A pseudo-physical → machine mapping for one domain.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    entries: Vec<Pte>,
}

impl AddressSpace {
    /// Builds an address space from explicit entries.
    #[must_use]
    pub fn from_entries(entries: Vec<Pte>) -> Self {
        AddressSpace { entries }
    }

    /// The domain's memory size in pages.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Looks up the entry for `pfn`.
    pub fn lookup(&self, pfn: u64) -> Result<Pte, VmmError> {
        self.entries.get(pfn as usize).copied().ok_or(VmmError::BadPfn { pfn, size: self.size() })
    }

    /// Replaces the entry for `pfn`.
    pub fn remap(&mut self, pfn: u64, pte: Pte) -> Result<(), VmmError> {
        let size = self.size();
        let slot = self.entries.get_mut(pfn as usize).ok_or(VmmError::BadPfn { pfn, size })?;
        *slot = pte;
        Ok(())
    }

    /// Iterates all entries with their pfn.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Pte)> + '_ {
        self.entries.iter().enumerate().map(|(i, &pte)| (i as u64, pte))
    }

    /// Counts entries the domain owns exclusively (its private pages).
    #[must_use]
    pub fn private_pages(&self) -> u64 {
        self.entries.iter().filter(|pte| pte.writable).count() as u64
    }

    /// Counts entries mapped read-only from a shared frame.
    #[must_use]
    pub fn shared_pages(&self) -> u64 {
        self.size() - self.private_pages()
    }

    /// Releases every mapped frame back to the table and empties the space.
    pub fn release_all(&mut self, frames: &mut FrameTable) {
        for pte in self.entries.drain(..) {
            frames.release(pte.frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with(frames: &mut FrameTable, n: u64) -> AddressSpace {
        let entries =
            (0..n).map(|i| Pte { frame: frames.alloc(i).unwrap(), writable: true }).collect();
        AddressSpace::from_entries(entries)
    }

    #[test]
    fn lookup_in_and_out_of_range() {
        let mut ft = FrameTable::new(10);
        let space = space_with(&mut ft, 4);
        assert!(space.lookup(3).is_ok());
        assert_eq!(space.lookup(4).unwrap_err(), VmmError::BadPfn { pfn: 4, size: 4 });
        assert_eq!(space.size(), 4);
    }

    #[test]
    fn remap_changes_entry() {
        let mut ft = FrameTable::new(10);
        let mut space = space_with(&mut ft, 2);
        let new_frame = ft.alloc(99).unwrap();
        space.remap(1, Pte { frame: new_frame, writable: false }).unwrap();
        let pte = space.lookup(1).unwrap();
        assert_eq!(pte.frame, new_frame);
        assert!(!pte.writable);
        assert!(space.remap(5, Pte { frame: new_frame, writable: true }).is_err());
    }

    #[test]
    fn private_and_shared_counts() {
        let mut ft = FrameTable::new(10);
        let shared = ft.alloc(0).unwrap();
        ft.share(shared);
        ft.share(shared);
        let private = ft.alloc(1).unwrap();
        let space = AddressSpace::from_entries(vec![
            Pte { frame: shared, writable: false },
            Pte { frame: shared, writable: false },
            Pte { frame: private, writable: true },
        ]);
        assert_eq!(space.private_pages(), 1);
        assert_eq!(space.shared_pages(), 2);
    }

    #[test]
    fn release_all_returns_frames() {
        let mut ft = FrameTable::new(5);
        let mut space = space_with(&mut ft, 5);
        assert_eq!(ft.free_frames(), 0);
        space.release_all(&mut ft);
        assert_eq!(ft.free_frames(), 5);
        assert_eq!(space.size(), 0);
    }
}
