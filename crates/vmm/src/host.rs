//! A physical honeyfarm server: frame table, reference images, domains.
//!
//! [`Host`] is the API surface the honeyfarm controller drives: create a
//! reference image once, flash-clone it per attacked address, route guest
//! memory activity through [`Host::write_page`] (which takes CoW faults),
//! and destroy domains when the gateway recycles them. Memory accounting
//! ([`Host::memory_report`]) is the ground truth behind the reproduction of
//! the paper's delta-virtualization figure.

use std::collections::{BTreeMap, HashMap};

use potemkin_sim::SimTime;
use potemkin_storage::{SharedChunkStore, StoreStats, DEFAULT_CHUNK_BLOCKS};

use crate::addrspace::{AddressSpace, Pte};
use crate::block::{BaseDisk, CowDisk};
use crate::clone::CloneTiming;
use crate::cost::CostModel;
use crate::domain::{Domain, DomainId, ProvisionKind};
use crate::error::VmmError;
use crate::frame::FrameTable;
use crate::guest::GuestProfile;
use crate::snapshot::{ImageId, ReferenceImage};

/// Fixed per-domain memory overhead in pages (hypervisor structures, shadow
/// tables, device rings). The paper observed that a clone's marginal
/// footprint is dominated by this fixed overhead, not by dirtied pages.
pub const DOMAIN_OVERHEAD_PAGES: u64 = 1_024; // 4 MiB at 4 KiB pages

/// Outcome of a guest memory write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Whether the write took a CoW fault (first write to a shared page).
    pub faulted: bool,
    /// Virtual-time cost of the write (zero for non-faulting writes).
    pub cost: SimTime,
}

/// Aggregate outcome of touching a batch of pages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TouchStats {
    /// Pages written.
    pub pages: u64,
    /// CoW faults taken.
    pub faults: u64,
    /// Total virtual-time cost.
    pub cost: SimTime,
}

/// A snapshot of the host's memory accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryReport {
    /// Frames the host manages.
    pub total_frames: u64,
    /// Frames currently free.
    pub free_frames: u64,
    /// Frames currently in use (images + domain-private).
    pub used_frames: u64,
    /// Frames owned by reference images.
    pub image_frames: u64,
    /// Frames owned exclusively by live domains (their deltas + overhead).
    pub private_frames: u64,
    /// Domain page mappings that still share an image frame.
    pub shared_mappings: u64,
    /// Live (not destroyed) domains.
    pub live_domains: u64,
}

impl MemoryReport {
    /// Mean private frames per live domain (zero with no domains) — the
    /// paper's "marginal memory per clone".
    #[must_use]
    pub fn marginal_frames_per_domain(&self) -> f64 {
        if self.live_domains == 0 {
            0.0
        } else {
            self.private_frames as f64 / self.live_domains as f64
        }
    }
}

/// A physical server in the honeyfarm.
pub struct Host {
    frames: FrameTable,
    images: BTreeMap<ImageId, ReferenceImage>,
    domains: BTreeMap<DomainId, Domain>,
    next_image: u64,
    next_domain: u64,
    cost: CostModel,
    max_domains: usize,
    /// Per-domain fixed overhead, in pages (see [`DOMAIN_OVERHEAD_PAGES`]).
    overhead_pages: u64,
    /// Lifetime clone counters by kind.
    flash_clones: u64,
    full_copies: u64,
    cold_boots: u64,
    destroys: u64,
    rollbacks: u64,
    /// Whether the physical server is up. A crashed host rejects every VMM
    /// operation with [`VmmError::HostDown`] until [`Host::revive`].
    alive: bool,
    /// Remaining injected clone failures: each flash-clone attempt consumes
    /// one and fails with [`VmmError::InjectedFault`].
    pending_clone_faults: u32,
    /// Lifetime crash count.
    crashes: u64,
    /// Domains lost to crashes (they were live when their host went down).
    domains_lost: u64,
    /// The content-addressed chunk store backing every reference image's
    /// base disk. Farm-managed hosts share one store
    /// ([`Host::with_chunk_store`]) so identical chunks dedupe farm-wide;
    /// a standalone host gets a private in-memory store.
    store: SharedChunkStore,
    /// Chunk size (in blocks) for reference images created on this host.
    chunk_blocks: u64,
}

impl Host {
    /// Creates a host managing `total_frames` machine frames.
    #[must_use]
    pub fn new(total_frames: u64) -> Self {
        Host {
            frames: FrameTable::new(total_frames),
            images: BTreeMap::new(),
            domains: BTreeMap::new(),
            next_image: 0,
            next_domain: 0,
            cost: CostModel::default(),
            max_domains: usize::MAX,
            overhead_pages: DOMAIN_OVERHEAD_PAGES,
            flash_clones: 0,
            full_copies: 0,
            cold_boots: 0,
            destroys: 0,
            rollbacks: 0,
            alive: true,
            pending_clone_faults: 0,
            crashes: 0,
            domains_lost: 0,
            store: SharedChunkStore::new_memory(),
            chunk_blocks: DEFAULT_CHUNK_BLOCKS,
        }
    }

    /// Replaces the latency model.
    #[must_use]
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Caps the number of simultaneously live domains (Xen-era limits).
    #[must_use]
    pub fn with_max_domains(mut self, max: usize) -> Self {
        self.max_domains = max;
        self
    }

    /// Overrides the fixed per-domain page overhead (ablation hook).
    #[must_use]
    pub fn with_overhead_pages(mut self, pages: u64) -> Self {
        self.overhead_pages = pages;
        self
    }

    /// Backs this host's reference images with a (typically farm-shared)
    /// chunk store instead of the private default.
    #[must_use]
    pub fn with_chunk_store(mut self, store: SharedChunkStore) -> Self {
        self.store = store;
        self
    }

    /// Overrides the chunk size (in blocks) for reference images created
    /// on this host; 1 reproduces the flat pre-chunking layout.
    #[must_use]
    pub fn with_disk_chunk_blocks(mut self, blocks: u64) -> Self {
        self.chunk_blocks = blocks.max(1);
        self
    }

    /// The chunk store backing this host's base disks.
    #[must_use]
    pub fn chunk_store(&self) -> &SharedChunkStore {
        &self.store
    }

    /// Accounting snapshot of the backing chunk store.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The latency model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Lifetime provisioning counts `(flash, full_copy, cold_boot,
    /// destroys)`.
    #[must_use]
    pub fn lifecycle_counts(&self) -> (u64, u64, u64, u64) {
        (self.flash_clones, self.full_copies, self.cold_boots, self.destroys)
    }

    /// Lifetime rollback count.
    #[must_use]
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks
    }

    /// Whether the server is up.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Lifetime crash / crash-loss counts `(crashes, domains_lost)`.
    #[must_use]
    pub fn crash_counts(&self) -> (u64, u64) {
        (self.crashes, self.domains_lost)
    }

    /// Injected clone failures still pending.
    #[must_use]
    pub fn pending_clone_faults(&self) -> u32 {
        self.pending_clone_faults
    }

    /// Arms `count` additional injected clone failures: the next `count`
    /// flash-clone attempts fail with [`VmmError::InjectedFault`].
    pub fn fail_next_clones(&mut self, count: u32) {
        self.pending_clone_faults = self.pending_clone_faults.saturating_add(count);
    }

    /// Crashes the server: every live domain is torn down (its frames
    /// released, matching a power loss that clears RAM) and all subsequent
    /// VMM operations fail with [`VmmError::HostDown`] until
    /// [`Host::revive`]. Reference images survive — they are re-provisioned
    /// from stable storage on reboot, which the model represents by keeping
    /// their frames resident.
    ///
    /// Returns the number of domains lost. Idempotent on a dead host.
    pub fn crash(&mut self) -> u64 {
        if !self.alive {
            return 0;
        }
        let ids: Vec<DomainId> = self.domains.keys().copied().collect();
        let lost = ids.len() as u64;
        for id in ids {
            let mut dom = self.domains.remove(&id).expect("key just listed");
            dom.space_mut().release_all(&mut self.frames);
            dom.mark_destroyed();
        }
        self.alive = false;
        self.pending_clone_faults = 0;
        self.crashes += 1;
        self.domains_lost += lost;
        lost
    }

    /// Brings a crashed server back online with no resident domains.
    /// Idempotent on a live host.
    pub fn revive(&mut self) {
        self.alive = true;
    }

    fn ensure_alive(&self) -> Result<(), VmmError> {
        if self.alive {
            Ok(())
        } else {
            Err(VmmError::HostDown)
        }
    }

    /// Boots a guest profile once and freezes it as a reference image.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfMemory`] if the image does not fit.
    pub fn create_reference_image(
        &mut self,
        name: &str,
        profile: GuestProfile,
    ) -> Result<ImageId, VmmError> {
        self.ensure_alive()?;
        if self.frames.free_frames() < profile.memory_pages {
            return Err(VmmError::OutOfMemory {
                requested: profile.memory_pages,
                free: self.frames.free_frames(),
            });
        }
        let id = ImageId(self.next_image);
        self.next_image += 1;
        let mut frames = Vec::with_capacity(profile.memory_pages as usize);
        for pfn in 0..profile.memory_pages {
            let content = GuestProfile::boot_content(id.0, pfn);
            frames.push(self.frames.alloc(content).expect("capacity checked above"));
        }
        let disk =
            BaseDisk::open(&self.store, profile.disk_blocks, self.chunk_blocks, profile.disk_seed);
        self.images.insert(id, ReferenceImage::new(id, name, frames, disk, profile));
        Ok(id)
    }

    /// Looks up a reference image.
    pub fn image(&self, id: ImageId) -> Result<&ReferenceImage, VmmError> {
        self.images.get(&id).ok_or(VmmError::NoSuchImage(id))
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Result<&Domain, VmmError> {
        self.domains.get(&id).ok_or(VmmError::NoSuchDomain(id))
    }

    /// Looks up a domain mutably.
    pub fn domain_mut(&mut self, id: DomainId) -> Result<&mut Domain, VmmError> {
        self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))
    }

    /// Iterates live domains in id order.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// The number of live domains.
    #[must_use]
    pub fn live_domains(&self) -> usize {
        self.domains.len()
    }

    fn admission_check(&self, private_pages_needed: u64) -> Result<(), VmmError> {
        if self.domains.len() >= self.max_domains {
            return Err(VmmError::TooManyDomains { limit: self.max_domains });
        }
        if self.frames.free_frames() < private_pages_needed {
            return Err(VmmError::OutOfMemory {
                requested: private_pages_needed,
                free: self.frames.free_frames(),
            });
        }
        Ok(())
    }

    fn alloc_overhead(&mut self) -> Vec<Pte> {
        (0..self.overhead_pages)
            .map(|_| Pte {
                frame: self.frames.alloc(0).expect("admission checked"),
                writable: true,
            })
            .collect()
    }

    /// Flash-clones a domain from a reference image: every image page is
    /// mapped copy-on-write; only the fixed overhead is allocated.
    ///
    /// The returned [`CloneTiming`] is the reproduction of the paper's
    /// clone-latency breakdown. The domain comes back *running*.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchImage`], [`VmmError::TooManyDomains`], or
    /// [`VmmError::OutOfMemory`] (for the overhead pages).
    pub fn flash_clone(&mut self, image: ImageId) -> Result<(DomainId, CloneTiming), VmmError> {
        self.ensure_alive()?;
        if self.pending_clone_faults > 0 {
            self.pending_clone_faults -= 1;
            return Err(VmmError::InjectedFault { op: "flash_clone" });
        }
        let pages = self.image(image)?.pages();
        self.admission_check(self.overhead_pages)?;
        let timing = CloneTiming::new(self.cost.flash_clone_stages(pages));

        // Share every image frame read-only (the delta-virtualization map).
        let img = self.images.get(&image).expect("checked above");
        let shared: Vec<Pte> =
            img.frames().iter().map(|&f| Pte { frame: f, writable: false }).collect();
        let disk = CowDisk::new(img.disk().clone());
        for pte in &shared {
            self.frames.share(pte.frame);
        }
        let mut entries = shared;
        entries.extend(self.alloc_overhead());

        let id = DomainId(self.next_domain);
        self.next_domain += 1;
        let mut dom = Domain::new(
            id,
            image,
            ProvisionKind::FlashClone,
            AddressSpace::from_entries(entries),
            disk,
        );
        dom.unpause().expect("fresh domain is paused");
        self.domains.insert(id, dom);
        self.flash_clones += 1;
        Ok((id, timing))
    }

    /// Eagerly copies every image page into private frames (the no-delta
    /// baseline).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Host::flash_clone`]; the frame demand is
    /// the whole image plus overhead.
    pub fn full_copy_clone(&mut self, image: ImageId) -> Result<(DomainId, CloneTiming), VmmError> {
        self.ensure_alive()?;
        let pages = self.image(image)?.pages();
        self.admission_check(pages + self.overhead_pages)?;
        let timing = CloneTiming::new(self.cost.full_copy_stages(pages));

        let contents: Vec<u64> = {
            let img = self.images.get(&image).expect("checked above");
            img.frames().iter().map(|&f| self.frames.read(f)).collect()
        };
        let mut entries: Vec<Pte> = contents
            .into_iter()
            .map(|c| Pte {
                frame: self.frames.alloc(c).expect("admission checked"),
                writable: true,
            })
            .collect();
        entries.extend(self.alloc_overhead());
        let disk = CowDisk::new(self.images.get(&image).expect("checked").disk().clone());

        let id = DomainId(self.next_domain);
        self.next_domain += 1;
        let mut dom = Domain::new(
            id,
            image,
            ProvisionKind::FullCopy,
            AddressSpace::from_entries(entries),
            disk,
        );
        dom.unpause().expect("fresh domain is paused");
        self.domains.insert(id, dom);
        self.full_copies += 1;
        Ok((id, timing))
    }

    /// Boots a fresh domain from scratch (the no-cloning baseline: tens of
    /// seconds of virtual time).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Host::full_copy_clone`].
    pub fn cold_boot(&mut self, image: ImageId) -> Result<(DomainId, CloneTiming), VmmError> {
        let (id, _) = self.full_copy_clone(image)?;
        self.full_copies -= 1;
        self.cold_boots += 1;
        let dom = self.domains.get_mut(&id).expect("just created");
        // Same memory shape, different provenance and timing.
        let pages = dom.memory_pages() - self.overhead_pages;
        let timing = CloneTiming::new(self.cost.cold_boot_stages(pages));
        let space = std::mem::replace(dom.space_mut(), AddressSpace::from_entries(vec![]));
        let disk = dom.disk().clone();
        let mut fresh = Domain::new(id, dom.image(), ProvisionKind::ColdBoot, space, disk);
        fresh.unpause().expect("fresh domain is paused");
        *dom = fresh;
        Ok((id, timing))
    }

    /// Destroys a domain, releasing all of its frames. Returns the
    /// virtual-time cost (scales with the domain's private pages).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`] for unknown or already-destroyed
    /// domains.
    pub fn destroy(&mut self, id: DomainId) -> Result<SimTime, VmmError> {
        self.ensure_alive()?;
        let mut dom = self.domains.remove(&id).ok_or(VmmError::NoSuchDomain(id))?;
        let cost = self.cost.destroy_cost(dom.private_pages());
        dom.space_mut().release_all(&mut self.frames);
        dom.mark_destroyed();
        self.destroys += 1;
        Ok(cost)
    }

    /// Freezes a *running* domain's current memory as a new reference
    /// image — the forensic-snapshot primitive: an infected honeypot can be
    /// captured for offline analysis, or used as the clone source for a
    /// whole farm of already-infected honeypots.
    ///
    /// The new image shares every frame with the domain (copy-on-write in
    /// both directions): creating it allocates nothing. The image's disk is
    /// the domain's *base* disk (block overlays are per-domain state and
    /// are not captured).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`] for unknown domains.
    pub fn snapshot_domain(&mut self, id: DomainId, name: &str) -> Result<ImageId, VmmError> {
        self.ensure_alive()?;
        let source_image = self.domain(id)?.image();
        let profile = self.image(source_image)?.profile().clone();
        let disk = self.image(source_image)?.disk().clone();
        let dom = self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))?;
        let image_pages = profile.memory_pages;
        // Share the domain's current frames and freeze the domain's view:
        // its writable pages become read-only so future writes CoW away
        // from the snapshot.
        let mut frames = Vec::with_capacity(image_pages as usize);
        for pfn in 0..image_pages {
            let pte = dom.space().lookup(pfn).expect("image pfns are mapped");
            self.frames.share(pte.frame);
            frames.push(pte.frame);
            if pte.writable {
                dom.space_mut()
                    .remap(pfn, Pte { frame: pte.frame, writable: false })
                    .expect("pfn in range");
            }
        }
        let new_id = ImageId(self.next_image);
        self.next_image += 1;
        self.images.insert(new_id, ReferenceImage::new(new_id, name, frames, disk, profile));
        Ok(new_id)
    }

    /// Rolls a domain back to its pristine reference-image state: every
    /// private image page is released and remapped copy-on-write, the disk
    /// overlay and infection flag are cleared, and the address binding is
    /// dropped. Much cheaper than destroy + flash-clone (the paper's
    /// recycling optimization: the domain's fixed structures survive).
    ///
    /// Returns the virtual-time cost.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`] for unknown domains.
    pub fn rollback(&mut self, id: DomainId) -> Result<SimTime, VmmError> {
        self.ensure_alive()?;
        let image_id = self.domain(id)?.image();
        let image_frames: Vec<crate::frame::FrameId> = self.image(image_id)?.frames().to_vec();
        let dom = self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))?;
        let mut released = 0u64;
        for (pfn, &img_frame) in image_frames.iter().enumerate() {
            let pfn = pfn as u64;
            let pte = dom.space().lookup(pfn).expect("image pfns are mapped");
            // Any page not backed by the original image frame — a private
            // CoW copy, or a frame frozen into a later snapshot — is
            // dropped and the pristine image frame re-shared.
            if pte.frame != img_frame {
                self.frames.release(pte.frame);
                self.frames.share(img_frame);
                dom.space_mut()
                    .remap(pfn, Pte { frame: img_frame, writable: false })
                    .expect("pfn in range");
                released += 1;
            } else if pte.writable {
                // Same frame but writable can only happen if the image
                // itself handed out a writable mapping — it never does.
                dom.space_mut()
                    .remap(pfn, Pte { frame: img_frame, writable: false })
                    .expect("pfn in range");
            }
        }
        // Overhead pages beyond the image stay allocated; scrub them.
        for pfn in image_frames.len() as u64..dom.memory_pages() {
            let pte = dom.space().lookup(pfn).expect("in range");
            self.frames.write(pte.frame, 0);
        }
        dom.reset_guest_state();
        self.rollbacks += 1;
        Ok(self.cost.rollback_cost(released))
    }

    /// Re-shares a domain's private pages whose contents have reverted to
    /// the reference image (freed buffers, scrubbed caches): each such page
    /// is released and remapped copy-on-write, reclaiming its frame.
    ///
    /// This is the content-based sharing refinement the paper leaves as
    /// future work, restricted to image-identical pages (which is sound
    /// without any writeback machinery). Returns the number of frames
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`] for unknown domains.
    pub fn reshare_reverted_pages(&mut self, id: DomainId) -> Result<u64, VmmError> {
        self.ensure_alive()?;
        let image_id = self.domain(id)?.image();
        let image_frames: Vec<crate::frame::FrameId> = self.image(image_id)?.frames().to_vec();
        let dom = self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))?;
        let mut reclaimed = 0u64;
        for (pfn, &img_frame) in image_frames.iter().enumerate() {
            let pfn = pfn as u64;
            let pte = dom.space().lookup(pfn).expect("image pfns are mapped");
            if pte.writable
                && pte.frame != img_frame
                && self.frames.read(pte.frame) == self.frames.read(img_frame)
            {
                self.frames.release(pte.frame);
                self.frames.share(img_frame);
                dom.space_mut()
                    .remap(pfn, Pte { frame: img_frame, writable: false })
                    .expect("pfn in range");
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// One content-index pass over every domain's guest region: divergent
    /// pages whose contents match an already-resident frame (an image page,
    /// a previously merged frame, or another domain's divergent page) are
    /// released and remapped to that frame copy-on-write.
    ///
    /// This generalizes [`Host::reshare_reverted_pages`] from
    /// image-identical pages to *any* identical content — the KSM-style
    /// content-based sharing the paper leaves as future work. Worm payloads
    /// write the same bytes into every victim, so post-infection clones
    /// re-converge. When the merge target is another domain's still-writable
    /// page, that page is first downgraded to read-only so a future write by
    /// either side faults a private copy (guest-visible contents never
    /// change).
    ///
    /// Only the image-backed guest region is scanned: the fixed overhead
    /// pages model per-domain hypervisor structures (shadow tables, device
    /// rings), which are never content-shareable on real hardware.
    ///
    /// Scan order is domain-id then pfn order — deterministic, so merged
    /// frame topology (and every report derived from it) is identical
    /// across runs and shard worker counts.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::HostDown`] on a crashed host.
    pub fn scan_and_merge(&mut self) -> Result<crate::memctl::MergeReport, VmmError> {
        self.ensure_alive()?;
        let free_before = self.frames.free_frames();
        // content word -> (canonical frame, the domain still mapping it
        // writable, if any). Seeded from reference images in id order so
        // pristine frames always win canonical status.
        let mut canonical: HashMap<u64, (crate::frame::FrameId, Option<(DomainId, u64)>)> =
            HashMap::new();
        for img in self.images.values() {
            for &frame in img.frames() {
                canonical.entry(self.frames.read(frame)).or_insert((frame, None));
            }
        }
        let mut report = crate::memctl::MergeReport::default();
        let scan: Vec<(DomainId, u64)> =
            self.domains.values().map(|d| (d.id(), self.image_guest_pages(d.image()))).collect();
        for (id, guest_pages) in scan {
            for pfn in 0..guest_pages {
                let pte = {
                    let dom = self.domains.get(&id).expect("listed above");
                    dom.space().lookup(pfn).expect("guest pfns are mapped")
                };
                report.scanned_pages += 1;
                let content = self.frames.read(pte.frame);
                if !pte.writable {
                    // Already shared; index it so later duplicates can join.
                    canonical.entry(content).or_insert((pte.frame, None));
                    continue;
                }
                match canonical.get(&content).copied() {
                    None => {
                        canonical.insert(content, (pte.frame, Some((id, pfn))));
                    }
                    Some((cframe, _)) if cframe == pte.frame => {}
                    Some((cframe, owner)) => {
                        // The canonical frame may still be writable in its
                        // owner's map; freeze it first so neither side can
                        // mutate the now-shared frame in place.
                        if let Some((oid, opfn)) = owner {
                            let odom = self.domains.get_mut(&oid).expect("owner is live");
                            odom.space_mut()
                                .remap(opfn, Pte { frame: cframe, writable: false })
                                .expect("owner pfn in range");
                            canonical.insert(content, (cframe, None));
                        }
                        self.frames.share(cframe);
                        self.frames.release(pte.frame);
                        self.domains
                            .get_mut(&id)
                            .expect("listed above")
                            .space_mut()
                            .remap(pfn, Pte { frame: cframe, writable: false })
                            .expect("pfn in range");
                        report.merged_pages += 1;
                    }
                }
            }
        }
        report.frames_reclaimed = self.frames.free_frames().saturating_sub(free_before);
        Ok(report)
    }

    /// Pages of the guest region (the image-backed prefix of the address
    /// space) for domains cloned from `image`.
    fn image_guest_pages(&self, image: ImageId) -> u64 {
        self.images.get(&image).map_or(0, ReferenceImage::pages)
    }

    /// The host's logical-vs-physical occupancy (sharing ratio input).
    #[must_use]
    pub fn sharing_report(&self) -> crate::memctl::SharingReport {
        crate::memctl::SharingReport {
            logical_pages: self.domains.values().map(Domain::memory_pages).sum(),
            resident_frames: self.frames.used_frames(),
        }
    }

    /// Reads a guest page through the domain's p2m map.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`], [`VmmError::BadState`] for
    /// non-running domains, or [`VmmError::BadPfn`].
    pub fn read_page(&mut self, id: DomainId, pfn: u64) -> Result<u64, VmmError> {
        self.ensure_alive()?;
        let dom = self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))?;
        if !dom.is_running() {
            return Err(VmmError::BadState { domain: id, op: "read_page" });
        }
        let pte = dom.space().lookup(pfn)?;
        dom.note_read();
        Ok(self.frames.read(pte.frame))
    }

    /// Reads a guest disk block through the domain's CoW view, lazily
    /// materializing the underlying chunk from the golden image on first
    /// touch. Returns the content word and the virtual-time cost of the
    /// read — [`CostModel::chunk_materialize`] per chunk faulted in, zero
    /// for reads served from already-resident chunks or the overlay.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::NoSuchDomain`], [`VmmError::BadState`] for
    /// non-running domains, or [`VmmError::BadBlock`].
    pub fn read_block(&self, id: DomainId, block: u64) -> Result<(u64, SimTime), VmmError> {
        self.ensure_alive()?;
        let dom = self.domains.get(&id).ok_or(VmmError::NoSuchDomain(id))?;
        if !dom.is_running() {
            return Err(VmmError::BadState { domain: id, op: "read_block" });
        }
        let before = dom.disk().base().materialized_chunks();
        let content = dom.disk().read(block)?;
        let after = dom.disk().base().materialized_chunks();
        Ok((content, self.cost.chunk_materialize * (after - before)))
    }

    /// Writes a guest page, taking a CoW fault on the first write to a
    /// shared page.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfMemory`] when a fault cannot allocate a
    /// private frame (the guest write is lost, matching a real host that
    /// would stall the domain), plus the errors of [`Host::read_page`].
    pub fn write_page(
        &mut self,
        id: DomainId,
        pfn: u64,
        value: u64,
    ) -> Result<WriteOutcome, VmmError> {
        self.ensure_alive()?;
        let dom = self.domains.get_mut(&id).ok_or(VmmError::NoSuchDomain(id))?;
        if !dom.is_running() {
            return Err(VmmError::BadState { domain: id, op: "write_page" });
        }
        let pte = dom.space().lookup(pfn)?;
        if pte.writable {
            self.frames.write(pte.frame, value);
            dom.note_write(false);
            Ok(WriteOutcome { faulted: false, cost: SimTime::ZERO })
        } else {
            // CoW fault: allocate a private copy, remap, then write.
            let copy = self.frames.cow_copy(pte.frame)?;
            self.frames.write(copy, value);
            dom.space_mut()
                .remap(pfn, Pte { frame: copy, writable: true })
                .expect("pfn validated by lookup");
            dom.note_write(true);
            Ok(WriteOutcome { faulted: true, cost: self.cost.cow_fault })
        }
    }

    /// Writes a batch of pages, summing faults and costs.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Host::write_page`].
    pub fn touch_pages(
        &mut self,
        id: DomainId,
        pfns: &[u64],
        value_seed: u64,
    ) -> Result<TouchStats, VmmError> {
        let mut stats = TouchStats::default();
        for (i, &pfn) in pfns.iter().enumerate() {
            let out = self.write_page(id, pfn, value_seed.wrapping_add(i as u64))?;
            stats.pages += 1;
            if out.faulted {
                stats.faults += 1;
            }
            stats.cost += out.cost;
        }
        Ok(stats)
    }

    /// Applies the guest's page/disk activity for handling one inbound
    /// service request.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn apply_request(
        &mut self,
        id: DomainId,
        request_idx: u64,
    ) -> Result<TouchStats, VmmError> {
        let image = self.domain(id)?.image();
        let pages = self.image(image)?.profile().pages_for_request(request_idx);
        self.touch_pages(id, &pages, request_idx)
    }

    /// Applies the guest's page/disk activity for a successful infection
    /// and marks the domain infected.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn apply_infection(&mut self, id: DomainId, seed: u64) -> Result<TouchStats, VmmError> {
        let image = self.domain(id)?.image();
        let profile = self.image(image)?.profile().clone();
        let pages = profile.pages_for_infection(seed);
        let stats = self.touch_pages(id, &pages, seed)?;
        let dom = self.domain_mut(id)?;
        for b in 0..profile.infection_disk_blocks.min(profile.disk_blocks) {
            dom.disk_mut().write(b, seed.wrapping_add(b)).expect("block bounds clamped");
        }
        dom.mark_infected();
        Ok(stats)
    }

    /// Produces the current memory accounting snapshot.
    #[must_use]
    pub fn memory_report(&self) -> MemoryReport {
        let image_frames: u64 = self.images.values().map(ReferenceImage::pages).sum();
        let private_frames: u64 = self.domains.values().map(Domain::private_pages).sum();
        let shared_mappings: u64 = self.domains.values().map(Domain::shared_pages).sum();
        MemoryReport {
            total_frames: self.frames.total_frames(),
            free_frames: self.frames.free_frames(),
            used_frames: self.frames.used_frames(),
            image_frames,
            private_frames,
            shared_mappings,
            live_domains: self.domains.len() as u64,
        }
    }

    /// Direct access to the frame table (tests and invariant checks).
    #[must_use]
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }
}

/// Whole-host checkpoint support: serializes every piece of mutable VMM
/// state (frame table, reference images, domains, lifecycle counters) into
/// a flat byte payload, and restores it into a host carrying the same
/// *configuration* (cost model, domain cap, overhead pages — which are not
/// serialized; they come from the scenario at reconstruction time).
impl Host {
    /// Encodes the host's mutable state for a checkpoint section.
    #[must_use]
    pub fn encode_state(&self) -> Vec<u8> {
        use potemkin_snapshot::SnapWriter;
        let mut w = SnapWriter::new();
        // Frame table.
        let (total, allocs, frees, free, live) = self.frames.snapshot_parts();
        w.u64(total);
        w.u64(allocs);
        w.u64(frees);
        w.u64(self.frames.table_len());
        w.u64(free.len() as u64);
        for &f in free {
            w.u64(f);
        }
        w.u64(live.len() as u64);
        for (idx, refcount, content) in live {
            w.u64(idx);
            w.u32(refcount);
            w.u64(content);
        }
        // Id allocators and lifecycle counters.
        w.u64(self.next_image);
        w.u64(self.next_domain);
        w.u64(self.flash_clones);
        w.u64(self.full_copies);
        w.u64(self.cold_boots);
        w.u64(self.destroys);
        w.u64(self.rollbacks);
        w.bool(self.alive);
        w.u32(self.pending_clone_faults);
        w.u64(self.crashes);
        w.u64(self.domains_lost);
        // Reference images (BTreeMap: already in id order).
        w.u64(self.images.len() as u64);
        for img in self.images.values() {
            w.u64(img.id().0);
            w.str(img.name());
            w.u64(img.frames().len() as u64);
            for &f in img.frames() {
                w.u64(f.0);
            }
            img.disk().encode_manifest(&mut w);
            let p = img.profile();
            w.u64(p.memory_pages);
            w.u64(p.disk_blocks);
            w.u64(p.disk_seed);
            w.u64(p.request_touch_pages);
            w.u64(p.infection_touch_pages);
            w.f64(p.infected_dirty_rate);
            w.u64(p.infection_disk_blocks);
            w.u64(p.services.len() as u64);
            for s in &p.services {
                w.u16(s.port);
                w.u8(match s.proto {
                    crate::guest::ServiceProto::Tcp => 0,
                    crate::guest::ServiceProto::Udp => 1,
                });
                w.u8(s.exploit_depth);
            }
        }
        // Domains (BTreeMap: id order).
        w.u64(self.domains.len() as u64);
        for dom in self.domains.values() {
            w.u64(dom.id().0);
            w.u64(dom.image().0);
            w.u8(match dom.state() {
                crate::domain::DomainState::Paused => 0,
                crate::domain::DomainState::Running => 1,
                crate::domain::DomainState::Destroyed => 2,
            });
            w.u8(match dom.provision() {
                ProvisionKind::FlashClone => 0,
                ProvisionKind::FullCopy => 1,
                ProvisionKind::ColdBoot => 2,
            });
            match dom.bound_addr() {
                Some(a) => {
                    w.bool(true);
                    w.u32(u32::from(a));
                }
                None => w.bool(false),
            }
            w.u64(dom.cow_faults());
            let (reads, writes) = dom.mem_ops();
            w.u64(reads);
            w.u64(writes);
            w.bool(dom.is_infected());
            w.u64(dom.space().size());
            for (_, pte) in dom.space().iter() {
                w.u64(pte.frame.0);
                w.bool(pte.writable);
            }
            dom.disk().encode_overlay(&mut w);
        }
        w.into_bytes()
    }

    /// Restores mutable state encoded by [`Host::encode_state`] into this
    /// host, replacing whatever it held. Configuration (cost model, limits)
    /// is kept from `self`.
    ///
    /// # Errors
    ///
    /// Returns [`potemkin_snapshot::SnapshotError::Decode`] when the payload
    /// is truncated or structurally inconsistent.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), potemkin_snapshot::SnapshotError> {
        use potemkin_snapshot::{SnapReader, SnapshotError};
        const CTX: &str = "vmm.host";
        let bad = || SnapshotError::Decode { context: CTX };
        let mut r = SnapReader::new(bytes, CTX);
        // Frame table.
        let total = r.u64()?;
        let allocs = r.u64()?;
        let frees = r.u64()?;
        let table_len = r.u64()?;
        let free_len = r.u64()?;
        let mut free = Vec::with_capacity(free_len.min(1 << 20) as usize);
        for _ in 0..free_len {
            free.push(r.u64()?);
        }
        let live_len = r.u64()?;
        let mut live = Vec::with_capacity(live_len.min(1 << 20) as usize);
        for _ in 0..live_len {
            let idx = r.u64()?;
            let refcount = r.u32()?;
            let content = r.u64()?;
            live.push((idx, refcount, content));
        }
        let frames =
            FrameTable::from_parts(total, allocs, frees, free, table_len, &live).ok_or_else(bad)?;
        let next_image = r.u64()?;
        let next_domain = r.u64()?;
        let flash_clones = r.u64()?;
        let full_copies = r.u64()?;
        let cold_boots = r.u64()?;
        let destroys = r.u64()?;
        let rollbacks = r.u64()?;
        let alive = r.bool()?;
        let pending_clone_faults = r.u32()?;
        let crashes = r.u64()?;
        let domains_lost = r.u64()?;
        // Reference images.
        let image_count = r.u64()?;
        let mut images = BTreeMap::new();
        for _ in 0..image_count {
            let id = ImageId(r.u64()?);
            let name = r.str()?.to_owned();
            let frame_count = r.u64()?;
            let mut img_frames = Vec::with_capacity(frame_count.min(1 << 20) as usize);
            for _ in 0..frame_count {
                img_frames.push(crate::frame::FrameId(r.u64()?));
            }
            let disk = BaseDisk::decode_manifest(&mut r, &self.store)?;
            let memory_pages = r.u64()?;
            let disk_blocks = r.u64()?;
            let disk_seed = r.u64()?;
            let request_touch_pages = r.u64()?;
            let infection_touch_pages = r.u64()?;
            let infected_dirty_rate = r.f64()?;
            let infection_disk_blocks = r.u64()?;
            let service_count = r.u64()?;
            let mut services = Vec::with_capacity(service_count.min(1 << 16) as usize);
            for _ in 0..service_count {
                let port = r.u16()?;
                let proto = match r.u8()? {
                    0 => crate::guest::ServiceProto::Tcp,
                    1 => crate::guest::ServiceProto::Udp,
                    _ => return Err(bad()),
                };
                let exploit_depth = r.u8()?;
                services.push(crate::guest::Service { port, proto, exploit_depth });
            }
            let profile = GuestProfile {
                memory_pages,
                disk_blocks,
                disk_seed,
                request_touch_pages,
                infection_touch_pages,
                infected_dirty_rate,
                infection_disk_blocks,
                services,
            };
            images.insert(id, ReferenceImage::new(id, name, img_frames, disk, profile));
        }
        // Domains.
        let domain_count = r.u64()?;
        let mut domains = BTreeMap::new();
        for _ in 0..domain_count {
            let id = DomainId(r.u64()?);
            let image = ImageId(r.u64()?);
            let state = match r.u8()? {
                0 => crate::domain::DomainState::Paused,
                1 => crate::domain::DomainState::Running,
                2 => crate::domain::DomainState::Destroyed,
                _ => return Err(bad()),
            };
            let provision = match r.u8()? {
                0 => ProvisionKind::FlashClone,
                1 => ProvisionKind::FullCopy,
                2 => ProvisionKind::ColdBoot,
                _ => return Err(bad()),
            };
            let bound_addr =
                if r.bool()? { Some(std::net::Ipv4Addr::from(r.u32()?)) } else { None };
            let cow_faults = r.u64()?;
            let mem_reads = r.u64()?;
            let mem_writes = r.u64()?;
            let infected = r.bool()?;
            let space_size = r.u64()?;
            let mut entries = Vec::with_capacity(space_size.min(1 << 20) as usize);
            for _ in 0..space_size {
                let frame = crate::frame::FrameId(r.u64()?);
                let writable = r.bool()?;
                entries.push(Pte { frame, writable });
            }
            // A domain's base disk always aliases its image's disk (every
            // provisioning path clones it), so restore from the image.
            let base = images.get(&image).ok_or_else(bad)?.disk().clone();
            let disk = CowDisk::decode_overlay(base, &mut r)?;
            let dom = Domain::from_snapshot_parts(
                id,
                image,
                state,
                provision,
                AddressSpace::from_entries(entries),
                disk,
                bound_addr,
                cow_faults,
                mem_reads,
                mem_writes,
                infected,
            );
            domains.insert(id, dom);
        }
        r.finish()?;
        self.frames = frames;
        self.images = images;
        self.domains = domains;
        self.next_image = next_image;
        self.next_domain = next_domain;
        self.flash_clones = flash_clones;
        self.full_copies = full_copies;
        self.cold_boots = cold_boots;
        self.destroys = destroys;
        self.rollbacks = rollbacks;
        self.alive = alive;
        self.pending_clone_faults = pending_clone_faults;
        self.crashes = crashes;
        self.domains_lost = domains_lost;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_host() -> (Host, ImageId) {
        let mut host = Host::new(100_000).with_overhead_pages(16);
        let image = host.create_reference_image("test", GuestProfile::small()).unwrap();
        (host, image)
    }

    #[test]
    fn encode_restore_round_trips_bit_exactly() {
        let (mut host, image) = small_host();
        let (vm1, _) = host.flash_clone(image).unwrap();
        let (vm2, _) = host.flash_clone(image).unwrap();
        host.write_page(vm1, 3, 0xBEEF).unwrap();
        host.write_page(vm1, 4, 0xF00D).unwrap();
        host.domain_mut(vm1).unwrap().mark_infected();
        host.domain_mut(vm1).unwrap().bind_addr(std::net::Ipv4Addr::new(10, 0, 0, 7));
        host.domain_mut(vm1).unwrap().disk_mut().write(2, 999).unwrap();
        host.snapshot_domain(vm1, "forensic").unwrap();
        host.destroy(vm2).unwrap();
        host.fail_next_clones(2);

        let bytes = host.encode_state();
        let mut restored = Host::new(100_000).with_overhead_pages(16);
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.encode_state(), bytes, "re-encode must be bit-identical");

        // Behavioral equivalence: the next operations land identically
        // (both carry the pending injected clone faults, same id allocator,
        // same frame free-list order).
        for _ in 0..2 {
            assert!(matches!(host.flash_clone(image), Err(VmmError::InjectedFault { .. })));
            assert!(matches!(restored.flash_clone(image), Err(VmmError::InjectedFault { .. })));
        }
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = restored.flash_clone(image).unwrap();
        assert_eq!(a, b);
        assert_eq!(host.encode_state(), restored.encode_state());
    }

    #[test]
    fn restore_rejects_truncated_and_garbage_payloads() {
        let (mut host, image) = small_host();
        host.flash_clone(image).unwrap();
        let bytes = host.encode_state();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut h = Host::new(100_000).with_overhead_pages(16);
            assert!(h.restore_state(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut h = Host::new(100_000).with_overhead_pages(16);
        let mut tail = bytes.clone();
        tail.extend_from_slice(&[0u8; 4]);
        assert!(h.restore_state(&tail).is_err(), "trailing garbage must fail");
    }

    #[test]
    fn image_creation_accounts_frames() {
        let (host, image) = small_host();
        let report = host.memory_report();
        assert_eq!(report.image_frames, 8_192);
        assert_eq!(report.used_frames, 8_192);
        assert_eq!(host.image(image).unwrap().pages(), 8_192);
    }

    #[test]
    fn image_oom() {
        let mut host = Host::new(100);
        assert!(matches!(
            host.create_reference_image("big", GuestProfile::small()),
            Err(VmmError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn flash_clone_allocates_only_overhead() {
        let (mut host, image) = small_host();
        let before = host.memory_report().used_frames;
        let (vm, timing) = host.flash_clone(image).unwrap();
        let after = host.memory_report().used_frames;
        assert_eq!(after - before, 16, "only overhead pages allocated");
        assert!(timing.total() < SimTime::from_secs(1));
        let dom = host.domain(vm).unwrap();
        assert!(dom.is_running());
        assert_eq!(dom.shared_pages(), 8_192);
        assert_eq!(dom.private_pages(), 16);
    }

    #[test]
    fn clone_sees_image_contents() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        for pfn in [0u64, 1, 100, 8_191] {
            assert_eq!(host.read_page(vm, pfn).unwrap(), GuestProfile::boot_content(image.0, pfn));
        }
    }

    #[test]
    fn cow_write_isolates_from_image_and_siblings() {
        let (mut host, image) = small_host();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        let orig = host.read_page(a, 5).unwrap();

        let out = host.write_page(a, 5, 0xAAAA).unwrap();
        assert!(out.faulted);
        assert!(out.cost > SimTime::ZERO);
        assert_eq!(host.read_page(a, 5).unwrap(), 0xAAAA);
        assert_eq!(host.read_page(b, 5).unwrap(), orig, "sibling unaffected");

        let out2 = host.write_page(b, 5, 0xBBBB).unwrap();
        assert!(out2.faulted);
        assert_eq!(host.read_page(a, 5).unwrap(), 0xAAAA);
        assert_eq!(host.read_page(b, 5).unwrap(), 0xBBBB);
    }

    #[test]
    fn second_write_does_not_fault() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        assert!(host.write_page(vm, 7, 1).unwrap().faulted);
        let out = host.write_page(vm, 7, 2).unwrap();
        assert!(!out.faulted);
        assert_eq!(out.cost, SimTime::ZERO);
        assert_eq!(host.domain(vm).unwrap().cow_faults(), 1);
    }

    #[test]
    fn private_pages_grow_with_writes() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        let base = host.domain(vm).unwrap().private_pages();
        let stats = host.touch_pages(vm, &[1, 2, 3, 4, 5], 9).unwrap();
        assert_eq!(stats.faults, 5);
        assert_eq!(host.domain(vm).unwrap().private_pages(), base + 5);
    }

    #[test]
    fn destroy_returns_all_private_frames() {
        let (mut host, image) = small_host();
        let before = host.memory_report();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.touch_pages(vm, &(0..100).collect::<Vec<_>>(), 1).unwrap();
        let cost = host.destroy(vm).unwrap();
        assert!(cost > SimTime::ZERO);
        let after = host.memory_report();
        assert_eq!(after.used_frames, before.used_frames, "no frame leak");
        assert_eq!(after.live_domains, 0);
        assert!(matches!(host.domain(vm), Err(VmmError::NoSuchDomain(_))));
        assert!(matches!(host.destroy(vm), Err(VmmError::NoSuchDomain(_))));
    }

    #[test]
    fn destroy_never_frees_image_frames() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.destroy(vm).unwrap();
        // Image still fully readable through a fresh clone.
        let (vm2, _) = host.flash_clone(image).unwrap();
        assert_eq!(host.read_page(vm2, 0).unwrap(), GuestProfile::boot_content(image.0, 0));
    }

    #[test]
    fn full_copy_clone_allocates_whole_image() {
        let (mut host, image) = small_host();
        let before = host.memory_report().used_frames;
        let (vm, timing) = host.full_copy_clone(image).unwrap();
        let after = host.memory_report().used_frames;
        assert_eq!(after - before, 8_192 + 16);
        let dom = host.domain(vm).unwrap();
        assert_eq!(dom.private_pages(), 8_192 + 16);
        assert_eq!(dom.shared_pages(), 0);
        // Contents match the image but writes never fault.
        assert_eq!(host.read_page(vm, 3).unwrap(), GuestProfile::boot_content(image.0, 3));
        assert!(!host.write_page(vm, 3, 9).unwrap().faulted);
        assert!(timing.total() > SimTime::from_millis(400));
    }

    #[test]
    fn cold_boot_is_slowest_and_private() {
        let (mut host, image) = small_host();
        let (_, flash_t) = host.flash_clone(image).unwrap();
        let (vm, boot_t) = host.cold_boot(image).unwrap();
        assert!(boot_t.total() > SimTime::from_secs(20));
        assert!(boot_t.total() > flash_t.total() * 10);
        let dom = host.domain(vm).unwrap();
        assert_eq!(dom.provision(), ProvisionKind::ColdBoot);
        assert_eq!(dom.shared_pages(), 0);
        assert!(dom.is_running());
        let (flash, full, cold, _) = host.lifecycle_counts();
        assert_eq!((flash, full, cold), (1, 0, 1));
    }

    #[test]
    fn max_domains_enforced() {
        let (host, image) = small_host();
        let mut host = host.with_max_domains(2);
        host.flash_clone(image).unwrap();
        host.flash_clone(image).unwrap();
        assert!(matches!(host.flash_clone(image), Err(VmmError::TooManyDomains { limit: 2 })));
    }

    #[test]
    fn clone_oom_when_overhead_does_not_fit() {
        let mut host = Host::new(8_192 + 10).with_overhead_pages(16);
        let image = host.create_reference_image("t", GuestProfile::small()).unwrap();
        assert!(matches!(host.flash_clone(image), Err(VmmError::OutOfMemory { .. })));
        assert_eq!(host.live_domains(), 0);
    }

    #[test]
    fn write_fault_oom_surfaces() {
        let mut host = Host::new(8_192 + 4).with_overhead_pages(4);
        let image = host.create_reference_image("t", GuestProfile::small()).unwrap();
        let (vm, _) = host.flash_clone(image).unwrap();
        // No free frames remain: the first CoW fault must OOM.
        assert!(matches!(host.write_page(vm, 0, 1), Err(VmmError::OutOfMemory { .. })));
        // The shared mapping is still intact and readable.
        assert_eq!(host.read_page(vm, 0).unwrap(), GuestProfile::boot_content(image.0, 0));
    }

    #[test]
    fn ops_on_destroyed_or_missing_domains_fail() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.destroy(vm).unwrap();
        assert!(host.read_page(vm, 0).is_err());
        assert!(host.write_page(vm, 0, 1).is_err());
        assert!(host.read_page(DomainId(999), 0).is_err());
    }

    #[test]
    fn bad_pfn_rejected() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        let size = host.domain(vm).unwrap().memory_pages();
        assert!(matches!(host.read_page(vm, size), Err(VmmError::BadPfn { .. })));
        assert!(matches!(host.write_page(vm, size + 10, 0), Err(VmmError::BadPfn { .. })));
    }

    #[test]
    fn apply_request_and_infection() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        let s1 = host.apply_request(vm, 0).unwrap();
        assert_eq!(s1.pages, 16);
        assert!(s1.faults > 0);
        assert!(!host.domain(vm).unwrap().is_infected());
        let s2 = host.apply_infection(vm, 42).unwrap();
        assert_eq!(s2.pages, 128);
        let dom = host.domain(vm).unwrap();
        assert!(dom.is_infected());
        assert!(dom.disk().dirty_blocks() > 0);
    }

    #[test]
    fn marginal_memory_much_smaller_than_image() {
        let (mut host, image) = small_host();
        let mut vms = Vec::new();
        for i in 0..20 {
            let (vm, _) = host.flash_clone(image).unwrap();
            host.apply_request(vm, i).unwrap();
            vms.push(vm);
        }
        let report = host.memory_report();
        assert_eq!(report.live_domains, 20);
        let marginal = report.marginal_frames_per_domain();
        let image_pages = host.image(image).unwrap().pages() as f64;
        assert!(
            marginal < image_pages / 50.0,
            "marginal {marginal} frames should be ≪ image {image_pages}"
        );
    }

    #[test]
    fn rollback_restores_pristine_state_and_frees_delta() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        let clean = host.memory_report();
        host.apply_infection(vm, 7).unwrap();
        host.write_page(vm, 3, 0xBAD).unwrap();
        {
            let d = host.domain(vm).unwrap();
            assert!(d.is_infected());
            assert!(d.private_pages() > 16);
            assert!(d.disk().dirty_blocks() > 0);
        }
        let cost = host.rollback(vm).unwrap();
        assert!(cost > SimTime::ZERO);
        let after = host.memory_report();
        assert_eq!(after.used_frames, clean.used_frames, "delta frames returned");
        let d = host.domain(vm).unwrap();
        assert!(!d.is_infected());
        assert_eq!(d.bound_addr(), None);
        assert_eq!(d.private_pages(), 16, "only overhead remains private");
        assert_eq!(d.disk().dirty_blocks(), 0);
        assert!(d.is_running(), "rollback keeps the domain schedulable");
        // Memory reads pristine image content again.
        assert_eq!(host.read_page(vm, 3).unwrap(), GuestProfile::boot_content(image.0, 3));
        assert_eq!(host.rollback_count(), 1);
    }

    #[test]
    fn rollback_is_cheaper_than_destroy_plus_clone() {
        let (mut host, image) = small_host();
        let (vm, clone_timing) = host.flash_clone(image).unwrap();
        host.touch_pages(vm, &(0..200).collect::<Vec<_>>(), 1).unwrap();
        let private = host.domain(vm).unwrap().private_pages();
        let rollback_cost = host.rollback(vm).unwrap();
        let destroy_cost = host.cost_model().destroy_cost(private);
        assert!(rollback_cost < destroy_cost + clone_timing.total());
    }

    #[test]
    fn rollback_isolates_from_siblings() {
        let (mut host, image) = small_host();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        host.write_page(a, 5, 0xA).unwrap();
        host.write_page(b, 5, 0xB).unwrap();
        host.rollback(a).unwrap();
        // B's private copy is untouched; A reads the image again.
        assert_eq!(host.read_page(b, 5).unwrap(), 0xB);
        assert_eq!(host.read_page(a, 5).unwrap(), GuestProfile::boot_content(image.0, 5));
        // A rolled-back domain can be dirtied and rolled back again.
        host.write_page(a, 5, 0xAA).unwrap();
        host.rollback(a).unwrap();
        assert_eq!(host.read_page(a, 5).unwrap(), GuestProfile::boot_content(image.0, 5));
    }

    #[test]
    fn snapshot_captures_live_state_without_allocating() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.apply_infection(vm, 3).unwrap();
        host.write_page(vm, 10, 0xFEED).unwrap();
        let used_before = host.memory_report().used_frames;

        let forensic = host.snapshot_domain(vm, "infected-capture").unwrap();
        assert_eq!(host.memory_report().used_frames, used_before, "snapshot allocates nothing");

        // A clone of the forensic image sees the infected state...
        let (clone, _) = host.flash_clone(forensic).unwrap();
        assert_eq!(host.read_page(clone, 10).unwrap(), 0xFEED);
        // ...while a clone of the original image does not.
        let (fresh, _) = host.flash_clone(image).unwrap();
        assert_eq!(host.read_page(fresh, 10).unwrap(), GuestProfile::boot_content(image.0, 10));
    }

    #[test]
    fn snapshot_source_writes_do_not_leak_into_snapshot() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.write_page(vm, 10, 0xAAAA).unwrap();
        let snap = host.snapshot_domain(vm, "snap").unwrap();
        // The source keeps running and dirties the same page again — the
        // write must CoW away from the snapshot.
        let out = host.write_page(vm, 10, 0xBBBB).unwrap();
        assert!(out.faulted, "frozen page must fault");
        let (clone, _) = host.flash_clone(snap).unwrap();
        assert_eq!(host.read_page(clone, 10).unwrap(), 0xAAAA, "snapshot frozen at capture");
        assert_eq!(host.read_page(vm, 10).unwrap(), 0xBBBB);
    }

    #[test]
    fn snapshot_chains_preserve_generational_state() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.write_page(vm, 0, 0xAAA).unwrap();
        let gen1 = host.snapshot_domain(vm, "gen1").unwrap();
        host.write_page(vm, 0, 0xBBB).unwrap();
        let gen2 = host.snapshot_domain(vm, "gen2").unwrap();
        host.write_page(vm, 0, 0xCCC).unwrap();

        let (c1, _) = host.flash_clone(gen1).unwrap();
        let (c2, _) = host.flash_clone(gen2).unwrap();
        assert_eq!(host.read_page(c1, 0).unwrap(), 0xAAA, "gen1 frozen");
        assert_eq!(host.read_page(c2, 0).unwrap(), 0xBBB, "gen2 frozen");
        assert_eq!(host.read_page(vm, 0).unwrap(), 0xCCC, "source keeps evolving");
        // Untouched pages still read the original boot content everywhere.
        for d in [vm, c1, c2] {
            assert_eq!(host.read_page(d, 9).unwrap(), GuestProfile::boot_content(image.0, 9));
        }
    }

    #[test]
    fn rollback_after_snapshot_restores_original_image() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.write_page(vm, 10, 0x1).unwrap();
        host.snapshot_domain(vm, "mid").unwrap();
        host.rollback(vm).unwrap();
        assert_eq!(
            host.read_page(vm, 10).unwrap(),
            GuestProfile::boot_content(image.0, 10),
            "rollback targets the original image, not the snapshot"
        );
        assert_eq!(host.domain(vm).unwrap().private_pages(), 16, "only overhead");
    }

    #[test]
    fn reverted_pages_are_reshared() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        // Dirty three pages, then write the image content back into two of
        // them (a freed buffer reverting to its pristine state).
        for pfn in [1u64, 2, 3] {
            host.write_page(vm, pfn, 0xD1147).unwrap();
        }
        for pfn in [1u64, 2] {
            host.write_page(vm, pfn, GuestProfile::boot_content(image.0, pfn)).unwrap();
        }
        let before = host.memory_report().used_frames;
        let reclaimed = host.reshare_reverted_pages(vm).unwrap();
        assert_eq!(reclaimed, 2);
        assert_eq!(host.memory_report().used_frames, before - 2);
        // Contents unchanged from the guest's point of view.
        for pfn in [1u64, 2] {
            assert_eq!(host.read_page(vm, pfn).unwrap(), GuestProfile::boot_content(image.0, pfn));
        }
        assert_eq!(host.read_page(vm, 3).unwrap(), 0xD1147);
        // A re-shared page faults again on the next write.
        assert!(host.write_page(vm, 1, 0x1).unwrap().faulted);
        // Idempotent when nothing reverted.
        assert_eq!(host.reshare_reverted_pages(vm).unwrap(), 0);
    }

    #[test]
    fn rollback_unknown_domain_fails() {
        let (mut host, _) = small_host();
        assert!(matches!(host.rollback(DomainId(9)), Err(VmmError::NoSuchDomain(_))));
    }

    #[test]
    fn crash_tears_down_domains_and_releases_their_frames() {
        let (mut host, image) = small_host();
        let pristine = host.memory_report();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.touch_pages(vm, &(0..50).collect::<Vec<_>>(), 1).unwrap();
        assert!(host.is_alive());

        let lost = host.crash();
        assert_eq!(lost, 1);
        assert!(!host.is_alive());
        assert_eq!(host.crash_counts(), (1, 1));
        let after = host.memory_report();
        assert_eq!(after.live_domains, 0);
        assert_eq!(after.used_frames, pristine.used_frames, "domain frames released");
        assert_eq!(after.image_frames, pristine.image_frames, "images survive the crash");
        // Crash is idempotent: a dead host stays dead, counters unchanged.
        assert_eq!(host.crash(), 0);
        assert_eq!(host.crash_counts(), (1, 1));
    }

    #[test]
    fn dead_host_rejects_all_operations() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        host.crash();
        assert_eq!(host.flash_clone(image), Err(VmmError::HostDown));
        assert_eq!(host.full_copy_clone(image).unwrap_err(), VmmError::HostDown);
        assert_eq!(host.cold_boot(image).unwrap_err(), VmmError::HostDown);
        assert_eq!(host.destroy(vm), Err(VmmError::HostDown));
        assert_eq!(host.rollback(vm), Err(VmmError::HostDown));
        assert_eq!(host.read_page(vm, 0), Err(VmmError::HostDown));
        assert_eq!(host.write_page(vm, 0, 1).unwrap_err(), VmmError::HostDown);
        assert_eq!(host.snapshot_domain(vm, "s").unwrap_err(), VmmError::HostDown);
        assert_eq!(host.reshare_reverted_pages(vm), Err(VmmError::HostDown));
        assert!(matches!(
            host.create_reference_image("x", GuestProfile::small()),
            Err(VmmError::HostDown)
        ));
    }

    #[test]
    fn revived_host_serves_fresh_clones() {
        let (mut host, image) = small_host();
        host.flash_clone(image).unwrap();
        host.crash();
        host.revive();
        assert!(host.is_alive());
        assert_eq!(host.live_domains(), 0);
        let (vm, _) = host.flash_clone(image).unwrap();
        assert_eq!(host.read_page(vm, 0).unwrap(), GuestProfile::boot_content(image.0, 0));
    }

    #[test]
    fn injected_clone_faults_are_consumed_per_attempt() {
        let (mut host, image) = small_host();
        host.fail_next_clones(2);
        assert_eq!(host.pending_clone_faults(), 2);
        assert_eq!(host.flash_clone(image), Err(VmmError::InjectedFault { op: "flash_clone" }));
        assert_eq!(host.flash_clone(image), Err(VmmError::InjectedFault { op: "flash_clone" }));
        assert_eq!(host.pending_clone_faults(), 0);
        assert!(host.flash_clone(image).is_ok(), "budget exhausted, clone succeeds");
        // A failed attempt allocates nothing and mints no domain id.
        assert_eq!(host.live_domains(), 1);
        // Crashing clears any armed faults.
        host.fail_next_clones(5);
        host.crash();
        host.revive();
        assert_eq!(host.pending_clone_faults(), 0);
    }

    #[test]
    fn memory_report_internally_consistent() {
        let (mut host, image) = small_host();
        for i in 0..5 {
            let (vm, _) = host.flash_clone(image).unwrap();
            host.apply_request(vm, i).unwrap();
        }
        let r = host.memory_report();
        assert_eq!(r.used_frames + r.free_frames, r.total_frames);
        assert_eq!(r.used_frames, r.image_frames + r.private_frames);
    }

    #[test]
    fn merge_collapses_identical_divergent_pages() {
        let (mut host, image) = small_host();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        // Both clones write the same "payload" into the same pfns — the
        // worm-infection pattern.
        for pfn in 0..50u64 {
            host.write_page(a, pfn, 0x1000 + pfn).unwrap();
            host.write_page(b, pfn, 0x1000 + pfn).unwrap();
        }
        let diverged = host.memory_report().used_frames;
        let report = host.scan_and_merge().unwrap();
        assert_eq!(report.merged_pages, 50, "one side of each pair remaps");
        assert_eq!(report.frames_reclaimed, 50);
        assert_eq!(host.memory_report().used_frames, diverged - 50);
        // Guest-visible contents unchanged.
        for pfn in 0..50u64 {
            assert_eq!(host.read_page(a, pfn).unwrap(), 0x1000 + pfn);
            assert_eq!(host.read_page(b, pfn).unwrap(), 0x1000 + pfn);
        }
    }

    #[test]
    fn merge_reshares_image_identical_pages() {
        let (mut host, image) = small_host();
        let (vm, _) = host.flash_clone(image).unwrap();
        let orig = host.read_page(vm, 3).unwrap();
        host.write_page(vm, 3, 0xFEED).unwrap();
        host.write_page(vm, 3, orig).unwrap(); // reverted to image content
        let before = host.memory_report().used_frames;
        let report = host.scan_and_merge().unwrap();
        assert_eq!(report.merged_pages, 1);
        assert_eq!(host.memory_report().used_frames, before - 1);
        assert_eq!(host.read_page(vm, 3).unwrap(), orig);
    }

    #[test]
    fn writes_after_merge_fault_private_copies_again() {
        let (mut host, image) = small_host();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        host.write_page(a, 9, 0xC0DE).unwrap();
        host.write_page(b, 9, 0xC0DE).unwrap();
        assert_eq!(host.scan_and_merge().unwrap().merged_pages, 1);
        // The canonical owner's mapping was frozen too: its next write must
        // fault a private copy, not mutate the shared frame.
        let out = host.write_page(a, 9, 0xAAAA).unwrap();
        assert!(out.faulted, "merged page is read-only for both domains");
        assert_eq!(host.read_page(a, 9).unwrap(), 0xAAAA);
        assert_eq!(host.read_page(b, 9).unwrap(), 0xC0DE, "sibling keeps merged content");
    }

    #[test]
    fn merge_is_idempotent_and_skips_overhead_pages() {
        let (mut host, image) = small_host();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        // Overhead pages (pfn >= image pages) start identical (zero) across
        // domains but model per-domain hypervisor state: never merged.
        host.write_page(a, 4, 7).unwrap();
        host.write_page(b, 4, 7).unwrap();
        let first = host.scan_and_merge().unwrap();
        assert_eq!(first.merged_pages, 1, "only the guest-region duplicate merges");
        assert_eq!(first.scanned_pages, 2 * 8_192);
        let second = host.scan_and_merge().unwrap();
        assert_eq!(second.merged_pages, 0, "second pass finds nothing");
        assert_eq!(second.frames_reclaimed, 0);
        let r = host.memory_report();
        // The merged frame is shared between the two domains (writable in
        // neither map), so only the per-domain overhead stays private.
        assert_eq!(r.private_frames, 2 * 16, "overhead stays private per domain");
        assert_eq!(r.used_frames, r.image_frames + r.private_frames + 1, "one merged frame");
    }

    #[test]
    fn sharing_ratio_grows_with_clones_and_merging() {
        let (mut host, image) = small_host();
        let mut vms = Vec::new();
        for _ in 0..4 {
            let (vm, _) = host.flash_clone(image).unwrap();
            vms.push(vm);
        }
        let fresh = host.sharing_report();
        assert_eq!(fresh.logical_pages, 4 * (8_192 + 16));
        assert!(fresh.ratio() > 1.0, "CoW sharing alone beats 1x");
        for &vm in &vms {
            for pfn in 0..64u64 {
                host.write_page(vm, pfn, 0xBEEF + pfn).unwrap();
            }
        }
        let diverged = host.sharing_report();
        assert!(diverged.ratio() < fresh.ratio(), "divergence costs sharing");
        host.scan_and_merge().unwrap();
        let merged = host.sharing_report();
        assert!(merged.ratio() > diverged.ratio(), "merging recovers sharing");
        assert!(merged.ratio() > 1.0);
    }

    #[test]
    fn merge_on_dead_host_is_rejected() {
        let (mut host, _) = small_host();
        host.crash();
        assert!(matches!(host.scan_and_merge(), Err(VmmError::HostDown)));
    }
}
