//! The virtual-time latency model for VM lifecycle operations.
//!
//! The simulation performs the *bookkeeping* of flash cloning for real, but
//! the wall-clock cost of each stage on 2005-era Xen hardware must be
//! modeled. The constants below are calibrated so that the flash-clone total
//! lands in the "low hundreds of milliseconds" the paper reports (its
//! unoptimized prototype measured ≈521 ms end-to-end), a cold OS boot takes
//! tens of seconds, and an eager full-memory-copy clone pays a per-page copy
//! cost. Every constant is a public field, so experiments can ablate the
//! model.

use potemkin_sim::SimTime;

/// How a provisioning stage's duration derives from the model: a fixed
/// field, or a per-page rate multiplied by the clone's page count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageCost {
    /// `xend`-style control-path overhead ([`CostModel::control_plane`]).
    ControlPlane,
    /// Hypervisor domain construction ([`CostModel::domain_create`]).
    DomainCreate,
    /// Per-page CoW mapping installation
    /// ([`CostModel::cow_map_per_page`] × pages).
    CowMapPerPage,
    /// Per-page eager memory copy — also models page allocation for cold
    /// boots ([`CostModel::copy_per_page`] × pages).
    CopyPerPage,
    /// Virtual device attach ([`CostModel::device_attach`]).
    DeviceAttach,
    /// Late-bound network configuration ([`CostModel::net_config`]).
    NetConfig,
    /// Unpause/resume ([`CostModel::unpause`]).
    Unpause,
    /// Full OS boot ([`CostModel::cold_boot`]).
    ColdBoot,
}

/// One row of a provisioning-stage table: the stable stage name (the rows
/// of the paper's clone-latency table reproduction, and the span names the
/// observability layer emits) plus how its duration derives from the
/// model. One table feeds both the cost model and the traced breakdown,
/// so the two can never drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Stable stage name.
    pub name: &'static str,
    /// Duration rule.
    pub cost: StageCost,
}

impl StageSpec {
    /// Evaluates this stage's duration under `model` for a clone of
    /// `pages` pages.
    #[must_use]
    pub fn duration(&self, model: &CostModel, pages: u64) -> SimTime {
        match self.cost {
            StageCost::ControlPlane => model.control_plane,
            StageCost::DomainCreate => model.domain_create,
            StageCost::CowMapPerPage => model.cow_map_per_page * pages,
            StageCost::CopyPerPage => model.copy_per_page * pages,
            StageCost::DeviceAttach => model.device_attach,
            StageCost::NetConfig => model.net_config,
            StageCost::Unpause => model.unpause,
            StageCost::ColdBoot => model.cold_boot,
        }
    }
}

/// The flash-clone stage table (delta-virtualization path).
pub const FLASH_CLONE_STAGES: &[StageSpec] = &[
    StageSpec { name: "control plane", cost: StageCost::ControlPlane },
    StageSpec { name: "domain creation", cost: StageCost::DomainCreate },
    StageSpec { name: "CoW memory map", cost: StageCost::CowMapPerPage },
    StageSpec { name: "device attach", cost: StageCost::DeviceAttach },
    StageSpec { name: "network config", cost: StageCost::NetConfig },
    StageSpec { name: "unpause", cost: StageCost::Unpause },
];

/// The eager full-memory-copy clone stage table (no-delta baseline).
pub const FULL_COPY_STAGES: &[StageSpec] = &[
    StageSpec { name: "control plane", cost: StageCost::ControlPlane },
    StageSpec { name: "domain creation", cost: StageCost::DomainCreate },
    StageSpec { name: "memory copy", cost: StageCost::CopyPerPage },
    StageSpec { name: "device attach", cost: StageCost::DeviceAttach },
    StageSpec { name: "network config", cost: StageCost::NetConfig },
    StageSpec { name: "unpause", cost: StageCost::Unpause },
];

/// The cold-boot stage table (no-cloning baseline).
pub const COLD_BOOT_STAGES: &[StageSpec] = &[
    StageSpec { name: "control plane", cost: StageCost::ControlPlane },
    StageSpec { name: "domain creation", cost: StageCost::DomainCreate },
    StageSpec { name: "memory allocation", cost: StageCost::CopyPerPage },
    StageSpec { name: "device attach", cost: StageCost::DeviceAttach },
    StageSpec { name: "network config", cost: StageCost::NetConfig },
    StageSpec { name: "OS boot", cost: StageCost::ColdBoot },
];

/// The standby-bind stage table: only the late-binding stages remain.
pub const STANDBY_BIND_STAGES: &[StageSpec] = &[
    StageSpec { name: "network config", cost: StageCost::NetConfig },
    StageSpec { name: "unpause", cost: StageCost::Unpause },
];

/// Latency model for domain lifecycle operations.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Control-plane overhead per management operation (the paper found the
    /// Python `xend` path dominated unoptimized clone time).
    pub control_plane: SimTime,
    /// Hypervisor domain-construction cost (fixed part).
    pub domain_create: SimTime,
    /// Per-page cost of installing a CoW mapping (map + refcount, no copy).
    pub cow_map_per_page: SimTime,
    /// Per-page cost of an eager memory copy (the no-delta baseline).
    pub copy_per_page: SimTime,
    /// Device attach cost (virtual NIC + CoW block device).
    pub device_attach: SimTime,
    /// Network configuration cost (late-bound IP/MAC, gateway filter entry).
    pub net_config: SimTime,
    /// Unpause/resume cost.
    pub unpause: SimTime,
    /// Cost of one CoW write fault taken by a running domain.
    pub cow_fault: SimTime,
    /// Cost of lazily materializing one disk chunk from the golden image
    /// on first guest read (late binding for storage). Charged per chunk
    /// faulted in, never per block.
    pub chunk_materialize: SimTime,
    /// Fixed cost of a cold OS boot (the no-cloning baseline).
    pub cold_boot: SimTime,
    /// Cost of destroying a domain and scrubbing its private pages,
    /// per page.
    pub destroy_per_page: SimTime,
    /// Fixed destroy cost.
    pub destroy_fixed: SimTime,
    /// Fixed cost of rolling a domain back to its reference image (cheaper
    /// than destroy + clone: the domain structures survive, only the delta
    /// is discarded).
    pub rollback_fixed: SimTime,
}

impl Default for CostModel {
    /// Calibration chosen to match the published evaluation's shape:
    /// flash clone of a 128 MiB image ≈ 520 ms, cold boot ≈ 23 s.
    fn default() -> Self {
        CostModel {
            control_plane: SimTime::from_millis(182),
            domain_create: SimTime::from_millis(59),
            cow_map_per_page: SimTime::from_nanos(320),
            copy_per_page: SimTime::from_micros(4), // ~1 GiB/s for 4 KiB pages
            device_attach: SimTime::from_millis(123),
            net_config: SimTime::from_millis(99),
            unpause: SimTime::from_millis(31),
            cow_fault: SimTime::from_micros(25),
            chunk_materialize: SimTime::from_micros(250), // ~256 KiB chunk at ~1 GiB/s
            cold_boot: SimTime::from_secs(23),
            destroy_per_page: SimTime::from_nanos(150),
            destroy_fixed: SimTime::from_millis(40),
            rollback_fixed: SimTime::from_millis(12),
        }
    }
}

impl CostModel {
    /// An idealized optimized model (the paper's "future work" projection:
    /// bypass the control plane, batch the map operations).
    #[must_use]
    pub fn optimized() -> Self {
        CostModel {
            control_plane: SimTime::from_millis(5),
            domain_create: SimTime::from_millis(10),
            cow_map_per_page: SimTime::from_nanos(120),
            device_attach: SimTime::from_millis(8),
            net_config: SimTime::from_millis(4),
            unpause: SimTime::from_millis(2),
            ..CostModel::default()
        }
    }

    /// Evaluates a stage table under this model.
    fn eval_stages(&self, table: &[StageSpec], pages: u64) -> Vec<(&'static str, SimTime)> {
        table.iter().map(|spec| (spec.name, spec.duration(self, pages))).collect()
    }

    /// The per-stage latency breakdown of a flash clone of `pages` pages
    /// ([`FLASH_CLONE_STAGES`] evaluated under this model).
    ///
    /// Stage names are stable: they are the rows of the reproduction of the
    /// paper's clone-latency table and the observability layer's span
    /// names.
    #[must_use]
    pub fn flash_clone_stages(&self, pages: u64) -> Vec<(&'static str, SimTime)> {
        self.eval_stages(FLASH_CLONE_STAGES, pages)
    }

    /// The per-stage breakdown of an eager full-copy clone (baseline;
    /// [`FULL_COPY_STAGES`]).
    #[must_use]
    pub fn full_copy_stages(&self, pages: u64) -> Vec<(&'static str, SimTime)> {
        self.eval_stages(FULL_COPY_STAGES, pages)
    }

    /// The per-stage breakdown of a cold boot (baseline;
    /// [`COLD_BOOT_STAGES`]).
    #[must_use]
    pub fn cold_boot_stages(&self, pages: u64) -> Vec<(&'static str, SimTime)> {
        self.eval_stages(COLD_BOOT_STAGES, pages)
    }

    /// The cost of destroying a domain with `private_pages` private pages.
    #[must_use]
    pub fn destroy_cost(&self, private_pages: u64) -> SimTime {
        self.destroy_fixed + self.destroy_per_page * private_pages
    }

    /// The cost of rolling a domain back to pristine image state.
    #[must_use]
    pub fn rollback_cost(&self, private_pages: u64) -> SimTime {
        self.rollback_fixed + self.destroy_per_page * private_pages
    }

    /// The latency of binding a *standby* (pre-cloned, idle) VM to an
    /// address: only the late-binding stages remain
    /// ([`STANDBY_BIND_STAGES`]).
    #[must_use]
    pub fn standby_bind_stages(&self) -> Vec<(&'static str, SimTime)> {
        self.eval_stages(STANDBY_BIND_STAGES, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGES_128M: u64 = 32_768; // 128 MiB / 4 KiB

    fn total(stages: &[(&'static str, SimTime)]) -> SimTime {
        stages.iter().map(|&(_, t)| t).sum()
    }

    #[test]
    fn flash_clone_lands_near_paper_total() {
        let m = CostModel::default();
        let t = total(&m.flash_clone_stages(PAGES_128M));
        let ms = t.as_millis();
        assert!((450..600).contains(&ms), "flash clone total = {ms} ms");
    }

    #[test]
    fn cold_boot_is_tens_of_seconds() {
        let m = CostModel::default();
        let t = total(&m.cold_boot_stages(PAGES_128M));
        assert!(t >= SimTime::from_secs(20));
    }

    #[test]
    fn ordering_flash_lt_copy_lt_boot() {
        let m = CostModel::default();
        let flash = total(&m.flash_clone_stages(PAGES_128M));
        let copy = total(&m.full_copy_stages(PAGES_128M));
        let boot = total(&m.cold_boot_stages(PAGES_128M));
        assert!(flash < copy, "flash {flash} !< copy {copy}");
        assert!(copy < boot, "copy {copy} !< boot {boot}");
    }

    #[test]
    fn optimized_is_faster() {
        let d = total(&CostModel::default().flash_clone_stages(PAGES_128M));
        let o = total(&CostModel::optimized().flash_clone_stages(PAGES_128M));
        assert!(o < d / 4, "optimized {o} not ≪ default {d}");
    }

    #[test]
    fn per_page_terms_scale() {
        let m = CostModel::default();
        let small = total(&m.flash_clone_stages(1_000));
        let big = total(&m.flash_clone_stages(100_000));
        assert!(big > small);
        // But the fixed stages dominate: 100× pages is far from 100× time.
        assert!(big < small * 3);
    }

    #[test]
    fn destroy_cost_scales_with_private_pages() {
        let m = CostModel::default();
        assert!(m.destroy_cost(10_000) > m.destroy_cost(0));
        assert_eq!(m.destroy_cost(0), m.destroy_fixed);
    }

    #[test]
    fn rollback_and_standby_are_cheaper() {
        let m = CostModel::default();
        // Rollback beats destroy for the same delta size.
        assert!(m.rollback_cost(1_000) < m.destroy_cost(1_000));
        // Binding a standby VM beats a fresh flash clone.
        let standby: SimTime = m.standby_bind_stages().iter().map(|&(_, t)| t).sum();
        let flash: SimTime = m.flash_clone_stages(PAGES_128M).iter().map(|&(_, t)| t).sum();
        assert!(standby < flash / 3, "standby {standby} vs flash {flash}");
    }

    #[test]
    fn stage_tables_are_the_single_source() {
        let m = CostModel::optimized();
        for (table, evaluated) in [
            (FLASH_CLONE_STAGES, m.flash_clone_stages(77)),
            (FULL_COPY_STAGES, m.full_copy_stages(77)),
            (COLD_BOOT_STAGES, m.cold_boot_stages(77)),
            (STANDBY_BIND_STAGES, m.standby_bind_stages()),
        ] {
            assert_eq!(table.len(), evaluated.len());
            for (spec, (name, duration)) in table.iter().zip(evaluated) {
                assert_eq!(spec.name, name);
                assert_eq!(spec.duration(&m, 77), duration);
            }
        }
    }

    #[test]
    fn stage_names_are_stable() {
        let m = CostModel::default();
        let names: Vec<&str> = m.flash_clone_stages(1).iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "control plane",
                "domain creation",
                "CoW memory map",
                "device attach",
                "network config",
                "unpause"
            ]
        );
    }
}
