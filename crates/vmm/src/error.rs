//! VMM error type.

use core::fmt;

use crate::domain::DomainId;
use crate::snapshot::ImageId;

/// Errors from VMM operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmmError {
    /// The host has no free machine frames left.
    OutOfMemory {
        /// Frames requested.
        requested: u64,
        /// Frames free at the time.
        free: u64,
    },
    /// The referenced domain does not exist (or was destroyed).
    NoSuchDomain(DomainId),
    /// The referenced reference image does not exist.
    NoSuchImage(ImageId),
    /// The operation is invalid in the domain's current state.
    BadState {
        /// The domain.
        domain: DomainId,
        /// What was attempted.
        op: &'static str,
    },
    /// A pseudo-physical frame number is outside the domain's memory.
    BadPfn {
        /// The offending pfn.
        pfn: u64,
        /// The domain's memory size in pages.
        size: u64,
    },
    /// A block number is outside the virtual disk.
    BadBlock {
        /// The offending block.
        block: u64,
        /// The disk size in blocks.
        size: u64,
    },
    /// The host's domain limit was reached.
    TooManyDomains {
        /// The configured limit.
        limit: usize,
    },
    /// The physical host is down (crashed); no VMM operation can proceed
    /// until it recovers.
    HostDown,
    /// A deterministically injected fault from the fault-injection harness
    /// made the operation fail. Transient: the same operation may succeed on
    /// retry.
    InjectedFault {
        /// The operation that was made to fail.
        op: &'static str,
    },
}

impl VmmError {
    /// Returns `true` if the error is transient — retrying the same operation
    /// on the same host may succeed (injected faults are consumed per
    /// attempt). Capacity and state errors are not transient: retrying
    /// without freeing resources cannot help.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, VmmError::InjectedFault { .. })
    }
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} frames, {free} free")
            }
            VmmError::NoSuchDomain(id) => write!(f, "no such domain: {id}"),
            VmmError::NoSuchImage(id) => write!(f, "no such reference image: {id}"),
            VmmError::BadState { domain, op } => {
                write!(f, "domain {domain}: invalid state for {op}")
            }
            VmmError::BadPfn { pfn, size } => {
                write!(f, "pfn {pfn} out of range (domain has {size} pages)")
            }
            VmmError::BadBlock { block, size } => {
                write!(f, "block {block} out of range (disk has {size} blocks)")
            }
            VmmError::TooManyDomains { limit } => {
                write!(f, "domain limit reached ({limit})")
            }
            VmmError::HostDown => write!(f, "host is down"),
            VmmError::InjectedFault { op } => write!(f, "injected fault during {op}"),
        }
    }
}

impl std::error::Error for VmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert_eq!(
            VmmError::OutOfMemory { requested: 10, free: 3 }.to_string(),
            "out of memory: requested 10 frames, 3 free"
        );
        assert!(VmmError::NoSuchDomain(DomainId(7)).to_string().contains("dom7"));
        assert!(VmmError::NoSuchImage(ImageId(2)).to_string().contains("img2"));
        assert!(VmmError::BadState { domain: DomainId(1), op: "write" }
            .to_string()
            .contains("write"));
        assert!(VmmError::BadPfn { pfn: 99, size: 10 }.to_string().contains("99"));
        assert!(VmmError::BadBlock { block: 5, size: 2 }.to_string().contains("5"));
        assert!(VmmError::TooManyDomains { limit: 128 }.to_string().contains("128"));
        assert_eq!(VmmError::HostDown.to_string(), "host is down");
        assert!(VmmError::InjectedFault { op: "flash_clone" }.to_string().contains("flash_clone"));
    }

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(VmmError::InjectedFault { op: "flash_clone" }.is_transient());
        assert!(!VmmError::HostDown.is_transient());
        assert!(!VmmError::OutOfMemory { requested: 1, free: 0 }.is_transient());
        assert!(!VmmError::TooManyDomains { limit: 4 }.is_transient());
    }
}
