//! A simulated virtual machine monitor implementing Potemkin's two core
//! mechanisms: **flash cloning** and **delta virtualization**.
//!
//! The paper (Vrable et al., SOSP 2005) modified Xen so that a honeypot VM
//! is not booted but *forked* from a live reference-image snapshot in
//! hundreds of milliseconds (flash cloning), and so that clone memory is
//! copy-on-write against that snapshot, making the marginal footprint of a
//! clone just the pages it dirties (delta virtualization). Those two
//! mechanisms are *bookkeeping* mechanisms — which machine frames exist,
//! which are shared, which faults copy what — and this crate performs the
//! identical bookkeeping over simulated frames, so memory-scaling and
//! clone-latency experiments reproduce the paper's curves without Xen or
//! physical x86 hardware (see DESIGN.md §5 for the substitution argument).
//!
//! # Architecture
//!
//! * [`frame`] — the machine frame table: allocation, reference counts,
//!   per-frame content words standing in for page contents.
//! * [`addrspace`] — per-domain pseudo-physical → machine maps with
//!   writable bits (the p2m table).
//! * [`snapshot`] — frozen reference images created by booting a guest
//!   profile once.
//! * [`domain`] — VM domains: lifecycle, memory reads/writes with CoW
//!   write faults, devices.
//! * [`block`] — copy-on-write virtual block devices as thin views over
//!   `potemkin-storage` chunk manifests: base disks dedupe farm-wide
//!   through a shared content-addressed store and materialize lazily on
//!   first guest read.
//! * [`clone`] — the flash-clone procedure and its per-stage timing, plus
//!   the boot-from-scratch and eager-full-copy baselines.
//! * [`cost`] — the latency cost model (calibrated to the paper's
//!   era; every constant is documented and overridable).
//! * [`guest`] — parameterized guest behaviour models (working sets,
//!   dirty rates, service dialogues, infection behaviour).
//! * [`host`] — a physical server: frame table + domains + images +
//!   memory accounting.
//!
//! # Examples
//!
//! ```
//! use potemkin_vmm::guest::GuestProfile;
//! use potemkin_vmm::host::Host;
//!
//! // A server with 65,536 frames (256 MiB at 4 KiB/page).
//! let mut host = Host::new(65_536);
//! let image = host.create_reference_image("winxp", GuestProfile::small()).unwrap();
//! let (vm, timing) = host.flash_clone(image).unwrap();
//! assert!(timing.total() < potemkin_sim::SimTime::from_secs(1));
//!
//! // The clone shares every page with the image until it writes.
//! let before = host.memory_report().private_frames;
//! let outcome = host.write_page(vm, 0, 0xdead_beef).unwrap();
//! assert!(outcome.faulted, "first write to a shared page takes a CoW fault");
//! let after = host.memory_report().private_frames;
//! assert_eq!(after, before + 1);
//! ```

pub mod addrspace;
pub mod block;
pub mod clone;
pub mod cost;
pub mod domain;
pub mod error;
pub mod frame;
pub mod guest;
pub mod host;
pub mod memctl;
pub mod snapshot;

pub use block::{BaseDisk, CowDisk, DiskStats};
pub use clone::{CloneTiming, RetryPolicy};
pub use cost::{
    CostModel, StageCost, StageSpec, COLD_BOOT_STAGES, FLASH_CLONE_STAGES, FULL_COPY_STAGES,
    STANDBY_BIND_STAGES,
};
pub use domain::{Domain, DomainId, DomainState};
pub use error::VmmError;
pub use frame::{FrameId, FrameTable};
pub use guest::GuestProfile;
pub use host::{Host, MemoryReport};
pub use memctl::{MemoryBudget, MergeReport, PressureEvent, SharingReport};
pub use snapshot::ImageId;
// The storage layer's public surface, re-exported so farm-level code can
// share one chunk store across hosts without a direct crate dependency.
pub use potemkin_storage::{
    ChunkHash, ChunkRef, ChunkStore, DirChunkStore, Manifest, MemoryChunkStore, OverlayManifest,
    SharedChunkStore, StorageError, StoreStats, DEFAULT_CHUNK_BLOCKS,
};

/// Page size used throughout the simulation (bytes).
pub const PAGE_SIZE: u64 = 4096;

/// Convenience alias: fallible VMM operations use [`VmmError`].
pub type Result<T> = core::result::Result<T, VmmError>;
