//! Parameterized guest behaviour models.
//!
//! The real Potemkin ran stock OS images. What the experiments actually
//! depend on is *which pages a guest dirties when* (for the delta-
//! virtualization memory curves) and *how deep a service dialogue the guest
//! can sustain* (for the fidelity comparison against scripted low-
//! interaction responders). [`GuestProfile`] captures exactly those
//! decision-relevant behaviours; see DESIGN.md §5 for the substitution
//! argument.

/// Transport of a listening service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceProto {
    /// TCP service.
    Tcp,
    /// UDP service.
    Udp,
}

/// A network service the guest runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Service {
    /// Listening port.
    pub port: u16,
    /// Transport protocol.
    pub proto: ServiceProto,
    /// Number of request/response rounds an exploit of this service needs
    /// before its payload executes. A real guest sustains any depth; this
    /// field parameterizes the *attack*, and scripted low-interaction
    /// baselines fail when their scripted depth is smaller.
    pub exploit_depth: u8,
}

/// Behavioural profile of a guest OS image.
///
/// # Examples
///
/// ```
/// use potemkin_vmm::guest::GuestProfile;
///
/// let p = GuestProfile::windows_server();
/// assert!(p.listens_on_tcp(445));
/// assert!(!p.listens_on_tcp(22));
/// let pages = p.pages_for_request(0);
/// assert!(!pages.is_empty());
/// assert!(pages.iter().all(|&pfn| pfn < p.memory_pages));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GuestProfile {
    /// Total pseudo-physical memory in pages.
    pub memory_pages: u64,
    /// Virtual disk size in blocks.
    pub disk_blocks: u64,
    /// Content seed of the golden disk image. Images built from profiles
    /// with the same seed (and chunk geometry) share every base chunk in
    /// the farm-wide store — the disk-side sharing the paper's delta
    /// virtualization implies.
    pub disk_seed: u64,
    /// Pages dirtied while handling one inbound service request.
    pub request_touch_pages: u64,
    /// Pages dirtied when an exploit payload executes (infection).
    pub infection_touch_pages: u64,
    /// Background page-dirty rate once infected (pages/second) — an
    /// infected guest scans, logs, and allocates.
    pub infected_dirty_rate: f64,
    /// Disk blocks written when an exploit payload executes.
    pub infection_disk_blocks: u64,
    /// Listening services.
    pub services: Vec<Service>,
}

impl GuestProfile {
    /// A tiny profile for unit tests (32 MiB of memory).
    #[must_use]
    pub fn small() -> Self {
        GuestProfile {
            memory_pages: 8_192,
            disk_blocks: 4_096,
            disk_seed: 0xD15C,
            request_touch_pages: 16,
            infection_touch_pages: 128,
            infected_dirty_rate: 64.0,
            infection_disk_blocks: 32,
            services: vec![
                Service { port: 80, proto: ServiceProto::Tcp, exploit_depth: 2 },
                Service { port: 445, proto: ServiceProto::Tcp, exploit_depth: 3 },
            ],
        }
    }

    /// A Windows-server-like profile (128 MiB, the paper's clone size).
    #[must_use]
    pub fn windows_server() -> Self {
        GuestProfile {
            memory_pages: 32_768,
            disk_blocks: 262_144,
            disk_seed: 0xD15C,
            request_touch_pages: 96,
            infection_touch_pages: 1_024,
            infected_dirty_rate: 256.0,
            infection_disk_blocks: 256,
            services: vec![
                Service { port: 135, proto: ServiceProto::Tcp, exploit_depth: 2 },
                Service { port: 139, proto: ServiceProto::Tcp, exploit_depth: 3 },
                Service { port: 445, proto: ServiceProto::Tcp, exploit_depth: 3 },
                Service { port: 80, proto: ServiceProto::Tcp, exploit_depth: 2 },
                Service { port: 1434, proto: ServiceProto::Udp, exploit_depth: 1 },
            ],
        }
    }

    /// A Linux-server-like profile (128 MiB).
    #[must_use]
    pub fn linux_server() -> Self {
        GuestProfile {
            memory_pages: 32_768,
            disk_blocks: 262_144,
            disk_seed: 0x11F5,
            request_touch_pages: 48,
            infection_touch_pages: 512,
            infected_dirty_rate: 128.0,
            infection_disk_blocks: 128,
            services: vec![
                Service { port: 22, proto: ServiceProto::Tcp, exploit_depth: 4 },
                Service { port: 25, proto: ServiceProto::Tcp, exploit_depth: 3 },
                Service { port: 80, proto: ServiceProto::Tcp, exploit_depth: 2 },
            ],
        }
    }

    /// Whether the guest listens on the given TCP port.
    #[must_use]
    pub fn listens_on_tcp(&self, port: u16) -> bool {
        self.services.iter().any(|s| s.port == port && s.proto == ServiceProto::Tcp)
    }

    /// Whether the guest listens on the given UDP port.
    #[must_use]
    pub fn listens_on_udp(&self, port: u16) -> bool {
        self.services.iter().any(|s| s.port == port && s.proto == ServiceProto::Udp)
    }

    /// The service on `port`/`proto`, if any.
    #[must_use]
    pub fn service(&self, port: u16, proto: ServiceProto) -> Option<&Service> {
        self.services.iter().find(|s| s.port == port && s.proto == proto)
    }

    fn spread(&self, seed: u64, count: u64) -> Vec<u64> {
        // Deterministic pseudo-random page selection (SplitMix64 stream).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
        let mut pages = Vec::with_capacity(count as usize);
        for _ in 0..count.min(self.memory_pages) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pages.push(z % self.memory_pages);
        }
        pages
    }

    /// The (deterministic) set of pages dirtied while handling request
    /// number `request_idx`.
    #[must_use]
    pub fn pages_for_request(&self, request_idx: u64) -> Vec<u64> {
        self.spread(request_idx.wrapping_add(1), self.request_touch_pages)
    }

    /// The (deterministic) set of pages dirtied by an infection with the
    /// given seed.
    #[must_use]
    pub fn pages_for_infection(&self, seed: u64) -> Vec<u64> {
        self.spread(seed ^ 0xFEED_FACE_CAFE_BEEF, self.infection_touch_pages)
    }

    /// The image boot content word for a pseudo-physical page — every clone
    /// of the same image sees identical initial contents.
    #[must_use]
    pub fn boot_content(image_seed: u64, pfn: u64) -> u64 {
        image_seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(pfn.wrapping_mul(0xE703_7ED1_A0B4_28DB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for p in
            [GuestProfile::small(), GuestProfile::windows_server(), GuestProfile::linux_server()]
        {
            assert!(p.memory_pages > 0);
            assert!(p.request_touch_pages <= p.memory_pages);
            assert!(p.infection_touch_pages <= p.memory_pages);
            assert!(!p.services.is_empty());
        }
    }

    #[test]
    fn service_lookup() {
        let p = GuestProfile::windows_server();
        assert!(p.listens_on_tcp(445));
        assert!(p.listens_on_udp(1434));
        assert!(!p.listens_on_udp(445));
        assert!(!p.listens_on_tcp(1434));
        let s = p.service(445, ServiceProto::Tcp).unwrap();
        assert_eq!(s.exploit_depth, 3);
        assert!(p.service(12_345, ServiceProto::Tcp).is_none());
    }

    #[test]
    fn request_pages_deterministic_and_bounded() {
        let p = GuestProfile::small();
        let a = p.pages_for_request(5);
        let b = p.pages_for_request(5);
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, p.request_touch_pages);
        assert!(a.iter().all(|&pfn| pfn < p.memory_pages));
        let c = p.pages_for_request(6);
        assert_ne!(a, c, "different requests touch different pages");
    }

    #[test]
    fn infection_pages_differ_from_request_pages() {
        let p = GuestProfile::small();
        let inf = p.pages_for_infection(1);
        assert_eq!(inf.len() as u64, p.infection_touch_pages);
        assert_ne!(inf[..16], p.pages_for_request(1)[..]);
    }

    #[test]
    fn boot_content_varies_by_image_and_pfn() {
        let a = GuestProfile::boot_content(1, 0);
        let b = GuestProfile::boot_content(1, 1);
        let c = GuestProfile::boot_content(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, GuestProfile::boot_content(1, 0));
    }

    #[test]
    fn touch_counts_clamped_to_memory() {
        let mut p = GuestProfile::small();
        p.memory_pages = 4;
        p.request_touch_pages = 100;
        let pages = p.pages_for_request(0);
        assert_eq!(pages.len(), 4, "clamped to memory size");
    }
}
