//! Clone timing: the per-stage latency record of a provisioning operation.
//!
//! Reproduces the paper's flash-cloning latency-breakdown table: every
//! provisioning call on a [`crate::host::Host`] returns a [`CloneTiming`]
//! listing each stage and its (virtual-time) cost.

use core::fmt;

use potemkin_sim::SimTime;

/// The per-stage timing record of one provisioning operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloneTiming {
    stages: Vec<(&'static str, SimTime)>,
}

impl CloneTiming {
    /// Wraps a stage list.
    #[must_use]
    pub fn new(stages: Vec<(&'static str, SimTime)>) -> Self {
        CloneTiming { stages }
    }

    /// The stages in execution order.
    #[must_use]
    pub fn stages(&self) -> &[(&'static str, SimTime)] {
        &self.stages
    }

    /// Total latency across all stages.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.stages.iter().map(|&(_, t)| t).sum()
    }

    /// The duration of a named stage, if present.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<SimTime> {
        self.stages.iter().find(|&&(n, _)| n == name).map(|&(_, t)| t)
    }

    /// The most expensive stage.
    #[must_use]
    pub fn dominant_stage(&self) -> Option<(&'static str, SimTime)> {
        self.stages.iter().copied().max_by_key(|&(_, t)| t)
    }
}

impl fmt::Display for CloneTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, t) in &self.stages {
            writeln!(f, "  {name:<20} {:>10.3} ms", t.as_millis_f64())?;
        }
        writeln!(f, "  {:<20} {:>10.3} ms", "TOTAL", self.total().as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> CloneTiming {
        CloneTiming::new(vec![
            ("alpha", SimTime::from_millis(10)),
            ("beta", SimTime::from_millis(30)),
            ("gamma", SimTime::from_millis(5)),
        ])
    }

    #[test]
    fn total_sums_stages() {
        assert_eq!(timing().total(), SimTime::from_millis(45));
    }

    #[test]
    fn stage_lookup() {
        let t = timing();
        assert_eq!(t.stage("beta"), Some(SimTime::from_millis(30)));
        assert_eq!(t.stage("nope"), None);
    }

    #[test]
    fn dominant_stage() {
        assert_eq!(timing().dominant_stage(), Some(("beta", SimTime::from_millis(30))));
        assert_eq!(CloneTiming::new(vec![]).dominant_stage(), None);
    }

    #[test]
    fn display_contains_rows_and_total() {
        let s = timing().to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("45.000"));
    }
}
