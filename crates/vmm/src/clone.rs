//! Clone timing: the per-stage latency record of a provisioning operation.
//!
//! Reproduces the paper's flash-cloning latency-breakdown table: every
//! provisioning call on a [`crate::host::Host`] returns a [`CloneTiming`]
//! listing each stage and its (virtual-time) cost.

use core::fmt;

use potemkin_sim::SimTime;

/// The per-stage timing record of one provisioning operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloneTiming {
    stages: Vec<(&'static str, SimTime)>,
}

impl CloneTiming {
    /// Wraps a stage list.
    #[must_use]
    pub fn new(stages: Vec<(&'static str, SimTime)>) -> Self {
        CloneTiming { stages }
    }

    /// The stages in execution order.
    #[must_use]
    pub fn stages(&self) -> &[(&'static str, SimTime)] {
        &self.stages
    }

    /// Total latency across all stages.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.stages.iter().map(|&(_, t)| t).sum()
    }

    /// The duration of a named stage, if present.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<SimTime> {
        self.stages.iter().find(|&&(n, _)| n == name).map(|&(_, t)| t)
    }

    /// The most expensive stage.
    #[must_use]
    pub fn dominant_stage(&self) -> Option<(&'static str, SimTime)> {
        self.stages.iter().copied().max_by_key(|&(_, t)| t)
    }

    /// Appends a stage (used to fold retry backoff into the latency record).
    pub fn push_stage(&mut self, name: &'static str, t: SimTime) {
        self.stages.push((name, t));
    }

    /// Emits this timing into `tracer` as a span tree: one root span named
    /// `root` starting at `start`, with one child span per stage laid
    /// end-to-end in virtual time. A disabled tracer makes this a no-op.
    pub fn emit_spans(
        &self,
        tracer: &mut potemkin_obs::Tracer,
        start: SimTime,
        root: &'static str,
    ) {
        if !tracer.is_enabled() {
            return;
        }
        let span = tracer.begin(start, root);
        let mut at = start;
        for &(name, duration) in &self.stages {
            let stage = tracer.begin(at, name);
            at = at.saturating_add(duration);
            tracer.end(at, stage);
        }
        tracer.end(at, span);
    }
}

impl fmt::Display for CloneTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, t) in &self.stages {
            writeln!(f, "  {name:<20} {:>10.3} ms", t.as_millis_f64())?;
        }
        writeln!(f, "  {:<20} {:>10.3} ms", "TOTAL", self.total().as_millis_f64())
    }
}

/// Bounded retry with exponential backoff and jitter, budgeted in virtual
/// time.
///
/// The policy itself is pure: it never draws randomness. The caller supplies
/// the jitter coordinate (a uniform value in `[0, 1)` from its own seeded
/// RNG), so retry schedules stay deterministic per run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 means "no retries").
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimTime,
    /// Cap on the exponential term.
    pub max_backoff: SimTime,
    /// Fraction of the backoff added as jitter (`0.25` means up to +25%).
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Default policy for flash-clone provisioning: three attempts, 10 ms
    /// base backoff doubling to at most 500 ms, 25% jitter.
    #[must_use]
    pub fn default_clone() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimTime::from_millis(10),
            max_backoff: SimTime::from_millis(500),
            jitter_frac: 0.25,
        }
    }

    /// Backoff to wait after the `attempt`-th failure (1-based), given a
    /// uniform jitter coordinate in `[0, 1)`.
    ///
    /// The exponential term is `base_backoff * 2^(attempt-1)`, capped at
    /// `max_backoff`; jitter adds up to `jitter_frac` of that on top.
    #[must_use]
    pub fn backoff(&self, attempt: u32, jitter_unit: f64) -> SimTime {
        let doublings = attempt.saturating_sub(1).min(32);
        let exp = (self.base_backoff * (1u64 << doublings)).min(self.max_backoff);
        let jitter = exp.mul_f64(self.jitter_frac.max(0.0) * jitter_unit.clamp(0.0, 1.0));
        exp.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> CloneTiming {
        CloneTiming::new(vec![
            ("alpha", SimTime::from_millis(10)),
            ("beta", SimTime::from_millis(30)),
            ("gamma", SimTime::from_millis(5)),
        ])
    }

    #[test]
    fn total_sums_stages() {
        assert_eq!(timing().total(), SimTime::from_millis(45));
    }

    #[test]
    fn stage_lookup() {
        let t = timing();
        assert_eq!(t.stage("beta"), Some(SimTime::from_millis(30)));
        assert_eq!(t.stage("nope"), None);
    }

    #[test]
    fn dominant_stage() {
        assert_eq!(timing().dominant_stage(), Some(("beta", SimTime::from_millis(30))));
        assert_eq!(CloneTiming::new(vec![]).dominant_stage(), None);
    }

    #[test]
    fn display_contains_rows_and_total() {
        let s = timing().to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("45.000"));
    }

    #[test]
    fn push_stage_extends_the_total() {
        let mut t = timing();
        t.push_stage("retry_backoff", SimTime::from_millis(15));
        assert_eq!(t.total(), SimTime::from_millis(60));
        assert_eq!(t.stage("retry_backoff"), Some(SimTime::from_millis(15)));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimTime::from_millis(10),
            max_backoff: SimTime::from_millis(35),
            jitter_frac: 0.0,
        };
        assert_eq!(p.backoff(1, 0.0), SimTime::from_millis(10));
        assert_eq!(p.backoff(2, 0.0), SimTime::from_millis(20));
        assert_eq!(p.backoff(3, 0.0), SimTime::from_millis(35)); // capped
        assert_eq!(p.backoff(100, 0.0), SimTime::from_millis(35)); // no overflow
    }

    #[test]
    fn jitter_adds_a_bounded_fraction() {
        let p = RetryPolicy { jitter_frac: 0.5, ..RetryPolicy::default_clone() };
        let base = p.backoff(1, 0.0);
        let jittered = p.backoff(1, 1.0);
        assert!(jittered > base);
        assert!(jittered <= base.mul_f64(1.5).saturating_add(SimTime::from_nanos(1)));
        // Deterministic in the jitter coordinate.
        assert_eq!(p.backoff(2, 0.37), p.backoff(2, 0.37));
    }
}
