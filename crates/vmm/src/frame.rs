//! The machine frame table.
//!
//! The real Potemkin modified Xen's physical memory management so that many
//! domains could map the same machine frame copy-on-write. The simulation
//! keeps the same data structure: a global table of frames with reference
//! counts and a free list. Page *contents* are represented by a single
//! 64-bit word per frame — enough to verify CoW isolation (a clone's writes
//! must never be visible through the image or a sibling clone) without
//! storing 4 KiB per page.

use core::fmt;

use crate::error::VmmError;

/// Identifier of a machine (host-physical) frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// One live frame in a checkpoint: `(index, refcount, content)`.
pub type LiveFrameEntry = (u64, u32, u64);

/// Frame-table checkpoint parts: `(total, allocs, frees, free-list, live)`.
pub type FrameTableParts<'a> = (u64, u64, u64, &'a [u64], Vec<LiveFrameEntry>);

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn{}", self.0)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct FrameState {
    refcount: u32,
    content: u64,
}

/// The global machine frame table of one host.
///
/// Frames are allocated with refcount 1; sharing a frame (delta
/// virtualization) bumps the count; the frame returns to the free list when
/// the count reaches zero.
///
/// # Examples
///
/// ```
/// use potemkin_vmm::frame::FrameTable;
///
/// let mut ft = FrameTable::new(100);
/// let f = ft.alloc(0xabcd).unwrap();
/// assert_eq!(ft.read(f), 0xabcd);
/// ft.share(f);
/// assert_eq!(ft.refcount(f), 2);
/// ft.release(f);
/// ft.release(f);
/// assert_eq!(ft.free_frames(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct FrameTable {
    frames: Vec<Option<FrameState>>,
    free: Vec<u64>,
    total: u64,
    /// Lifetime counters.
    allocs: u64,
    frees: u64,
}

impl FrameTable {
    /// Creates a table managing `total` frames, all free.
    #[must_use]
    pub fn new(total: u64) -> Self {
        FrameTable {
            frames: Vec::new(),
            // Free list is lazily backed: frames never allocated are
            // implicitly free. `free` holds explicitly freed frame ids.
            free: Vec::new(),
            total,
            allocs: 0,
            frees: 0,
        }
    }

    /// Total frames managed.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently free.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        // Never-touched frames plus explicitly freed ones.
        (self.total - self.frames.len() as u64) + self.free.len() as u64
    }

    /// Frames currently in use.
    #[must_use]
    pub fn used_frames(&self) -> u64 {
        self.total - self.free_frames()
    }

    /// Lifetime allocation count.
    #[must_use]
    pub fn total_allocs(&self) -> u64 {
        self.allocs
    }

    /// Lifetime free count.
    #[must_use]
    pub fn total_frees(&self) -> u64 {
        self.frees
    }

    /// Allocates a frame with the given initial content.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfMemory`] when no frame is free.
    pub fn alloc(&mut self, content: u64) -> Result<FrameId, VmmError> {
        let id = if let Some(id) = self.free.pop() {
            id
        } else if (self.frames.len() as u64) < self.total {
            self.frames.push(None);
            self.frames.len() as u64 - 1
        } else {
            return Err(VmmError::OutOfMemory { requested: 1, free: 0 });
        };
        self.frames[id as usize] = Some(FrameState { refcount: 1, content });
        self.allocs += 1;
        Ok(FrameId(id))
    }

    fn state(&self, frame: FrameId) -> &FrameState {
        self.frames
            .get(frame.0 as usize)
            .and_then(Option::as_ref)
            .expect("frame id must reference a live frame")
    }

    fn state_mut(&mut self, frame: FrameId) -> &mut FrameState {
        self.frames
            .get_mut(frame.0 as usize)
            .and_then(Option::as_mut)
            .expect("frame id must reference a live frame")
    }

    /// Reads the content word of a live frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live (a use-after-free in the caller).
    #[must_use]
    pub fn read(&self, frame: FrameId) -> u64 {
        self.state(frame).content
    }

    /// Writes the content word of a live frame.
    ///
    /// This does *not* perform CoW — callers must only write frames they own
    /// exclusively (the domain layer enforces this via writable bits).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn write(&mut self, frame: FrameId, content: u64) {
        self.state_mut(frame).content = content;
    }

    /// Increments a live frame's reference count (a new sharer).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn share(&mut self, frame: FrameId) {
        self.state_mut(frame).refcount += 1;
    }

    /// The reference count of a live frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    #[must_use]
    pub fn refcount(&self, frame: FrameId) -> u32 {
        self.state(frame).refcount
    }

    /// Whether a frame is shared (refcount > 1).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    #[must_use]
    pub fn is_shared(&self, frame: FrameId) -> bool {
        self.refcount(frame) > 1
    }

    /// Drops one reference; frees the frame when the count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn release(&mut self, frame: FrameId) {
        let state = self.state_mut(frame);
        state.refcount -= 1;
        if state.refcount == 0 {
            self.frames[frame.0 as usize] = None;
            self.free.push(frame.0);
            self.frees += 1;
        }
    }

    /// Checkpoint support: `(total, allocs, frees, free-list, live)` where
    /// `free-list` preserves LIFO order (allocation order after restore must
    /// match the uninterrupted run) and `live` is `(index, refcount,
    /// content)` for every live frame, in index order.
    #[must_use]
    pub fn snapshot_parts(&self) -> FrameTableParts<'_> {
        let live = self
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i as u64, s.refcount, s.content)))
            .collect();
        (self.total, self.allocs, self.frees, &self.free, live)
    }

    /// Checkpoint support: rebuilds a table from parts captured by
    /// [`FrameTable::snapshot_parts`] plus the dense table length. Returns
    /// `None` when an index is out of range.
    #[must_use]
    pub fn from_parts(
        total: u64,
        allocs: u64,
        frees: u64,
        free: Vec<u64>,
        table_len: u64,
        live: &[(u64, u32, u64)],
    ) -> Option<Self> {
        let table_len = usize::try_from(table_len).ok()?;
        if table_len as u64 > total {
            return None;
        }
        let mut frames: Vec<Option<FrameState>> = vec![None; table_len];
        for &(idx, refcount, content) in live {
            let slot = frames.get_mut(usize::try_from(idx).ok()?)?;
            *slot = Some(FrameState { refcount, content });
        }
        if free.iter().any(|&f| f as usize >= table_len) {
            return None;
        }
        Some(FrameTable { frames, free, total, allocs, frees })
    }

    /// Checkpoint support: the dense table length (touched-frame high-water
    /// mark), needed alongside [`FrameTable::snapshot_parts`] to restore.
    #[must_use]
    pub fn table_len(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Copy-on-write: allocates a fresh frame with the same content as
    /// `frame` and drops one reference to the original.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfMemory`] when no frame is free — the
    /// original's refcount is left untouched in that case.
    pub fn cow_copy(&mut self, frame: FrameId) -> Result<FrameId, VmmError> {
        let content = self.read(frame);
        let copy = self.alloc(content)?;
        self.release(frame);
        Ok(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_accounting() {
        let mut ft = FrameTable::new(4);
        assert_eq!(ft.free_frames(), 4);
        let a = ft.alloc(1).unwrap();
        let b = ft.alloc(2).unwrap();
        assert_eq!(ft.used_frames(), 2);
        assert_ne!(a, b);
        ft.release(a);
        assert_eq!(ft.free_frames(), 3);
        ft.release(b);
        assert_eq!(ft.free_frames(), 4);
        assert_eq!(ft.total_allocs(), 2);
        assert_eq!(ft.total_frees(), 2);
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut ft = FrameTable::new(2);
        ft.alloc(0).unwrap();
        ft.alloc(0).unwrap();
        assert!(matches!(ft.alloc(0), Err(VmmError::OutOfMemory { .. })));
    }

    #[test]
    fn freed_frames_are_reused() {
        let mut ft = FrameTable::new(1);
        let a = ft.alloc(10).unwrap();
        ft.release(a);
        let b = ft.alloc(20).unwrap();
        assert_eq!(a, b, "single-frame table must recycle the frame");
        assert_eq!(ft.read(b), 20);
    }

    #[test]
    fn sharing_delays_free() {
        let mut ft = FrameTable::new(1);
        let f = ft.alloc(7).unwrap();
        ft.share(f);
        ft.share(f);
        assert_eq!(ft.refcount(f), 3);
        assert!(ft.is_shared(f));
        ft.release(f);
        ft.release(f);
        assert_eq!(ft.refcount(f), 1);
        assert!(!ft.is_shared(f));
        assert_eq!(ft.free_frames(), 0, "still referenced");
        ft.release(f);
        assert_eq!(ft.free_frames(), 1);
    }

    #[test]
    fn cow_copy_preserves_content_and_drops_ref() {
        let mut ft = FrameTable::new(2);
        let orig = ft.alloc(0x1111).unwrap();
        ft.share(orig); // refcount 2: one image, one clone
        let copy = ft.cow_copy(orig).unwrap();
        assert_ne!(copy, orig);
        assert_eq!(ft.read(copy), 0x1111);
        assert_eq!(ft.refcount(orig), 1, "clone's reference moved to the copy");
        // Writing the copy does not disturb the original.
        ft.write(copy, 0x2222);
        assert_eq!(ft.read(orig), 0x1111);
    }

    #[test]
    fn cow_copy_oom_leaves_refcount_intact() {
        let mut ft = FrameTable::new(1);
        let f = ft.alloc(5).unwrap();
        ft.share(f);
        assert!(matches!(ft.cow_copy(f), Err(VmmError::OutOfMemory { .. })));
        assert_eq!(ft.refcount(f), 2, "failed CoW must not leak a reference");
    }

    #[test]
    fn content_isolated_per_frame() {
        let mut ft = FrameTable::new(10);
        let frames: Vec<FrameId> = (0..10).map(|i| ft.alloc(i * 100).unwrap()).collect();
        for (i, &f) in frames.iter().enumerate() {
            assert_eq!(ft.read(f), i as u64 * 100);
        }
        ft.write(frames[3], 999);
        assert_eq!(ft.read(frames[3]), 999);
        assert_eq!(ft.read(frames[2]), 200);
        assert_eq!(ft.read(frames[4]), 400);
    }

    #[test]
    #[should_panic(expected = "live frame")]
    fn read_after_free_panics() {
        let mut ft = FrameTable::new(1);
        let f = ft.alloc(1).unwrap();
        ft.release(f);
        let _ = ft.read(f);
    }
}
