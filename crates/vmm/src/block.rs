//! Copy-on-write virtual block devices.
//!
//! Potemkin clones share the reference image's disk; a clone's writes go to a
//! private overlay (the same trick as its memory delta virtualization, at
//! block granularity). Block *contents* are modeled as one `u64` per block,
//! like frame contents.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::VmmError;

/// An immutable base disk image shared by all clones of a reference image.
#[derive(Clone, Debug)]
pub struct BaseDisk {
    blocks: Arc<Vec<u64>>,
}

impl BaseDisk {
    /// Creates a base disk of `size` blocks with deterministic content
    /// derived from `seed`.
    #[must_use]
    pub fn generate(size: u64, seed: u64) -> Self {
        let blocks =
            (0..size).map(|i| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i)).collect();
        BaseDisk { blocks: Arc::new(blocks) }
    }

    /// Disk size in blocks.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Checkpoint support: the raw block contents.
    #[must_use]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Checkpoint support: rebuilds a base disk from raw block contents.
    #[must_use]
    pub fn from_blocks(blocks: Vec<u64>) -> Self {
        BaseDisk { blocks: Arc::new(blocks) }
    }

    /// Reads a block.
    pub fn read(&self, block: u64) -> Result<u64, VmmError> {
        self.blocks
            .get(block as usize)
            .copied()
            .ok_or(VmmError::BadBlock { block, size: self.size() })
    }
}

/// A clone's view of a disk: the shared base plus a private write overlay.
///
/// # Examples
///
/// ```
/// use potemkin_vmm::block::{BaseDisk, CowDisk};
///
/// let base = BaseDisk::generate(100, 42);
/// let mut disk = CowDisk::new(base.clone());
/// let orig = disk.read(5).unwrap();
/// disk.write(5, 777).unwrap();
/// assert_eq!(disk.read(5).unwrap(), 777);
/// assert_eq!(base.read(5).unwrap(), orig, "base is never modified");
/// assert_eq!(disk.dirty_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct CowDisk {
    base: BaseDisk,
    overlay: HashMap<u64, u64>,
    reads: u64,
    writes: u64,
}

impl CowDisk {
    /// Creates a CoW view over `base` with an empty overlay.
    #[must_use]
    pub fn new(base: BaseDisk) -> Self {
        CowDisk { base, overlay: HashMap::new(), reads: 0, writes: 0 }
    }

    /// Disk size in blocks.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.base.size()
    }

    /// Reads a block (overlay first, then base).
    pub fn read(&mut self, block: u64) -> Result<u64, VmmError> {
        if block >= self.size() {
            return Err(VmmError::BadBlock { block, size: self.size() });
        }
        self.reads += 1;
        Ok(self
            .overlay
            .get(&block)
            .copied()
            .unwrap_or_else(|| self.base.read(block).expect("bounds checked above")))
    }

    /// Writes a block into the private overlay.
    pub fn write(&mut self, block: u64, content: u64) -> Result<(), VmmError> {
        if block >= self.size() {
            return Err(VmmError::BadBlock { block, size: self.size() });
        }
        self.writes += 1;
        self.overlay.insert(block, content);
        Ok(())
    }

    /// Number of blocks this clone has made private.
    #[must_use]
    pub fn dirty_blocks(&self) -> u64 {
        self.overlay.len() as u64
    }

    /// Discards the private overlay, restoring the pristine base view
    /// (rollback support).
    pub fn clear_overlay(&mut self) {
        self.overlay.clear();
    }

    /// Lifetime read count.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Lifetime write count.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Checkpoint support: `(overlay sorted by block, reads, writes)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (Vec<(u64, u64)>, u64, u64) {
        let mut overlay: Vec<(u64, u64)> = self.overlay.iter().map(|(&b, &c)| (b, c)).collect();
        overlay.sort_unstable();
        (overlay, self.reads, self.writes)
    }

    /// Checkpoint support: rebuilds a CoW view from parts captured by
    /// [`CowDisk::snapshot_parts`] over the given base.
    #[must_use]
    pub fn from_parts(base: BaseDisk, overlay: &[(u64, u64)], reads: u64, writes: u64) -> Self {
        CowDisk { base, overlay: overlay.iter().copied().collect(), reads, writes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_disk_deterministic() {
        let a = BaseDisk::generate(10, 7);
        let b = BaseDisk::generate(10, 7);
        for i in 0..10 {
            assert_eq!(a.read(i).unwrap(), b.read(i).unwrap());
        }
        let c = BaseDisk::generate(10, 8);
        assert_ne!(a.read(0).unwrap(), c.read(0).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        let base = BaseDisk::generate(4, 1);
        assert!(base.read(4).is_err());
        let mut disk = CowDisk::new(base);
        assert!(disk.read(4).is_err());
        assert!(disk.write(4, 0).is_err());
    }

    #[test]
    fn overlay_isolates_clones() {
        let base = BaseDisk::generate(16, 3);
        let mut d1 = CowDisk::new(base.clone());
        let mut d2 = CowDisk::new(base);
        d1.write(3, 111).unwrap();
        d2.write(3, 222).unwrap();
        assert_eq!(d1.read(3).unwrap(), 111);
        assert_eq!(d2.read(3).unwrap(), 222);
        assert_eq!(d1.dirty_blocks(), 1);
        assert_eq!(d2.dirty_blocks(), 1);
    }

    #[test]
    fn unwritten_blocks_read_through() {
        let base = BaseDisk::generate(8, 9);
        let mut d = CowDisk::new(base.clone());
        for i in 0..8 {
            assert_eq!(d.read(i).unwrap(), base.read(i).unwrap());
        }
        assert_eq!(d.dirty_blocks(), 0);
    }

    #[test]
    fn clear_overlay_restores_base_view() {
        let base = BaseDisk::generate(8, 5);
        let mut d = CowDisk::new(base.clone());
        d.write(2, 999).unwrap();
        assert_eq!(d.read(2).unwrap(), 999);
        d.clear_overlay();
        assert_eq!(d.dirty_blocks(), 0);
        assert_eq!(d.read(2).unwrap(), base.read(2).unwrap());
    }

    #[test]
    fn rewrite_same_block_counts_once() {
        let base = BaseDisk::generate(8, 9);
        let mut d = CowDisk::new(base);
        d.write(1, 10).unwrap();
        d.write(1, 20).unwrap();
        assert_eq!(d.dirty_blocks(), 1);
        assert_eq!(d.read(1).unwrap(), 20);
        assert_eq!(d.total_writes(), 2);
    }
}
