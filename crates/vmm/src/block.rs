//! Copy-on-write virtual block devices over the content-addressed chunk
//! store.
//!
//! Potemkin clones share the reference image's disk; a clone's writes go to a
//! private overlay (the same trick as its memory delta virtualization, at
//! block granularity). Block *contents* are modeled as one `u64` per block,
//! like frame contents.
//!
//! [`BaseDisk`] and [`CowDisk`] are thin views over `potemkin-storage`
//! manifests: a base disk is a [`Manifest`] (ordered chunk refs) shared by
//! every clone of the image, a clone disk is an [`OverlayManifest`] (sparse
//! CoW delta) over that base. Identical chunks dedupe farm-wide through the
//! [`SharedChunkStore`], and chunks materialize lazily on first guest read.
//! The only serialization path is the manifest codec —
//! [`BaseDisk::encode_manifest`] / [`BaseDisk::decode_manifest`] and the
//! overlay equivalents — so checkpoints store O(chunks) + O(dirty blocks),
//! never raw block walks.

use std::cell::Cell;
use std::sync::{Arc, Mutex};

use potemkin_snapshot::{SnapReader, SnapWriter, SnapshotError};
use potemkin_storage::{
    Manifest, OverlayManifest, SharedChunkStore, StorageError, DEFAULT_CHUNK_BLOCKS,
};

use crate::error::VmmError;

fn to_bad_block(size: u64) -> impl Fn(StorageError) -> VmmError {
    move |e| match e {
        StorageError::OutOfRange { index, .. } => VmmError::BadBlock { block: index, size },
        // A missing or truncated chunk is store corruption; surface it as
        // the typed block error rather than panicking.
        StorageError::MissingChunk { hash } => VmmError::BadBlock { block: hash, size },
        StorageError::Io { .. } => VmmError::BadBlock { block: u64::MAX, size },
    }
}

/// An immutable base disk image shared by all clones of a reference image:
/// a chunk manifest over a farm-wide [`SharedChunkStore`]. Cloning the
/// handle shares the manifest, so one clone's lazy materialization
/// benefits every other view of the image.
#[derive(Clone, Debug)]
pub struct BaseDisk {
    manifest: Arc<Mutex<Manifest>>,
    store: SharedChunkStore,
}

impl BaseDisk {
    /// Creates a fully lazy base disk of `size` blocks in chunks of
    /// `chunk_blocks`, with deterministic content derived from `seed`,
    /// backed by `store`.
    #[must_use]
    pub fn open(store: &SharedChunkStore, size: u64, chunk_blocks: u64, seed: u64) -> Self {
        BaseDisk {
            manifest: Arc::new(Mutex::new(Manifest::new(size, chunk_blocks, seed))),
            store: store.clone(),
        }
    }

    /// Creates a base disk of `size` blocks with deterministic content
    /// derived from `seed`, over a fresh private in-memory store with the
    /// default chunk size (standalone-use convenience; farm disks share
    /// one store via [`BaseDisk::open`]).
    #[must_use]
    pub fn generate(size: u64, seed: u64) -> Self {
        BaseDisk::open(&SharedChunkStore::new_memory(), size, DEFAULT_CHUNK_BLOCKS, seed)
    }

    fn manifest(&self) -> std::sync::MutexGuard<'_, Manifest> {
        self.manifest.lock().expect("disk manifest lock poisoned")
    }

    /// Disk size in blocks.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.manifest().size_blocks()
    }

    /// Chunk size in blocks.
    #[must_use]
    pub fn chunk_blocks(&self) -> u64 {
        self.manifest().chunk_blocks()
    }

    /// The content seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.manifest().seed()
    }

    /// Chunks faulted into the store so far (late binding: 0 until the
    /// first read).
    #[must_use]
    pub fn materialized_chunks(&self) -> u64 {
        self.manifest().materialized_chunks()
    }

    /// The backing store handle.
    #[must_use]
    pub fn store(&self) -> &SharedChunkStore {
        &self.store
    }

    /// Reads a block, materializing its chunk on first touch.
    pub fn read(&self, block: u64) -> Result<u64, VmmError> {
        let mut m = self.manifest();
        let size = m.size_blocks();
        m.read(&self.store, block).map_err(to_bad_block(size))
    }

    /// Encodes this disk through the manifest section codec: geometry plus
    /// one materialized bit per chunk slot — the only way a base disk is
    /// ever serialized.
    pub fn encode_manifest(&self, w: &mut SnapWriter) {
        self.manifest().encode(w);
    }

    /// Decodes a disk encoded by [`BaseDisk::encode_manifest`] over
    /// `store`, re-putting materialized chunks (dedupe no-ops when the
    /// content is already resident).
    pub fn decode_manifest(
        r: &mut SnapReader,
        store: &SharedChunkStore,
    ) -> Result<Self, SnapshotError> {
        let m = Manifest::decode(r, store)?;
        Ok(BaseDisk { manifest: Arc::new(Mutex::new(m)), store: store.clone() })
    }
}

/// Read/write accounting for one [`CowDisk`], kept in interior cells so
/// reads go through `&self`.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl DiskStats {
    /// Lifetime read count.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Lifetime write count.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }
}

/// A clone's view of a disk: the shared base manifest plus a private write
/// overlay.
///
/// # Examples
///
/// ```
/// use potemkin_vmm::block::{BaseDisk, CowDisk};
///
/// let base = BaseDisk::generate(100, 42);
/// let mut disk = CowDisk::new(base.clone());
/// let orig = disk.read(5).unwrap();
/// disk.write(5, 777).unwrap();
/// assert_eq!(disk.read(5).unwrap(), 777);
/// assert_eq!(base.read(5).unwrap(), orig, "base is never modified");
/// assert_eq!(disk.dirty_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct CowDisk {
    base: BaseDisk,
    overlay: OverlayManifest,
    stats: DiskStats,
}

impl CowDisk {
    /// Creates a CoW view over `base` with an empty overlay.
    #[must_use]
    pub fn new(base: BaseDisk) -> Self {
        CowDisk { base, overlay: OverlayManifest::new(), stats: DiskStats::default() }
    }

    /// Disk size in blocks.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.base.size()
    }

    /// Reads a block (overlay first, then base).
    pub fn read(&self, block: u64) -> Result<u64, VmmError> {
        if block >= self.size() {
            return Err(VmmError::BadBlock { block, size: self.size() });
        }
        self.stats.reads.set(self.stats.reads.get() + 1);
        match self.overlay.get(block) {
            Some(content) => Ok(content),
            None => self.base.read(block),
        }
    }

    /// Writes a block into the private overlay.
    pub fn write(&mut self, block: u64, content: u64) -> Result<(), VmmError> {
        if block >= self.size() {
            return Err(VmmError::BadBlock { block, size: self.size() });
        }
        self.stats.writes.set(self.stats.writes.get() + 1);
        self.overlay.set(block, content);
        Ok(())
    }

    /// Number of blocks this clone has made private.
    #[must_use]
    pub fn dirty_blocks(&self) -> u64 {
        self.overlay.len() as u64
    }

    /// Discards the private overlay, restoring the pristine base view
    /// (rollback support).
    pub fn clear_overlay(&mut self) {
        self.overlay.clear();
    }

    /// Lifetime read count.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.stats.reads()
    }

    /// Lifetime write count.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.stats.writes()
    }

    /// The shared base this view overlays.
    #[must_use]
    pub fn base(&self) -> &BaseDisk {
        &self.base
    }

    /// The private CoW delta.
    #[must_use]
    pub fn overlay(&self) -> &OverlayManifest {
        &self.overlay
    }

    /// Encodes the clone-private state (overlay delta + accounting)
    /// through the overlay manifest codec: O(dirty blocks). The base is
    /// not encoded here — it belongs to the image and restores first.
    pub fn encode_overlay(&self, w: &mut SnapWriter) {
        self.overlay.encode(w);
        w.u64(self.stats.reads());
        w.u64(self.stats.writes());
    }

    /// Decodes clone-private state encoded by [`CowDisk::encode_overlay`]
    /// over the already-restored `base`.
    pub fn decode_overlay(base: BaseDisk, r: &mut SnapReader) -> Result<Self, SnapshotError> {
        let overlay = OverlayManifest::decode(r)?;
        let stats = DiskStats::default();
        stats.reads.set(r.u64()?);
        stats.writes.set(r.u64()?);
        Ok(CowDisk { base, overlay, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_disk_deterministic() {
        let a = BaseDisk::generate(10, 7);
        let b = BaseDisk::generate(10, 7);
        for i in 0..10 {
            assert_eq!(a.read(i).unwrap(), b.read(i).unwrap());
        }
        let c = BaseDisk::generate(10, 8);
        assert_ne!(a.read(0).unwrap(), c.read(0).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        let base = BaseDisk::generate(4, 1);
        assert!(base.read(4).is_err());
        let disk = CowDisk::new(base);
        assert!(disk.read(4).is_err());
        let mut disk = disk;
        assert!(disk.write(4, 0).is_err());
    }

    #[test]
    fn overlay_isolates_clones() {
        let base = BaseDisk::generate(16, 3);
        let mut d1 = CowDisk::new(base.clone());
        let mut d2 = CowDisk::new(base);
        d1.write(3, 111).unwrap();
        d2.write(3, 222).unwrap();
        assert_eq!(d1.read(3).unwrap(), 111);
        assert_eq!(d2.read(3).unwrap(), 222);
        assert_eq!(d1.dirty_blocks(), 1);
        assert_eq!(d2.dirty_blocks(), 1);
    }

    #[test]
    fn unwritten_blocks_read_through() {
        let base = BaseDisk::generate(8, 9);
        let d = CowDisk::new(base.clone());
        for i in 0..8 {
            assert_eq!(d.read(i).unwrap(), base.read(i).unwrap());
        }
        assert_eq!(d.dirty_blocks(), 0);
    }

    #[test]
    fn clear_overlay_restores_base_view() {
        let base = BaseDisk::generate(8, 5);
        let mut d = CowDisk::new(base.clone());
        d.write(2, 999).unwrap();
        assert_eq!(d.read(2).unwrap(), 999);
        d.clear_overlay();
        assert_eq!(d.dirty_blocks(), 0);
        assert_eq!(d.read(2).unwrap(), base.read(2).unwrap());
    }

    #[test]
    fn rewrite_same_block_counts_once() {
        let base = BaseDisk::generate(8, 9);
        let mut d = CowDisk::new(base);
        d.write(1, 10).unwrap();
        d.write(1, 20).unwrap();
        assert_eq!(d.dirty_blocks(), 1);
        assert_eq!(d.read(1).unwrap(), 20);
        assert_eq!(d.total_writes(), 2);
    }

    #[test]
    fn reads_take_shared_reference_and_still_count() {
        let base = BaseDisk::generate(8, 1);
        let d = CowDisk::new(base);
        let r: &CowDisk = &d;
        r.read(0).unwrap();
        r.read(1).unwrap();
        assert_eq!(d.total_reads(), 2);
    }

    #[test]
    fn clones_share_one_manifest_and_materialize_lazily() {
        let store = SharedChunkStore::new_memory();
        let base = BaseDisk::open(&store, 128, 16, 42);
        let d1 = CowDisk::new(base.clone());
        let d2 = CowDisk::new(base.clone());
        assert_eq!(base.materialized_chunks(), 0, "lazy until first read");

        d1.read(0).unwrap();
        assert_eq!(base.materialized_chunks(), 1);
        // d2 reads the same chunk through the shared manifest: no new
        // materialization.
        d2.read(1).unwrap();
        assert_eq!(base.materialized_chunks(), 1);
        assert_eq!(store.stats().materialized, 1);
    }

    #[test]
    fn same_seed_images_dedupe_across_one_store() {
        let store = SharedChunkStore::new_memory();
        let a = BaseDisk::open(&store, 64, 16, 7);
        let b = BaseDisk::open(&store, 64, 16, 7);
        for blk in 0..64 {
            a.read(blk).unwrap();
            b.read(blk).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.resident_chunks, 4);
        assert_eq!(s.dedupe_hits, 4);
        assert!((s.sharing_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn manifest_codec_is_the_one_serialization_path() {
        let store = SharedChunkStore::new_memory();
        let base = BaseDisk::open(&store, 100, 16, 42);
        let mut d = CowDisk::new(base.clone());
        d.read(50).unwrap();
        d.write(3, 33).unwrap();
        d.write(90, 99).unwrap();

        let mut w = SnapWriter::new();
        base.encode_manifest(&mut w);
        d.encode_overlay(&mut w);
        let bytes = w.into_bytes();

        let fresh = SharedChunkStore::new_memory();
        let mut r = SnapReader::new(&bytes, "test");
        let base2 = BaseDisk::decode_manifest(&mut r, &fresh).unwrap();
        let d2 = CowDisk::decode_overlay(base2.clone(), &mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(base2.size(), 100);
        assert_eq!(base2.materialized_chunks(), 1);
        assert_eq!(d2.dirty_blocks(), 2);
        assert_eq!(d2.total_reads(), d.total_reads());
        assert_eq!(d2.total_writes(), d.total_writes());
        for blk in 0..100 {
            assert_eq!(d2.read(blk).unwrap(), d.read(blk).unwrap());
        }
    }
}
