//! Frozen reference images.
//!
//! A reference image is a domain that was booted once, quiesced, and frozen:
//! its memory pages become immutable, reference-counted frames that every
//! flash clone maps copy-on-write, and its disk becomes an immutable base
//! disk. The image holds one reference on each of its frames, so clone
//! destruction can never free image state.

use core::fmt;

use crate::block::BaseDisk;
use crate::frame::FrameId;
use crate::guest::GuestProfile;

/// Identifier of a reference image on a host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageId(pub u64);

impl fmt::Debug for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// A frozen, cloneable snapshot of a booted guest.
#[derive(Clone, Debug)]
pub struct ReferenceImage {
    id: ImageId,
    name: String,
    /// One machine frame per pseudo-physical page; the image owns one
    /// reference on each.
    frames: Vec<FrameId>,
    disk: BaseDisk,
    profile: GuestProfile,
}

impl ReferenceImage {
    /// Assembles an image (called by [`crate::host::Host`]; the host has
    /// already taken the frame references).
    #[must_use]
    pub fn new(
        id: ImageId,
        name: impl Into<String>,
        frames: Vec<FrameId>,
        disk: BaseDisk,
        profile: GuestProfile,
    ) -> Self {
        ReferenceImage { id, name: name.into(), frames, disk, profile }
    }

    /// The image identifier.
    #[must_use]
    pub fn id(&self) -> ImageId {
        self.id
    }

    /// Human-readable image name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The image's memory size in pages.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.frames.len() as u64
    }

    /// The frame backing pseudo-physical page `pfn`.
    #[must_use]
    pub fn frame_at(&self, pfn: u64) -> Option<FrameId> {
        self.frames.get(pfn as usize).copied()
    }

    /// All frames, in pfn order.
    #[must_use]
    pub fn frames(&self) -> &[FrameId] {
        &self.frames
    }

    /// The immutable base disk.
    #[must_use]
    pub fn disk(&self) -> &BaseDisk {
        &self.disk
    }

    /// The guest behaviour profile captured in the image.
    #[must_use]
    pub fn profile(&self) -> &GuestProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    #[test]
    fn image_reports_geometry() {
        let mut ft = FrameTable::new(100);
        let frames: Vec<FrameId> = (0..10).map(|i| ft.alloc(i).unwrap()).collect();
        let img = ReferenceImage::new(
            ImageId(1),
            "test",
            frames.clone(),
            BaseDisk::generate(50, 1),
            GuestProfile::small(),
        );
        assert_eq!(img.pages(), 10);
        assert_eq!(img.frame_at(3), Some(frames[3]));
        assert_eq!(img.frame_at(10), None);
        assert_eq!(img.name(), "test");
        assert_eq!(img.id(), ImageId(1));
        assert_eq!(img.disk().size(), 50);
    }
}
