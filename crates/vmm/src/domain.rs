//! VM domains: identity, lifecycle state, address space, devices.
//!
//! Memory operations that need the host's frame table (reads, CoW writes)
//! live on [`crate::host::Host`]; everything domain-local (state machine,
//! disk, telemetry) lives here.

use core::fmt;
use std::net::Ipv4Addr;

use crate::addrspace::AddressSpace;
use crate::block::CowDisk;
use crate::error::VmmError;
use crate::snapshot::ImageId;

/// Identifier of a domain on a host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u64);

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Lifecycle state of a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainState {
    /// Created but not yet scheduled (between clone and unpause).
    Paused,
    /// Running and able to fault pages.
    Running,
    /// Destroyed; all resources released.
    Destroyed,
}

/// How the domain's memory was materialized — used by memory reports and
/// the clone-strategy ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProvisionKind {
    /// Flash clone: CoW against a reference image (delta virtualization).
    FlashClone,
    /// Eager full copy of the image (no sharing).
    FullCopy,
    /// Booted from scratch (no image involvement).
    ColdBoot,
}

/// A virtual machine domain.
#[derive(Clone, Debug)]
pub struct Domain {
    id: DomainId,
    image: ImageId,
    state: DomainState,
    provision: ProvisionKind,
    space: AddressSpace,
    disk: CowDisk,
    /// The telescope IP address the gateway late-bound to this VM.
    bound_addr: Option<Ipv4Addr>,
    /// CoW write faults taken so far.
    cow_faults: u64,
    /// Memory reads and writes (telemetry).
    reads: u64,
    writes: u64,
    /// Whether an exploit payload has executed in this guest.
    infected: bool,
}

impl Domain {
    /// Assembles a domain (called by [`crate::host::Host`]).
    #[must_use]
    pub fn new(
        id: DomainId,
        image: ImageId,
        provision: ProvisionKind,
        space: AddressSpace,
        disk: CowDisk,
    ) -> Self {
        Domain {
            id,
            image,
            state: DomainState::Paused,
            provision,
            space,
            disk,
            bound_addr: None,
            cow_faults: 0,
            reads: 0,
            writes: 0,
            infected: false,
        }
    }

    /// Checkpoint support: reassembles a domain with every field restored
    /// verbatim (unlike [`Domain::new`], which starts the lifecycle fresh).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot_parts(
        id: DomainId,
        image: ImageId,
        state: DomainState,
        provision: ProvisionKind,
        space: AddressSpace,
        disk: CowDisk,
        bound_addr: Option<Ipv4Addr>,
        cow_faults: u64,
        reads: u64,
        writes: u64,
        infected: bool,
    ) -> Self {
        Domain {
            id,
            image,
            state,
            provision,
            space,
            disk,
            bound_addr,
            cow_faults,
            reads,
            writes,
            infected,
        }
    }

    /// The domain identifier.
    #[must_use]
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The reference image this domain was provisioned from.
    #[must_use]
    pub fn image(&self) -> ImageId {
        self.image
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> DomainState {
        self.state
    }

    /// How the memory was provisioned.
    #[must_use]
    pub fn provision(&self) -> ProvisionKind {
        self.provision
    }

    /// Memory size in pages.
    #[must_use]
    pub fn memory_pages(&self) -> u64 {
        self.space.size()
    }

    /// Pages this domain owns exclusively.
    #[must_use]
    pub fn private_pages(&self) -> u64 {
        self.space.private_pages()
    }

    /// Pages shared read-only with the image or siblings.
    #[must_use]
    pub fn shared_pages(&self) -> u64 {
        self.space.shared_pages()
    }

    /// CoW write faults taken so far.
    #[must_use]
    pub fn cow_faults(&self) -> u64 {
        self.cow_faults
    }

    /// Lifetime (reads, writes) memory-operation counts.
    #[must_use]
    pub fn mem_ops(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// The late-bound external IP address, if the gateway bound one.
    #[must_use]
    pub fn bound_addr(&self) -> Option<Ipv4Addr> {
        self.bound_addr
    }

    /// Binds the external IP address this VM impersonates.
    pub fn bind_addr(&mut self, addr: Ipv4Addr) {
        self.bound_addr = Some(addr);
    }

    /// Whether an exploit payload has executed.
    #[must_use]
    pub fn is_infected(&self) -> bool {
        self.infected
    }

    /// Marks the guest infected.
    pub fn mark_infected(&mut self) {
        self.infected = true;
    }

    /// Clears the guest-visible state after a rollback to the reference
    /// image: infection flag, address binding, and the disk overlay. Memory
    /// remapping is the host's job (it owns the frame table).
    pub fn reset_guest_state(&mut self) {
        self.infected = false;
        self.bound_addr = None;
        self.disk.clear_overlay();
    }

    /// Unpauses the domain.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::BadState`] unless the domain is paused.
    pub fn unpause(&mut self) -> Result<(), VmmError> {
        match self.state {
            DomainState::Paused => {
                self.state = DomainState::Running;
                Ok(())
            }
            _ => Err(VmmError::BadState { domain: self.id, op: "unpause" }),
        }
    }

    /// Pauses the domain.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::BadState`] unless the domain is running.
    pub fn pause(&mut self) -> Result<(), VmmError> {
        match self.state {
            DomainState::Running => {
                self.state = DomainState::Paused;
                Ok(())
            }
            _ => Err(VmmError::BadState { domain: self.id, op: "pause" }),
        }
    }

    /// Marks the domain destroyed (host has already released resources).
    pub fn mark_destroyed(&mut self) {
        self.state = DomainState::Destroyed;
    }

    /// Whether the domain can execute (take faults, answer packets).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.state == DomainState::Running
    }

    /// The CoW disk.
    #[must_use]
    pub fn disk(&self) -> &CowDisk {
        &self.disk
    }

    /// Mutable access to the CoW disk.
    pub fn disk_mut(&mut self) -> &mut CowDisk {
        &mut self.disk
    }

    /// Internal: the address space (used by the host for memory ops).
    pub(crate) fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Internal: mutable address space.
    pub(crate) fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Internal: telemetry hooks for the host's memory path.
    pub(crate) fn note_read(&mut self) {
        self.reads += 1;
    }

    pub(crate) fn note_write(&mut self, faulted: bool) {
        self.writes += 1;
        if faulted {
            self.cow_faults += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrspace::Pte;
    use crate::block::BaseDisk;
    use crate::frame::FrameTable;

    fn make_domain(ft: &mut FrameTable) -> Domain {
        let entries =
            (0..4).map(|i| Pte { frame: ft.alloc(i).unwrap(), writable: false }).collect();
        Domain::new(
            DomainId(1),
            ImageId(0),
            ProvisionKind::FlashClone,
            AddressSpace::from_entries(entries),
            CowDisk::new(BaseDisk::generate(10, 1)),
        )
    }

    #[test]
    fn lifecycle_transitions() {
        let mut ft = FrameTable::new(10);
        let mut d = make_domain(&mut ft);
        assert_eq!(d.state(), DomainState::Paused);
        assert!(d.pause().is_err(), "pause while paused");
        d.unpause().unwrap();
        assert!(d.is_running());
        assert!(d.unpause().is_err(), "double unpause");
        d.pause().unwrap();
        assert_eq!(d.state(), DomainState::Paused);
        d.mark_destroyed();
        assert!(d.unpause().is_err(), "unpause after destroy");
        assert!(!d.is_running());
    }

    #[test]
    fn binding_and_infection_flags() {
        let mut ft = FrameTable::new(10);
        let mut d = make_domain(&mut ft);
        assert_eq!(d.bound_addr(), None);
        d.bind_addr(Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(d.bound_addr(), Some(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(!d.is_infected());
        d.mark_infected();
        assert!(d.is_infected());
    }

    #[test]
    fn page_accounting_starts_all_shared() {
        let mut ft = FrameTable::new(10);
        let d = make_domain(&mut ft);
        assert_eq!(d.memory_pages(), 4);
        assert_eq!(d.private_pages(), 0);
        assert_eq!(d.shared_pages(), 4);
        assert_eq!(d.cow_faults(), 0);
        assert_eq!(d.provision(), ProvisionKind::FlashClone);
    }
}
