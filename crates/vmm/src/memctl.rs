//! Memory control plane: content-hash sharing reports and per-host
//! budgets.
//!
//! Delta virtualization keeps clone memory shared until a write diverges
//! it — but nothing in the paper's mechanism recovers sharing *after*
//! divergence, even though worm payloads write the same bytes into every
//! victim. [`Host::scan_and_merge`] closes that loop with a deterministic
//! content-index pass (the content-based sharing the paper leaves as
//! future work, KSM-style), and the types here carry its accounting: the
//! per-pass [`MergeReport`], the farm-visible [`SharingReport`], and the
//! [`MemoryBudget`] whose typed [`PressureEvent`]s drive the reclaim
//! policies in the gateway.
//!
//! [`Host::scan_and_merge`]: crate::host::Host::scan_and_merge

/// Outcome of one [`Host::scan_and_merge`] pass over a host.
///
/// [`Host::scan_and_merge`]: crate::host::Host::scan_and_merge
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Guest-region page mappings examined.
    pub scanned_pages: u64,
    /// Divergent pages remapped back to a shared frame.
    pub merged_pages: u64,
    /// Machine frames actually freed by the pass.
    pub frames_reclaimed: u64,
}

impl MergeReport {
    /// Folds another pass (or another host's pass) into this report.
    pub fn absorb(&mut self, other: MergeReport) {
        self.scanned_pages += other.scanned_pages;
        self.merged_pages += other.merged_pages;
        self.frames_reclaimed += other.frames_reclaimed;
    }
}

/// A host's logical-vs-physical memory occupancy.
///
/// The sharing ratio is the content-sharing figure of merit: how many
/// pages of guest-visible memory each resident machine frame backs. One
/// domain maps its whole image plus overhead; `ratio() > 1` means frames
/// are doing multiple duty (CoW sharing, content merging).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharingReport {
    /// Pages mapped by live domains (every domain's full address space).
    pub logical_pages: u64,
    /// Machine frames currently in use (images + domain-private).
    pub resident_frames: u64,
}

impl SharingReport {
    /// Logical pages per resident frame (zero when nothing is resident).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.resident_frames == 0 {
            0.0
        } else {
            self.logical_pages as f64 / self.resident_frames as f64
        }
    }

    /// Folds another host's report into this one (farm-wide totals).
    pub fn absorb(&mut self, other: SharingReport) {
        self.logical_pages += other.logical_pages;
        self.resident_frames += other.resident_frames;
    }
}

/// A per-host cap on resident frames, checked before clone placement.
///
/// The budget is a *policy* bound below the physical frame count: it is
/// how the farm holds headroom for CoW faults instead of running hosts to
/// the wall and stalling guests mid-write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    limit_frames: u64,
}

impl MemoryBudget {
    /// A budget allowing at most `limit_frames` resident frames.
    #[must_use]
    pub fn new(limit_frames: u64) -> Self {
        MemoryBudget { limit_frames }
    }

    /// The configured cap.
    #[must_use]
    pub fn limit_frames(&self) -> u64 {
        self.limit_frames
    }

    /// Admits an allocation of `requested_frames` on a host currently
    /// using `used_frames`, or returns the typed pressure event the farm
    /// feeds to its reclaim policy.
    ///
    /// # Errors
    ///
    /// Returns a [`PressureEvent`] when the allocation would exceed the
    /// budget.
    pub fn admit(&self, used_frames: u64, requested_frames: u64) -> Result<(), PressureEvent> {
        if used_frames.saturating_add(requested_frames) <= self.limit_frames {
            Ok(())
        } else {
            Err(PressureEvent { used_frames, requested_frames, limit_frames: self.limit_frames })
        }
    }
}

/// A clone allocation that would exceed a host's [`MemoryBudget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PressureEvent {
    /// Frames the host had resident at the check.
    pub used_frames: u64,
    /// Frames the allocation asked for.
    pub requested_frames: u64,
    /// The budget it would have exceeded.
    pub limit_frames: u64,
}

impl PressureEvent {
    /// Frames the host is over (or would be over) budget.
    #[must_use]
    pub fn overage_frames(&self) -> u64 {
        (self.used_frames + self.requested_frames).saturating_sub(self.limit_frames)
    }
}

impl core::fmt::Display for PressureEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "memory pressure: {} used + {} requested > {} budget",
            self.used_frames, self.requested_frames, self.limit_frames
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_admits_within_and_rejects_over() {
        let b = MemoryBudget::new(100);
        assert_eq!(b.limit_frames(), 100);
        assert!(b.admit(90, 10).is_ok(), "exactly at budget admits");
        let e = b.admit(95, 10).unwrap_err();
        assert_eq!(e.used_frames, 95);
        assert_eq!(e.requested_frames, 10);
        assert_eq!(e.limit_frames, 100);
        assert_eq!(e.overage_frames(), 5);
        assert!(e.to_string().contains("95 used"));
    }

    #[test]
    fn budget_saturates_instead_of_overflowing() {
        let b = MemoryBudget::new(u64::MAX);
        assert!(b.admit(u64::MAX, u64::MAX).is_ok(), "saturating add stays at MAX");
    }

    #[test]
    fn sharing_ratio() {
        let mut r = SharingReport { logical_pages: 200, resident_frames: 100 };
        assert!((r.ratio() - 2.0).abs() < 1e-12);
        r.absorb(SharingReport { logical_pages: 100, resident_frames: 200 });
        assert!((r.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(SharingReport::default().ratio(), 0.0);
    }

    #[test]
    fn merge_report_absorbs() {
        let mut a = MergeReport { scanned_pages: 10, merged_pages: 4, frames_reclaimed: 3 };
        a.absorb(MergeReport { scanned_pages: 5, merged_pages: 1, frames_reclaimed: 1 });
        assert_eq!(a, MergeReport { scanned_pages: 15, merged_pages: 5, frames_reclaimed: 4 });
    }
}
