//! The [`ChunkStore`] trait and its two implementations, plus the shared
//! farm-wide handle.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::StorageError;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Content hash of one chunk: FNV-1a-64 over the chunk's words in
/// little-endian byte order. The hash *is* the chunk's identity — equal
/// content always produces the same hash, which is what makes farm-wide
/// dedupe fall out of a plain map insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkHash(pub u64);

impl ChunkHash {
    /// Hashes a chunk's words.
    #[must_use]
    pub fn of_words(words: &[u64]) -> Self {
        let mut h = FNV_OFFSET;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        ChunkHash(h)
    }
}

impl fmt::Display for ChunkHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Accounting snapshot of a chunk store. Accessor naming mirrors
/// `memctl::ContentIndex` (`sharing_ratio`, `resident`): the chunk store
/// is the disk analogue of frame merging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total `put` calls (logical chunk references stored).
    pub puts: u64,
    /// Puts that found their content already resident (dedupe wins).
    pub dedupe_hits: u64,
    /// Chunks materialized lazily on first guest read.
    pub materialized: u64,
    /// Chunk fetches served (whole-chunk gets and single-word reads).
    pub reads: u64,
    /// Distinct chunks currently resident.
    pub resident_chunks: u64,
    /// Total words currently resident.
    pub resident_words: u64,
}

impl StoreStats {
    /// Logical chunk references per resident chunk — the disk-side
    /// sharing factor, ≥ 1.0 whenever anything is stored.
    #[must_use]
    pub fn sharing_ratio(&self) -> f64 {
        if self.resident_chunks == 0 {
            1.0
        } else {
            self.puts as f64 / self.resident_chunks as f64
        }
    }

    /// Distinct chunks resident (the dedup'd footprint).
    #[must_use]
    pub fn resident(&self) -> u64 {
        self.resident_chunks
    }
}

/// A content-addressed chunk store.
///
/// `put` is idempotent by construction: storing content that is already
/// resident is a dedupe hit and writes nothing (first-write-wins keyed by
/// [`ChunkHash`]). Reads go through `&self` — stores keep their read
/// counters in interior cells so shared handles never need write access
/// to serve a fetch.
pub trait ChunkStore: Send + fmt::Debug {
    /// Stores `words` under their content hash, deduping against resident
    /// content. Returns the hash.
    fn put(&mut self, words: &[u64]) -> Result<ChunkHash, StorageError>;

    /// Fetches a whole chunk.
    fn get(&self, hash: ChunkHash) -> Result<Vec<u64>, StorageError>;

    /// Fetches one word of a chunk.
    fn read_word(&self, hash: ChunkHash, offset: u64) -> Result<u64, StorageError>;

    /// Whether the store holds a chunk with this hash.
    fn contains(&self, hash: ChunkHash) -> bool;

    /// Current accounting.
    fn stats(&self) -> StoreStats;

    /// Records one lazy materialization (called by `Manifest::read` when a
    /// slot flips from `Lazy` to `Stored`).
    fn note_materialized(&mut self);

    /// Overwrites the accounting counters (checkpoint-restore support:
    /// restoring a farm re-puts manifest chunks, then resets the counters
    /// to the values the checkpoint recorded).
    fn set_accounting(&mut self, puts: u64, dedupe_hits: u64, materialized: u64, reads: u64);

    /// Drops every resident chunk and zeroes the accounting.
    fn clear(&mut self);
}

/// The in-memory chunk store — the farm default.
#[derive(Debug, Default)]
pub struct MemoryChunkStore {
    chunks: HashMap<u64, Vec<u64>>,
    resident_words: u64,
    puts: u64,
    dedupe_hits: u64,
    materialized: u64,
    reads: Cell<u64>,
}

impl MemoryChunkStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MemoryChunkStore::default()
    }
}

impl ChunkStore for MemoryChunkStore {
    fn put(&mut self, words: &[u64]) -> Result<ChunkHash, StorageError> {
        let hash = ChunkHash::of_words(words);
        self.puts += 1;
        if self.chunks.contains_key(&hash.0) {
            self.dedupe_hits += 1;
        } else {
            self.resident_words += words.len() as u64;
            self.chunks.insert(hash.0, words.to_vec());
        }
        Ok(hash)
    }

    fn get(&self, hash: ChunkHash) -> Result<Vec<u64>, StorageError> {
        self.reads.set(self.reads.get() + 1);
        self.chunks.get(&hash.0).cloned().ok_or(StorageError::MissingChunk { hash: hash.0 })
    }

    fn read_word(&self, hash: ChunkHash, offset: u64) -> Result<u64, StorageError> {
        self.reads.set(self.reads.get() + 1);
        let chunk = self.chunks.get(&hash.0).ok_or(StorageError::MissingChunk { hash: hash.0 })?;
        chunk
            .get(offset as usize)
            .copied()
            .ok_or(StorageError::OutOfRange { index: offset, size: chunk.len() as u64 })
    }

    fn contains(&self, hash: ChunkHash) -> bool {
        self.chunks.contains_key(&hash.0)
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            puts: self.puts,
            dedupe_hits: self.dedupe_hits,
            materialized: self.materialized,
            reads: self.reads.get(),
            resident_chunks: self.chunks.len() as u64,
            resident_words: self.resident_words,
        }
    }

    fn note_materialized(&mut self) {
        self.materialized += 1;
    }

    fn set_accounting(&mut self, puts: u64, dedupe_hits: u64, materialized: u64, reads: u64) {
        self.puts = puts;
        self.dedupe_hits = dedupe_hits;
        self.materialized = materialized;
        self.reads.set(reads);
    }

    fn clear(&mut self) {
        self.chunks.clear();
        self.resident_words = 0;
        self.set_accounting(0, 0, 0, 0);
    }
}

/// A directory-backed chunk store: one file per chunk, named by its
/// content hash, words as little-endian bytes. The index of resident
/// hashes is kept in memory; content lives on disk.
#[derive(Debug)]
pub struct DirChunkStore {
    root: PathBuf,
    /// hash → word count, mirroring what is on disk.
    index: HashMap<u64, u64>,
    resident_words: u64,
    puts: u64,
    dedupe_hits: u64,
    materialized: u64,
    reads: Cell<u64>,
}

impl DirChunkStore {
    /// Opens (creating if needed) a store rooted at `root`. Starts with an
    /// empty index: this is a scratch store for tooling, not a reopenable
    /// database.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|_| StorageError::Io { context: "storage.dir.create" })?;
        Ok(DirChunkStore {
            root,
            index: HashMap::new(),
            resident_words: 0,
            puts: 0,
            dedupe_hits: 0,
            materialized: 0,
            reads: Cell::new(0),
        })
    }

    fn chunk_path(&self, hash: u64) -> PathBuf {
        self.root.join(format!("{hash:016x}.chunk"))
    }
}

impl ChunkStore for DirChunkStore {
    fn put(&mut self, words: &[u64]) -> Result<ChunkHash, StorageError> {
        let hash = ChunkHash::of_words(words);
        self.puts += 1;
        if self.index.contains_key(&hash.0) {
            self.dedupe_hits += 1;
            return Ok(hash);
        }
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(self.chunk_path(hash.0), &bytes)
            .map_err(|_| StorageError::Io { context: "storage.dir.put" })?;
        self.index.insert(hash.0, words.len() as u64);
        self.resident_words += words.len() as u64;
        Ok(hash)
    }

    fn get(&self, hash: ChunkHash) -> Result<Vec<u64>, StorageError> {
        self.reads.set(self.reads.get() + 1);
        if !self.index.contains_key(&hash.0) {
            return Err(StorageError::MissingChunk { hash: hash.0 });
        }
        let bytes = std::fs::read(self.chunk_path(hash.0))
            .map_err(|_| StorageError::Io { context: "storage.dir.get" })?;
        if bytes.len() % 8 != 0 {
            return Err(StorageError::Io { context: "storage.dir.get" });
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn read_word(&self, hash: ChunkHash, offset: u64) -> Result<u64, StorageError> {
        let chunk = self.get(hash)?;
        chunk
            .get(offset as usize)
            .copied()
            .ok_or(StorageError::OutOfRange { index: offset, size: chunk.len() as u64 })
    }

    fn contains(&self, hash: ChunkHash) -> bool {
        self.index.contains_key(&hash.0)
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            puts: self.puts,
            dedupe_hits: self.dedupe_hits,
            materialized: self.materialized,
            reads: self.reads.get(),
            resident_chunks: self.index.len() as u64,
            resident_words: self.resident_words,
        }
    }

    fn note_materialized(&mut self) {
        self.materialized += 1;
    }

    fn set_accounting(&mut self, puts: u64, dedupe_hits: u64, materialized: u64, reads: u64) {
        self.puts = puts;
        self.dedupe_hits = dedupe_hits;
        self.materialized = materialized;
        self.reads.set(reads);
    }

    fn clear(&mut self) {
        for hash in self.index.keys() {
            let _ = std::fs::remove_file(self.chunk_path(*hash));
        }
        self.index.clear();
        self.resident_words = 0;
        self.set_accounting(0, 0, 0, 0);
    }
}

/// A cloneable, thread-safe handle to one [`ChunkStore`] — the thing a
/// whole farm shares. Every reference image and every VMM host on the farm
/// holds a clone of the same handle, which is what makes dedupe *farm-wide*
/// rather than per-image. The mutex is uncontended in practice: the packet
/// hot path never touches disk content, only experiments and the
/// checkpoint plane do.
#[derive(Clone)]
pub struct SharedChunkStore {
    inner: Arc<Mutex<Box<dyn ChunkStore>>>,
}

impl SharedChunkStore {
    /// A fresh handle over an in-memory store.
    #[must_use]
    pub fn new_memory() -> Self {
        SharedChunkStore::from_store(Box::new(MemoryChunkStore::new()))
    }

    /// A fresh handle over a directory-backed store rooted at `root`.
    pub fn new_dir(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Ok(SharedChunkStore::from_store(Box::new(DirChunkStore::create(root)?)))
    }

    /// Wraps any store implementation.
    #[must_use]
    pub fn from_store(store: Box<dyn ChunkStore>) -> Self {
        SharedChunkStore { inner: Arc::new(Mutex::new(store)) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn ChunkStore>> {
        self.inner.lock().expect("chunk store lock poisoned")
    }

    /// See [`ChunkStore::put`].
    pub fn put(&self, words: &[u64]) -> Result<ChunkHash, StorageError> {
        self.lock().put(words)
    }

    /// See [`ChunkStore::get`].
    pub fn get(&self, hash: ChunkHash) -> Result<Vec<u64>, StorageError> {
        self.lock().get(hash)
    }

    /// See [`ChunkStore::read_word`].
    pub fn read_word(&self, hash: ChunkHash, offset: u64) -> Result<u64, StorageError> {
        self.lock().read_word(hash, offset)
    }

    /// See [`ChunkStore::contains`].
    #[must_use]
    pub fn contains(&self, hash: ChunkHash) -> bool {
        self.lock().contains(hash)
    }

    /// See [`ChunkStore::stats`].
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.lock().stats()
    }

    /// See [`ChunkStore::note_materialized`].
    pub fn note_materialized(&self) {
        self.lock().note_materialized();
    }

    /// See [`ChunkStore::set_accounting`].
    pub fn set_accounting(&self, puts: u64, dedupe_hits: u64, materialized: u64, reads: u64) {
        self.lock().set_accounting(puts, dedupe_hits, materialized, reads);
    }

    /// See [`ChunkStore::clear`].
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Whether two handles refer to the same underlying store.
    #[must_use]
    pub fn same_store(&self, other: &SharedChunkStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for SharedChunkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedChunkStore({:?})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ChunkStore) {
        let a = store.put(&[1, 2, 3]).unwrap();
        let b = store.put(&[1, 2, 3]).unwrap();
        let c = store.put(&[4, 5, 6]).unwrap();
        assert_eq!(a, b, "equal content, equal hash");
        assert_ne!(a, c);
        let s = store.stats();
        assert_eq!(s.puts, 3);
        assert_eq!(s.dedupe_hits, 1);
        assert_eq!(s.resident_chunks, 2, "equal chunks stored once");
        assert_eq!(s.resident_words, 6);
        assert!(s.sharing_ratio() > 1.0);
        assert_eq!(s.resident(), 2);

        assert_eq!(store.get(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(store.read_word(c, 1).unwrap(), 5);
        assert!(store.contains(a));
        assert_eq!(store.get(ChunkHash(0xDEAD)), Err(StorageError::MissingChunk { hash: 0xDEAD }));
        assert_eq!(store.read_word(a, 99), Err(StorageError::OutOfRange { index: 99, size: 3 }));
        assert!(store.stats().reads >= 4);

        store.clear();
        let s = store.stats();
        assert_eq!(s, StoreStats::default());
        assert!(!store.contains(a));
    }

    #[test]
    fn memory_store_contract() {
        let mut store = MemoryChunkStore::new();
        exercise(&mut store);
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!("ptmk_store_{}", std::process::id()));
        let mut store = DirChunkStore::create(&dir).unwrap();
        exercise(&mut store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_is_content_function_of_byte_stream() {
        assert_eq!(ChunkHash::of_words(&[7, 8]), ChunkHash::of_words(&[7, 8]));
        assert_ne!(ChunkHash::of_words(&[7, 8]), ChunkHash::of_words(&[8, 7]));
        assert_ne!(ChunkHash::of_words(&[]), ChunkHash::of_words(&[0]));
    }

    #[test]
    fn shared_handle_clones_alias_one_store() {
        let a = SharedChunkStore::new_memory();
        let b = a.clone();
        assert!(a.same_store(&b));
        assert!(!a.same_store(&SharedChunkStore::new_memory()));
        a.put(&[9, 9]).unwrap();
        assert_eq!(b.stats().resident_chunks, 1);
        b.set_accounting(10, 2, 3, 4);
        let s = a.stats();
        assert_eq!((s.puts, s.dedupe_hits, s.materialized, s.reads), (10, 2, 3, 4));
    }

    #[test]
    fn empty_store_ratio_is_unity() {
        assert_eq!(StoreStats::default().sharing_ratio(), 1.0);
    }
}
