//! Content-addressed chunked block storage — the disk analogue of the
//! memory control plane's `ContentIndex`.
//!
//! Potemkin's delta virtualization applies late binding to *all* resources.
//! For storage that means three things, and this crate provides exactly
//! those three:
//!
//! 1. **One store, keyed by content.** A [`ChunkStore`] holds fixed-size
//!    chunks of block words under their content hash ([`ChunkHash`]).
//!    Putting a chunk whose content is already resident stores nothing —
//!    identical chunks dedupe farm-wide, across every reference image that
//!    shares the store. Two implementations ship: [`MemoryChunkStore`]
//!    (the farm default) and [`DirChunkStore`] (one file per chunk, for
//!    checkpoint-adjacent tooling). [`SharedChunkStore`] is the cloneable
//!    handle a whole farm shares.
//!
//! 2. **Manifests are the only disk representation.** A [`Manifest`] is an
//!    ordered list of chunk references — a reference image. An
//!    [`OverlayManifest`] is a sparse block→content delta — a clone's
//!    private CoW disk. Nothing above this crate ever sees a raw block
//!    vector.
//!
//! 3. **Chunks materialize lazily on first read.** A fresh manifest holds
//!    only [`ChunkRef::Lazy`] slots; the first guest read of a chunk
//!    generates its content, puts it in the store, and flips the slot to
//!    [`ChunkRef::Stored`]. The store counts materializations
//!    ([`StoreStats::materialized`]) so experiments can show late binding
//!    doing its job.
//!
//! Checkpoints benefit directly: a manifest encodes as its geometry plus
//! one *bit* per chunk slot (materialized or not) — O(chunks), not
//! O(blocks) — because chunk content is re-derivable from the manifest
//! seed. Overlays encode as their sorted block walks, O(dirty blocks).
//!
//! Everything here is deterministic: hashes are FNV-1a over little-endian
//! words, overlay iteration is `BTreeMap` order, and no wall-clock or
//! randomness enters anywhere — the farm's byte-identical-digest rule
//! holds chunked or flat, at any worker count.

pub mod error;
pub mod manifest;
pub mod store;

pub use error::StorageError;
pub use manifest::{ChunkRef, Manifest, OverlayManifest, DEFAULT_CHUNK_BLOCKS};
pub use store::{
    ChunkHash, ChunkStore, DirChunkStore, MemoryChunkStore, SharedChunkStore, StoreStats,
};
