//! Typed errors for the chunk-store layer.

use std::fmt;

/// Errors surfaced by chunk stores and manifests.
///
/// Every failure is a value, never a panic: a corrupt store degrades into
/// [`StorageError::MissingChunk`], a bad address into
/// [`StorageError::OutOfRange`], and backing-file trouble in the
/// directory store into [`StorageError::Io`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A manifest referenced a chunk the store does not hold.
    MissingChunk {
        /// Content hash of the missing chunk.
        hash: u64,
    },
    /// A block or word address fell outside the addressed object.
    OutOfRange {
        /// The offending address.
        index: u64,
        /// The object's size (blocks for manifests, words for chunks).
        size: u64,
    },
    /// A directory-backed store could not read or write a backing file.
    Io {
        /// Which operation failed.
        context: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::MissingChunk { hash } => {
                write!(f, "chunk {hash:016x} missing from store")
            }
            StorageError::OutOfRange { index, size } => {
                write!(f, "address {index} out of range (size {size})")
            }
            StorageError::Io { context } => write!(f, "storage I/O failure in {context}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StorageError::MissingChunk { hash: 0xAB }.to_string().contains("00000000000000ab"));
        assert!(StorageError::OutOfRange { index: 9, size: 4 }.to_string().contains("9"));
        assert!(StorageError::Io { context: "storage.dir.put" }.to_string().contains("dir.put"));
    }
}
