//! Manifests: the only public disk representations.
//!
//! A [`Manifest`] is a reference image — an ordered list of chunk
//! references over a [`SharedChunkStore`]. An [`OverlayManifest`] is a
//! clone disk — the sparse CoW delta a clone lays over its image's
//! manifest.
//!
//! Reference-image content in this reproduction is procedurally generated
//! from a seed (the simulated stand-in for a golden image file), so a
//! [`ChunkRef::Lazy`] slot means "not yet faulted in from the golden
//! image". The first read of a lazy slot generates the chunk, puts it in
//! the store (deduping against every other image that already holds the
//! same content), counts one materialization, and flips the slot to
//! [`ChunkRef::Stored`]. That regenerability is also what shrinks
//! checkpoints: a manifest serializes as its geometry plus one
//! materialized bit per slot, never the block contents.

use potemkin_snapshot::{SnapReader, SnapWriter, SnapshotError};

use crate::error::StorageError;
use crate::store::{ChunkHash, SharedChunkStore};

/// Default chunk size in blocks, the farm-config default.
pub const DEFAULT_CHUNK_BLOCKS: u64 = 64;

const CTX: &str = "storage.manifest";

/// One manifest slot: a chunk not yet faulted in, or the content hash of
/// its stored chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkRef {
    /// Not yet materialized — content is still only implied by the seed.
    Lazy,
    /// Materialized: the chunk lives in the store under this hash.
    Stored(ChunkHash),
}

/// An ordered list of chunk references — a reference image's disk.
#[derive(Clone, Debug)]
pub struct Manifest {
    size_blocks: u64,
    chunk_blocks: u64,
    seed: u64,
    slots: Vec<ChunkRef>,
}

impl Manifest {
    /// A fresh, fully lazy manifest of `size_blocks` blocks in chunks of
    /// `chunk_blocks` (clamped to at least 1), with content derived from
    /// `seed`.
    #[must_use]
    pub fn new(size_blocks: u64, chunk_blocks: u64, seed: u64) -> Self {
        let chunk_blocks = chunk_blocks.max(1);
        let chunks = size_blocks.div_ceil(chunk_blocks);
        Manifest { size_blocks, chunk_blocks, seed, slots: vec![ChunkRef::Lazy; chunks as usize] }
    }

    /// The deterministic content word of block `block` under `seed` — the
    /// same formula the flat pre-chunking disk used, so chunked and flat
    /// reads are bit-identical.
    #[must_use]
    pub fn block_content(seed: u64, block: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(block)
    }

    /// Disk size in blocks.
    #[must_use]
    pub fn size_blocks(&self) -> u64 {
        self.size_blocks
    }

    /// Chunk size in blocks.
    #[must_use]
    pub fn chunk_blocks(&self) -> u64 {
        self.chunk_blocks
    }

    /// The content seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of chunk slots.
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Number of slots already materialized into the store.
    #[must_use]
    pub fn materialized_chunks(&self) -> u64 {
        self.slots.iter().filter(|s| matches!(s, ChunkRef::Stored(_))).count() as u64
    }

    /// The slots, in disk order.
    #[must_use]
    pub fn slots(&self) -> &[ChunkRef] {
        &self.slots
    }

    /// Generates the content words of chunk `chunk` (the last chunk may be
    /// partial).
    #[must_use]
    pub fn generate_chunk(&self, chunk: u64) -> Vec<u64> {
        let start = chunk * self.chunk_blocks;
        let end = (start + self.chunk_blocks).min(self.size_blocks);
        (start..end).map(|b| Manifest::block_content(self.seed, b)).collect()
    }

    /// Reads one block, materializing its chunk into `store` on first
    /// touch (counted via the store's `materialized` stat).
    pub fn read(&mut self, store: &SharedChunkStore, block: u64) -> Result<u64, StorageError> {
        if block >= self.size_blocks {
            return Err(StorageError::OutOfRange { index: block, size: self.size_blocks });
        }
        let chunk = block / self.chunk_blocks;
        let offset = block % self.chunk_blocks;
        match self.slots[chunk as usize] {
            ChunkRef::Stored(hash) => store.read_word(hash, offset),
            ChunkRef::Lazy => {
                let words = self.generate_chunk(chunk);
                let content = words[offset as usize];
                let hash = store.put(&words)?;
                store.note_materialized();
                self.slots[chunk as usize] = ChunkRef::Stored(hash);
                Ok(content)
            }
        }
    }

    /// Encodes this manifest: geometry plus one materialized bit per slot.
    /// O(chunks), never O(blocks) — chunk content is re-derivable from the
    /// seed, so hashes are not stored either.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.size_blocks);
        w.u64(self.chunk_blocks);
        w.u64(self.seed);
        w.u64(self.slots.len() as u64);
        for slot in &self.slots {
            w.bool(matches!(slot, ChunkRef::Stored(_)));
        }
    }

    /// Decodes a manifest encoded by [`Manifest::encode`], re-putting each
    /// materialized chunk into `store` (a dedupe no-op when the content is
    /// already resident).
    pub fn decode(r: &mut SnapReader, store: &SharedChunkStore) -> Result<Self, SnapshotError> {
        let bad = || SnapshotError::Decode { context: CTX };
        let size_blocks = r.u64()?;
        let chunk_blocks = r.u64()?;
        if chunk_blocks == 0 {
            return Err(bad());
        }
        let seed = r.u64()?;
        let n_slots = r.u64()?;
        if n_slots != size_blocks.div_ceil(chunk_blocks) {
            return Err(bad());
        }
        let mut m = Manifest { size_blocks, chunk_blocks, seed, slots: Vec::new() };
        m.slots.reserve(n_slots.min(1 << 24) as usize);
        for chunk in 0..n_slots {
            if r.bool()? {
                let hash = store.put(&m.generate_chunk(chunk)).map_err(|_| bad())?;
                m.slots.push(ChunkRef::Stored(hash));
            } else {
                m.slots.push(ChunkRef::Lazy);
            }
        }
        Ok(m)
    }
}

/// A clone disk: the sparse block→content CoW delta over a reference
/// image's manifest. Iteration and encoding are in ascending block order
/// (`BTreeMap`), keeping every serialization deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverlayManifest {
    writes: std::collections::BTreeMap<u64, u64>,
}

impl OverlayManifest {
    /// An empty overlay.
    #[must_use]
    pub fn new() -> Self {
        OverlayManifest::default()
    }

    /// The overlaid content of `block`, if written.
    #[must_use]
    pub fn get(&self, block: u64) -> Option<u64> {
        self.writes.get(&block).copied()
    }

    /// Overlays `content` at `block`.
    pub fn set(&mut self, block: u64, content: u64) {
        self.writes.insert(block, content);
    }

    /// Number of dirty blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether no block has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Discards every write.
    pub fn clear(&mut self) {
        self.writes.clear();
    }

    /// The dirty `(block, content)` pairs in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.writes.iter().map(|(&b, &c)| (b, c))
    }

    /// Encodes the delta: O(dirty blocks).
    pub fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.writes.len() as u64);
        for (block, content) in self.iter() {
            w.u64(block);
            w.u64(content);
        }
    }

    /// Decodes an overlay encoded by [`OverlayManifest::encode`].
    pub fn decode(r: &mut SnapReader) -> Result<Self, SnapshotError> {
        let n = r.u64()?;
        let mut overlay = OverlayManifest::new();
        for _ in 0..n {
            let block = r.u64()?;
            let content = r.u64()?;
            overlay.set(block, content);
        }
        Ok(overlay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_then_stored_on_first_read() {
        let store = SharedChunkStore::new_memory();
        let mut m = Manifest::new(100, 16, 42);
        assert_eq!(m.chunk_count(), 7, "ceil(100/16)");
        assert_eq!(m.materialized_chunks(), 0);
        assert_eq!(store.stats().materialized, 0);

        let v = m.read(&store, 33).unwrap();
        assert_eq!(v, Manifest::block_content(42, 33));
        assert_eq!(m.materialized_chunks(), 1);
        assert_eq!(store.stats().materialized, 1);

        // Second read of the same chunk: no further materialization.
        m.read(&store, 34).unwrap();
        assert_eq!(store.stats().materialized, 1);
    }

    #[test]
    fn reads_match_flat_formula_for_every_chunk_size() {
        for chunk_blocks in [1, 3, 16, 64, 1000] {
            let store = SharedChunkStore::new_memory();
            let mut m = Manifest::new(100, chunk_blocks, 7);
            for b in 0..100 {
                assert_eq!(m.read(&store, b).unwrap(), Manifest::block_content(7, b));
            }
        }
    }

    #[test]
    fn same_seed_manifests_dedupe_in_one_store() {
        let store = SharedChunkStore::new_memory();
        let mut a = Manifest::new(64, 16, 5);
        let mut b = Manifest::new(64, 16, 5);
        for blk in 0..64 {
            a.read(&store, blk).unwrap();
            b.read(&store, blk).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.resident_chunks, 4, "second image stored nothing new");
        assert_eq!(s.dedupe_hits, 4);
        assert_eq!(s.materialized, 8, "both images faulted all their slots");
        assert_eq!(s.sharing_ratio(), 2.0);
    }

    #[test]
    fn out_of_range_read_rejected() {
        let store = SharedChunkStore::new_memory();
        let mut m = Manifest::new(10, 4, 1);
        assert_eq!(m.read(&store, 10), Err(StorageError::OutOfRange { index: 10, size: 10 }));
    }

    #[test]
    fn manifest_codec_round_trips_and_rematerializes() {
        let store = SharedChunkStore::new_memory();
        let mut m = Manifest::new(100, 16, 42);
        m.read(&store, 0).unwrap();
        m.read(&store, 99).unwrap();

        let mut w = SnapWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        // O(chunks): geometry (4 × u64) + one byte per slot.
        assert_eq!(bytes.len(), 32 + 7);

        let fresh = SharedChunkStore::new_memory();
        let mut r = SnapReader::new(&bytes, "test");
        let d = Manifest::decode(&mut r, &fresh).unwrap();
        r.finish().unwrap();
        assert_eq!(d.size_blocks(), 100);
        assert_eq!(d.chunk_blocks(), 16);
        assert_eq!(d.seed(), 42);
        assert_eq!(d.materialized_chunks(), 2);
        assert_eq!(fresh.stats().resident_chunks, 2, "decode re-put the stored chunks");
        assert_eq!(d.slots()[0], m.slots()[0]);
    }

    #[test]
    fn manifest_decode_rejects_bad_geometry() {
        let mut w = SnapWriter::new();
        w.u64(100);
        w.u64(0); // chunk_blocks == 0
        w.u64(1);
        w.u64(0);
        let bytes = w.into_bytes();
        let store = SharedChunkStore::new_memory();
        assert!(Manifest::decode(&mut SnapReader::new(&bytes, "test"), &store).is_err());

        let mut w = SnapWriter::new();
        w.u64(100);
        w.u64(16);
        w.u64(1);
        w.u64(3); // wrong slot count
        let bytes = w.into_bytes();
        assert!(Manifest::decode(&mut SnapReader::new(&bytes, "test"), &store).is_err());
    }

    #[test]
    fn overlay_round_trips_in_block_order() {
        let mut o = OverlayManifest::new();
        o.set(9, 90);
        o.set(2, 20);
        o.set(9, 91); // rewrite: last wins, still one entry
        assert_eq!(o.len(), 2);
        assert_eq!(o.get(9), Some(91));
        assert_eq!(o.get(3), None);
        let pairs: Vec<_> = o.iter().collect();
        assert_eq!(pairs, vec![(2, 20), (9, 91)], "ascending block order");

        let mut w = SnapWriter::new();
        o.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, "test");
        let d = OverlayManifest::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(d, o);

        o.clear();
        assert!(o.is_empty());
    }
}
