//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API this workspace uses: an immutable,
//! cheaply cloneable byte buffer backed by an `Arc<[u8]>`, plus zero-copy
//! sub-slicing. Cloning or slicing shares the allocation, matching the real
//! crate's semantics for the operations we rely on (construction from
//! slices/vectors, deref to `[u8]`, equality, hashing, `slice`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
///
/// The view covers `data[offset..offset + len]`; [`Bytes::slice`] narrows the
/// view without copying the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), offset: 0, len: 0 }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let len = data.len();
        Bytes { data: Arc::from(data), offset: 0, len }
    }

    /// Creates a buffer from a static slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` covering `range`, sharing the underlying
    /// allocation (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds (len {})", self.len);
        Bytes { data: Arc::clone(&self.data), offset: self.offset + start, len: end - start }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_shares_allocation() {
        let a = Bytes::copy_from_slice(b"abcdefgh");
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], b"cdef");
        assert_eq!(mid.len(), 4);
        // Sub-slicing a slice composes offsets.
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], b"de");
        // The views share one allocation: 1 owner + 2 slices.
        assert_eq!(Arc::strong_count(&a.data), 3);
    }

    #[test]
    fn slice_open_ranges_and_equality() {
        let a = Bytes::copy_from_slice(b"wire-payload");
        assert_eq!(&a.slice(5..)[..], b"payload");
        assert_eq!(&a.slice(..4)[..], b"wire");
        assert_eq!(a.slice(..), a);
        assert!(a.slice(3..3).is_empty());
        // A slice equals an independently built buffer with the same bytes
        // and hashes identically through the slice window.
        assert_eq!(a.slice(5..), Bytes::copy_from_slice(b"payload"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::copy_from_slice(b"xy");
        let _ = a.slice(..3);
    }
}
