//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API this workspace uses: an immutable,
//! cheaply cloneable byte buffer backed by an `Arc<[u8]>`. Cloning shares the
//! allocation, matching the real crate's semantics for the operations we rely
//! on (construction from slices/vectors, deref to `[u8]`, equality, hashing).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Creates a buffer from a static slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
