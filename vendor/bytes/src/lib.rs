//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes`/`BytesMut` API this workspace uses: an
//! immutable, cheaply cloneable byte buffer with zero-copy sub-slicing, a
//! mutable builder buffer that freezes into `Bytes` without copying, and a
//! [`BufferPool`] that recycles both the byte storage and the reference-count
//! allocation so a warmed-up packet path performs no heap allocation per
//! buffer. Cloning or slicing shares the allocation, matching the real
//! crate's semantics for the operations we rely on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Shared empty backing so empty buffers never allocate.
fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// Backing storage for [`Bytes`]: either a plain shared slice or a pooled
/// slot whose byte storage (and, when uncontended, its refcount allocation)
/// returns to the owning [`BufferPool`] when the last view drops.
#[derive(Clone)]
enum Data {
    Slice(Arc<[u8]>),
    Pooled(Arc<PooledSlot>),
}

impl Data {
    fn as_full_slice(&self) -> &[u8] {
        match self {
            Data::Slice(data) => data,
            Data::Pooled(slot) => &slot.buf,
        }
    }
}

/// An immutable, reference-counted byte buffer view.
///
/// The view covers `data[offset..offset + len]`; [`Bytes::slice`] narrows the
/// view without copying the underlying allocation.
pub struct Bytes {
    data: Data,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes { data: Data::Slice(empty_arc()), offset: 0, len: 0 }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let len = data.len();
        Bytes { data: Data::Slice(Arc::from(data)), offset: 0, len }
    }

    /// Creates a buffer from a static slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` covering `range`, sharing the underlying
    /// allocation (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds (len {})", self.len);
        Bytes { data: self.data.clone(), offset: self.offset + start, len: end - start }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data.as_full_slice()[self.offset..self.offset + self.len]
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        if matches!(self.data, Data::Pooled(_)) {
            let data = mem::replace(&mut self.data, Data::Slice(empty_arc()));
            if let Data::Pooled(slot) = data {
                // Fast path: we hold the only view, so the whole slot — byte
                // storage and refcount allocation — can go back to the pool
                // intact. Otherwise the Arc drops normally and the last owner
                // recycles just the byte storage via `PooledSlot::drop`.
                if Arc::strong_count(&slot) == 1 {
                    if let Some(pool) = slot.pool.upgrade() {
                        pool.recycle_slot(slot);
                    }
                }
            }
        }
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes { data: self.data.clone(), offset: self.offset, len: self.len }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Data::Slice(Arc::from(v.into_boxed_slice())), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A pooled slot: owned byte storage plus a back-pointer to the pool it
/// should return to. While a [`BytesMut`] holds the slot its `Arc` is
/// uniquely owned; after [`BytesMut::freeze`] the slot is shared read-only
/// among `Bytes` views.
struct PooledSlot {
    buf: Vec<u8>,
    pool: Weak<PoolInner>,
}

impl Drop for PooledSlot {
    fn drop(&mut self) {
        // Fallback recycling when the refcount allocation itself could not be
        // reused (concurrent final drops, or the slot escaped the fast path):
        // at least the byte storage survives.
        if self.buf.capacity() > 0 {
            if let Some(pool) = self.pool.upgrade() {
                pool.recycle_vec(mem::take(&mut self.buf));
            }
        }
    }
}

/// Cumulative counters for a [`BufferPool`].
///
/// Invariant: `acquires == allocated + reused`; a warmed-up pool serves every
/// acquire from a freelist, so `allocated` plateaus at the high-watermark of
/// in-flight buffers while `reused` keeps growing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `acquire` calls.
    pub acquires: u64,
    /// Acquires that had to allocate fresh byte storage.
    pub allocated: u64,
    /// Acquires served from a freelist (no byte-storage allocation).
    pub reused: u64,
    /// Buffers returned to the pool by dropped views.
    pub recycled: u64,
    /// Buffers discarded because the pool was at its idle cap.
    pub released: u64,
}

struct PoolInner {
    /// Idle slots whose refcount allocation is intact — the zero-allocation
    /// reuse path.
    slots: Mutex<Vec<Arc<PooledSlot>>>,
    /// Idle raw byte storage recovered on the fallback path.
    bufs: Mutex<Vec<Vec<u8>>>,
    default_capacity: usize,
    max_idle: usize,
    acquires: AtomicU64,
    allocated: AtomicU64,
    reused: AtomicU64,
    recycled: AtomicU64,
    released: AtomicU64,
}

impl PoolInner {
    fn recycle_slot(&self, slot: Arc<PooledSlot>) {
        let mut slots = self.slots.lock().expect("pool slot freelist poisoned");
        if slots.len() < self.max_idle {
            slots.push(slot);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(slots);
            self.released.fetch_add(1, Ordering::Relaxed);
            // Dropping `slot` here runs `PooledSlot::drop`, which would
            // re-enter `recycle_vec`; neuter the buffer first so the storage
            // is actually freed.
            if let Some(slot) = Arc::into_inner(slot) {
                let mut slot = slot;
                slot.buf = Vec::new();
            }
        }
    }

    fn recycle_vec(&self, buf: Vec<u8>) {
        let mut bufs = self.bufs.lock().expect("pool buf freelist poisoned");
        if bufs.len() < self.max_idle {
            bufs.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.released.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A freelist of reusable byte buffers shared by reference-counted handles.
///
/// `acquire` hands out a [`BytesMut`]; freezing it produces [`Bytes`] views,
/// and when the last view drops the storage returns here. The pool is
/// thread-safe; handles may be dropped on any thread.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Default byte capacity reserved for freshly allocated buffers — sized
    /// for a full Ethernet-MTU packet.
    pub const DEFAULT_CAPACITY: usize = 1600;
    /// Default cap on idle buffers retained per freelist.
    pub const DEFAULT_MAX_IDLE: usize = 4096;

    /// Creates a pool with default capacity and idle cap.
    #[must_use]
    pub fn new() -> BufferPool {
        BufferPool::with_config(Self::DEFAULT_CAPACITY, Self::DEFAULT_MAX_IDLE)
    }

    /// Creates a pool whose fresh buffers reserve `default_capacity` bytes
    /// and whose freelists retain at most `max_idle` idle buffers each.
    #[must_use]
    pub fn with_config(default_capacity: usize, max_idle: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                slots: Mutex::new(Vec::new()),
                bufs: Mutex::new(Vec::new()),
                default_capacity,
                max_idle,
                acquires: AtomicU64::new(0),
                allocated: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                released: AtomicU64::new(0),
            }),
        }
    }

    /// Takes an empty buffer from the pool, reusing storage when available.
    #[must_use]
    pub fn acquire(&self) -> BytesMut {
        let inner = &self.inner;
        inner.acquires.fetch_add(1, Ordering::Relaxed);
        if let Some(mut slot) = inner.slots.lock().expect("pool slot freelist poisoned").pop() {
            inner.reused.fetch_add(1, Ordering::Relaxed);
            Arc::get_mut(&mut slot).expect("idle pooled slot is uniquely owned").buf.clear();
            return BytesMut { slot };
        }
        if let Some(mut buf) = inner.bufs.lock().expect("pool buf freelist poisoned").pop() {
            inner.reused.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            return BytesMut { slot: Arc::new(PooledSlot { buf, pool: Arc::downgrade(inner) }) };
        }
        inner.allocated.fetch_add(1, Ordering::Relaxed);
        BytesMut {
            slot: Arc::new(PooledSlot {
                buf: Vec::with_capacity(inner.default_capacity),
                pool: Arc::downgrade(inner),
            }),
        }
    }

    /// Snapshot of the pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquires: self.inner.acquires.load(Ordering::Relaxed),
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            released: self.inner.released.load(Ordering::Relaxed),
        }
    }

    /// Number of idle buffers currently held across both freelists.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.inner.slots.lock().expect("pool slot freelist poisoned").len()
            + self.inner.bufs.lock().expect("pool buf freelist poisoned").len()
    }
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new()
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool").field("stats", &self.stats()).finish()
    }
}

/// A uniquely owned, mutable byte buffer that freezes into [`Bytes`] without
/// copying. Obtained from [`BufferPool::acquire`] (pooled) or
/// [`BytesMut::with_capacity`] (unpooled).
pub struct BytesMut {
    slot: Arc<PooledSlot>,
}

impl BytesMut {
    /// Creates an unpooled mutable buffer; its storage is freed normally.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            slot: Arc::new(PooledSlot { buf: Vec::with_capacity(capacity), pool: Weak::new() }),
        }
    }

    /// Exclusive access to the underlying `Vec<u8>` for in-place building.
    pub fn as_vec_mut(&mut self) -> &mut Vec<u8> {
        &mut Arc::get_mut(&mut self.slot).expect("BytesMut slot is uniquely owned").buf
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.as_vec_mut().extend_from_slice(data);
    }

    /// Appends one byte.
    pub fn push(&mut self, byte: u8) {
        self.as_vec_mut().push(byte);
    }

    /// Clears the contents, retaining capacity.
    pub fn clear(&mut self) {
        self.as_vec_mut().clear();
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slot.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] view without copying. The
    /// storage returns to its pool when the last view drops.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        let len = self.slot.buf.len();
        Bytes { data: Data::Pooled(self.slot), offset: 0, len }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.slot.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_shares_allocation() {
        let a = Bytes::copy_from_slice(b"abcdefgh");
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], b"cdef");
        assert_eq!(mid.len(), 4);
        // Sub-slicing a slice composes offsets.
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], b"de");
        // The views share one allocation: 1 owner + 2 slices.
        let Data::Slice(arc) = &a.data else { panic!("copy_from_slice backs with a slice") };
        assert_eq!(Arc::strong_count(arc), 3);
    }

    #[test]
    fn slice_open_ranges_and_equality() {
        let a = Bytes::copy_from_slice(b"wire-payload");
        assert_eq!(&a.slice(5..)[..], b"payload");
        assert_eq!(&a.slice(..4)[..], b"wire");
        assert_eq!(a.slice(..), a);
        assert!(a.slice(3..3).is_empty());
        // A slice equals an independently built buffer with the same bytes
        // and hashes identically through the slice window.
        assert_eq!(a.slice(5..), Bytes::copy_from_slice(b"payload"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::copy_from_slice(b"xy");
        let _ = a.slice(..3);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"head");
        m.push(b'-');
        m.as_vec_mut().extend_from_slice(b"tail");
        assert_eq!(&m[..], b"head-tail");
        let b = m.freeze();
        assert_eq!(&b[..], b"head-tail");
        assert_eq!(&b.slice(5..)[..], b"tail");
    }

    #[test]
    fn pool_round_trip_reuses_storage() {
        let pool = BufferPool::with_config(64, 8);
        let mut m = pool.acquire();
        m.extend_from_slice(b"packet-one");
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"packet-one");
        drop(frozen);
        assert_eq!(pool.idle(), 1);

        // The second acquire reuses the first buffer's storage.
        let mut m2 = pool.acquire();
        assert!(m2.is_empty());
        m2.extend_from_slice(b"two");
        assert_eq!(&m2.freeze()[..], b"two");

        let stats = pool.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.acquires, stats.allocated + stats.reused);
        assert_eq!(stats.recycled, 2);
    }

    #[test]
    fn pool_steady_state_stops_allocating() {
        let pool = BufferPool::with_config(32, 8);
        for i in 0..100u8 {
            let mut m = pool.acquire();
            m.extend_from_slice(&[i; 16]);
            let b = m.freeze();
            let view = b.slice(4..8);
            assert_eq!(&view[..], &[i; 4][..]);
        }
        let stats = pool.stats();
        assert_eq!(stats.acquires, 100);
        assert_eq!(stats.allocated, 1, "steady state must reuse one buffer");
        assert_eq!(stats.reused, 99);
    }

    #[test]
    fn shared_views_recycle_on_last_drop() {
        let pool = BufferPool::with_config(32, 8);
        let mut m = pool.acquire();
        m.extend_from_slice(b"shared-wire");
        let whole = m.freeze();
        let part = whole.slice(7..);
        drop(whole);
        // A view is still alive, so nothing is idle yet.
        assert_eq!(pool.idle(), 0);
        assert_eq!(&part[..], b"wire");
        drop(part);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_idle_cap_releases_excess() {
        let pool = BufferPool::with_config(16, 2);
        let all: Vec<Bytes> = (0..4)
            .map(|_| {
                let mut m = pool.acquire();
                m.push(1);
                m.freeze()
            })
            .collect();
        drop(all);
        assert_eq!(pool.idle(), 2);
        let stats = pool.stats();
        assert_eq!(stats.recycled, 2);
        assert_eq!(stats.released, 2);
    }

    #[test]
    fn unpooled_bytes_mut_outlives_missing_pool() {
        let frozen = {
            let pool = BufferPool::with_config(16, 4);
            let mut m = pool.acquire();
            m.extend_from_slice(b"escapee");
            m.freeze()
        };
        // The pool is gone; dropping the view must not panic.
        assert_eq!(&frozen[..], b"escapee");
        drop(frozen);
    }
}
