//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-harness surface this workspace uses — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`, batch
//! sizes, and the `criterion_group!` / `criterion_main!` macros — with a
//! simple wall-clock measurement loop that prints mean per-iteration time.
//! No statistics, plots, or disk output: enough for `cargo bench` to build,
//! run, and report, nothing more.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched setup output is grouped between timings.
///
/// The stub times each routine invocation individually, so the variants only
/// document intent; all behave like `PerIteration`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per timed iteration.
    PerIteration,
    /// Small batches (treated as per-iteration here).
    SmallInput,
    /// Large batches (treated as per-iteration here).
    LargeInput,
}

/// A parameterized benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Bencher {
        Bencher { iterations, elapsed: Duration::ZERO }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh per-iteration input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, group: &str, name: &str) {
        let per_iter = if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX)
        };
        println!("bench {group}/{name}: {per_iter:?}/iter ({} iters)", self.iterations);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs a named benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs a standalone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report("bench", &id.to_string());
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("increments", |b| b.iter(|| count += 1));
        // sample_size(3) -> exactly three timed iterations.
        assert_eq!(count, 3);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::PerIteration);
        });
        group.finish();
    }
}
