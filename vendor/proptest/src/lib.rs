//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`/`boxed`,
//! `any::<T>()` for the integer primitives, integer range strategies, tuple
//! strategies, `collection::vec`, `option::of`, `Just`, weighted
//! `prop_oneof!`, a tiny `[class]{m,n}` regex string strategy, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! corpus; inputs are drawn from a deterministic RNG seeded from the test
//! name, so every run of a given test binary explores the same cases. That
//! keeps failures reproducible, which is what this repository's determinism
//! tests depend on.

pub mod test_runner {
    use std::fmt;

    /// Error raised by a failing `prop_assert*` inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG used to draw test inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary label (typically the test path),
        /// so each property explores a stable, distinct input stream.
        #[must_use]
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label, then mix.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in label.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Draws the next 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Draws a value uniformly below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is negligible for test-input purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: std::rc::Rc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Strategy producing a fixed (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter mapping values through a function.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of same-valued strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < u64::from(*weight) {
                    return arm.sample(rng);
                }
                pick -= u64::from(*weight);
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + rng.below(span as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    if span > u64::MAX as u128 {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span as u64) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 uniform mantissa bits, scaled into [start, end).
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident/$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    }

    /// String strategy from a simplified regex pattern.
    ///
    /// Supports sequences of atoms — literal characters or `[...]` classes
    /// (with `a-z` ranges) — each optionally followed by `{m}` or `{m,n}`.
    /// This covers the patterns used in this repository's tests.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid range char"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");

            // Optional {m} / {m,n} quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier min"),
                        n.trim().parse::<usize>().expect("quantifier max"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("quantifier count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };

            let count =
                if max > min { min + rng.below((max - min + 1) as u64) as usize } else { min };
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy for any value of `T` (see [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns the canonical strategy producing any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count range for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of element-strategy draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Strategy yielding `None` or `Some(inner draw)` with equal odds.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Selects among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the harness) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over `config.cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = crate::strategy::Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = crate::strategy::Strategy::sample(&(1u8..=255), &mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        for _ in 0..100 {
            let s = crate::strategy::Strategy::sample(&"[a-z0-9]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_streams_repeat() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic("repeat");
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(
            xs in crate::collection::vec(any::<u16>(), 1..20),
            pick in prop_oneof![2 => Just(1u8), 1 => 3u8..5],
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert_ne!(pick, 2);
            let doubled: Vec<u32> = xs.iter().map(|&x| u32::from(x) * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len(), "lengths differ");
        }
    }
}
