//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `thread::scope` API surface used by this workspace is provided,
//! implemented on top of `std::thread::scope` (stable since 1.63). Semantics
//! match crossbeam for the success path; a panicking scoped thread propagates
//! through `std::thread::scope` rather than surfacing as an `Err`.

pub mod thread {
    use std::thread as std_thread;

    /// Result type matching crossbeam's `thread::scope` return.
    pub type ScopeResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// mirroring crossbeam's signature (commonly ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs a closure with a thread scope; all spawned threads are joined
    /// before this returns.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_with_results() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_borrows_environment() {
        let mut counter = 0u32;
        crate::thread::scope(|s| {
            let h = s.spawn(|_| 41);
            counter = h.join().unwrap() + 1;
        })
        .unwrap();
        assert_eq!(counter, 42);
    }
}
