//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the API surface used by this workspace is provided: `thread::scope`
//! (on top of `std::thread::scope`, stable since 1.63) and unbounded
//! `channel`s (on top of `std::sync::mpsc`). Semantics match crossbeam for
//! the success path; a panicking scoped thread propagates through
//! `std::thread::scope` rather than surfacing as an `Err`.

pub mod channel {
    //! Multi-producer channels for cross-shard event exchange.
    //!
    //! The subset used by the sharded replay engine: [`unbounded`] channels
    //! with cloneable senders. Unlike real crossbeam the receiver is
    //! single-consumer, which is all the window-barrier merge needs.

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel; clone freely across
    /// worker threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if the receiver was dropped.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the message back when the
        /// receiving half has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when all senders are gone and the queue is
        /// empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns the next queued message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when nothing is queued and
        /// [`TryRecvError::Disconnected`] when all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

pub mod thread {
    use std::thread as std_thread;

    /// Result type matching crossbeam's `thread::scope` return.
    pub type ScopeResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// mirroring crossbeam's signature (commonly ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs a closure with a thread scope; all spawned threads are joined
    /// before this returns.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fans_in_from_scoped_threads() {
        let (tx, rx) = crate::channel::unbounded();
        crate::thread::scope(|s| {
            for w in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(w).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(crate::channel::SendError(9)));
    }

    #[test]
    fn scoped_threads_join_with_results() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_borrows_environment() {
        let mut counter = 0u32;
        crate::thread::scope(|s| {
            let h = s.spawn(|_| 41);
            counter = h.join().unwrap() + 1;
        })
        .unwrap();
        assert_eq!(counter, 42);
    }
}
