//! `potemkin` — command-line driver for the honeyfarm.
//!
//! ```text
//! potemkin replay   [--duration SECS] [--idle SECS] [--servers N]
//!                   [--seed N] [--save-trace FILE] [--load-trace FILE]
//!                   [--save-pcap FILE]
//! potemkin outbreak [--worm codered|slammer|blaster] [--policy reflect|drop|allow]
//!                   [--duration SECS] [--scan-rate R]
//! potemkin demand   [--duration SECS] [--lifetimes S1,S2,...] [--seed N]
//! potemkin clone    [--image small|windows|linux]
//! potemkin snapshot [--out FILE] [--duration SECS] [--cells N] [--workers N]
//!                   [--seed N] [--every-windows N] [--kill-after-windows N]
//! potemkin restore  [--from FILE] [--duration SECS] [--cells N] [--workers N]
//!                   [--seed N] [--every-windows N]
//! potemkin fork     [--from FILE] [--salt N] [--duration SECS] [--cells N]
//!                   [--workers N] [--seed N]
//! potemkin federate [--farms N] [--cells N] [--workers N] [--duration SECS]
//!                   [--seed N] [--window-ms MS] [--shed-after EVENTS]
//!                   [--verify true]
//! potemkin services [--scenario-dir DIR] [--duration SECS] [--cells N]
//!                   [--workers N] [--attackers N] [--seed N]
//!                   [--session-cap N] [--store FILE.jsonl] [--verify true]
//! potemkin storage  [--image small|windows|linux] [--images N] [--clones N]
//!                   [--chunk-blocks N] [--reads N]
//! ```
//!
//! Each subcommand exercises the public library API end to end; the
//! `figures` binary in `potemkin-bench` regenerates the paper's tables.

use std::collections::HashMap;
use std::process::ExitCode;

use potemkin::checkpoint::{
    fork_telescope_checkpointed, recover_snapshot, resume_telescope_checkpointed,
    run_telescope_checkpointed, CheckpointOptions, CheckpointedRun,
};
use potemkin::farm::{FarmConfig, Honeyfarm};
use potemkin::fed::AdmissionConfig;
use potemkin::federation::{run_telescope_federated, FederatedTelescopeConfig};
use potemkin::gateway::policy::PolicyConfig;
use potemkin::interaction::{run_interaction, InteractionConfig};
use potemkin::metrics::{ConcurrencyAnalyzer, Table};
use potemkin::parallel::ShardedTelescopeConfig;
use potemkin::scenario::{run_outbreak, run_telescope, OutbreakConfig, TelescopeConfig};
use potemkin::services::{JsonlStore, ScenarioPack, ServicesConfig};
use potemkin::sim::SimTime;
use potemkin::vmm::guest::GuestProfile;
use potemkin::vmm::Host;
use potemkin::workload::radiation::{RadiationConfig, RadiationModel};
use potemkin::workload::trace::Trace;
use potemkin::workload::worm::WormSpec;
use potemkin::Error;

/// Parsed `--key value` flags plus the subcommand.
struct Args {
    command: String,
    flags: HashMap<String, String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut flags = HashMap::new();
    while let Some(key) = argv.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {key:?}"))?
            .to_string();
        let value = argv.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key, value);
    }
    Ok(Args { command, flags })
}

fn usage() -> String {
    "usage: potemkin \
     <replay|outbreak|demand|clone|snapshot|restore|fork|federate|services|storage> \
     [--flag value ...]\n\
     see `src/main.rs` header for per-command flags"
        .to_string()
}

impl Args {
    fn secs(&self, key: &str, default: u64) -> Result<SimTime, String> {
        match self.flags.get(key) {
            None => Ok(SimTime::from_secs(default)),
            Some(v) => v
                .parse::<u64>()
                .map(SimTime::from_secs)
                .map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn float(&self, key: &str) -> Result<Option<f64>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

fn cmd_replay(args: &Args) -> Result<(), Error> {
    let duration = args.secs("duration", 120)?;
    let idle = args.secs("idle", 60)?;
    let servers = args.num("servers", 1)? as usize;
    let seed = args.num("seed", 2005)?;

    let mut farm = FarmConfig::small_test();
    farm.servers = servers;
    farm.frames_per_server = 1_500_000;
    farm.max_domains_per_server = 4_096;
    farm.gateway.policy.binding_idle_timeout = idle;

    if let Some(path) = args.flags.get("save-trace") {
        let mut model = RadiationModel::new(RadiationConfig::default(), seed);
        let trace = model.generate(duration);
        let mut file = std::fs::File::create(path)?;
        trace.write_to(&mut file)?;
        println!("wrote {} events to {path}", trace.len());
        return Ok(());
    }
    if let Some(path) = args.flags.get("save-pcap") {
        let mut model = RadiationModel::new(RadiationConfig::default(), seed);
        let trace = model.generate(duration);
        let mut file = std::fs::File::create(path)?;
        trace.write_pcap(&mut file)?;
        println!("wrote {} packets to {path} (libpcap, LINKTYPE_RAW)", trace.len());
        return Ok(());
    }

    let result = if let Some(path) = args.flags.get("load-trace") {
        // Replay a saved trace through a hand-driven farm.
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let trace = Trace::read_from(&mut reader)?;
        println!("loaded {} events from {path}", trace.len());
        let mut live_farm = Honeyfarm::new(farm)?;
        let mut last_tick = SimTime::ZERO;
        for event in trace.events() {
            live_farm.inject_external(event.at, event.packet.clone());
            if event.at.saturating_sub(last_tick) >= SimTime::from_secs(1) {
                live_farm.tick(event.at);
                last_tick = event.at;
            }
        }
        println!("\n{}", live_farm.stats());
        return Ok(());
    } else {
        let config = TelescopeConfig::builder(farm, RadiationConfig::default())
            .seed(seed)
            .duration(duration)
            .sample_interval(SimTime::from_secs(5))
            .tick_interval(SimTime::from_secs(1))
            .build()?;
        run_telescope(config)?
    };

    let mut t = Table::new(&["metric", "value"]).with_title("telescope replay");
    t.row_owned(vec!["packets".into(), result.packets.to_string()]);
    t.row_owned(vec!["distinct sources".into(), result.distinct_sources.to_string()]);
    t.row_owned(vec!["addresses touched".into(), result.distinct_destinations.to_string()]);
    t.row_owned(vec!["VMs cloned".into(), result.stats.vms_cloned.to_string()]);
    t.row_owned(vec!["VMs recycled".into(), result.stats.vms_recycled.to_string()]);
    t.row_owned(vec!["peak live VMs".into(), format!("{:.0}", result.peak_live_vms)]);
    t.row_owned(vec!["clone p50".into(), result.stats.clone_latency_p50.to_string()]);
    t.row_owned(vec!["escapes".into(), result.stats.counters.get("escaped").to_string()]);
    println!("{t}");
    Ok(())
}

fn cmd_outbreak(args: &Args) -> Result<(), Error> {
    let duration = args.secs("duration", 40)?;
    let space = "10.1.0.0/24".parse().expect("static prefix");
    let mut worm = match args.str("worm", "codered").as_str() {
        "codered" => WormSpec::code_red(space),
        "slammer" => WormSpec::slammer(space),
        "blaster" => WormSpec::blaster(space),
        other => return Err(Error::Cli(format!("unknown worm {other:?}"))),
    };
    if let Some(rate) = args.float("scan-rate")? {
        if rate <= 0.0 {
            return Err(Error::Cli("--scan-rate must be positive".to_string()));
        }
        worm.scan_rate = rate;
    }
    let policy = match args.str("policy", "reflect").as_str() {
        "reflect" => PolicyConfig::reflect(),
        "drop" => PolicyConfig::drop_all(),
        "allow" => PolicyConfig::allow_all(),
        other => return Err(Error::Cli(format!("unknown policy {other:?}"))),
    };

    let mut farm = FarmConfig::small_test();
    farm.profile = GuestProfile::windows_server();
    farm.gateway.policy = policy;
    farm.gateway.policy.binding_idle_timeout = SimTime::from_secs(3_600);
    farm.worm = Some(worm.clone());
    farm.frames_per_server = 16_000_000;
    farm.max_domains_per_server = 4_096;

    let config = OutbreakConfig::builder(farm)
        .initial_infections(args.num("seeds", 1)? as usize)
        .duration(duration)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(10))
        .build()?;
    let result = run_outbreak(config)?;

    println!("worm: {} ({} probes/s, port {})", worm.name, worm.scan_rate, worm.port);
    println!("t(s)  infected");
    let step = (duration.as_secs() / 20).max(1);
    for (at, v) in result.infected_series.iter() {
        if at.as_secs().is_multiple_of(step) {
            println!("{:>4}  {:>8.0}", at.as_secs(), v);
        }
    }
    println!("\nfinal infected: {}", result.final_infected);
    println!("probes seen:    {}", result.probes);
    println!("escapes:        {}", result.escapes);
    Ok(())
}

fn cmd_demand(args: &Args) -> Result<(), Error> {
    let duration = args.secs("duration", 600)?;
    let seed = args.num("seed", 2005)?;
    let lifetimes: Vec<SimTime> = match args.flags.get("lifetimes") {
        None => vec![1, 5, 30, 60, 300].into_iter().map(SimTime::from_secs).collect(),
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse::<u64>().map(SimTime::from_secs))
            .collect::<Result<_, _>>()
            .map_err(|_| "--lifetimes: comma-separated seconds".to_string())?,
    };

    let mut model = RadiationModel::new(RadiationConfig::default(), seed);
    let trace = model.generate(duration);
    println!(
        "trace: {} packets, {} addresses over {}",
        trace.len(),
        trace.distinct_destinations(),
        duration
    );

    // Group arrivals per destination and derive binding sessions.
    let mut per_dst: HashMap<u32, Vec<SimTime>> = HashMap::new();
    for e in trace.events() {
        per_dst.entry(u32::from(e.packet.dst())).or_default().push(e.at);
    }
    let mut t = Table::new(&["recycle time", "peak VMs", "mean VMs"])
        .with_title("VM demand vs. recycle time");
    for lifetime in lifetimes {
        let mut analyzer = ConcurrencyAnalyzer::new();
        for times in per_dst.values() {
            let mut start = times[0];
            let mut last = times[0];
            for &at in &times[1..] {
                if at.saturating_sub(last) >= lifetime {
                    analyzer.record(start, last + lifetime - start);
                    start = at;
                }
                last = at;
            }
            analyzer.record(start, last + lifetime - start);
        }
        let stats = analyzer.analyze();
        t.row_owned(vec![
            lifetime.to_string(),
            stats.peak.to_string(),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_clone(args: &Args) -> Result<(), Error> {
    let profile = match args.str("image", "windows").as_str() {
        "small" => GuestProfile::small(),
        "windows" => GuestProfile::windows_server(),
        "linux" => GuestProfile::linux_server(),
        other => return Err(Error::Cli(format!("unknown image {other:?}"))),
    };
    let pages = profile.memory_pages;
    let mut host = Host::new(4 * pages + 8_192);
    let image = host.create_reference_image("cli", profile)?;
    let (_, flash) = host.flash_clone(image)?;
    let (_, full) = host.full_copy_clone(image)?;
    let (_, boot) = host.cold_boot(image)?;
    println!("image: {pages} pages ({} MiB)\n", pages * 4 / 1024);
    println!("flash clone breakdown:\n{flash}");
    println!(
        "totals: flash {} | full copy {} | cold boot {}",
        flash.total(),
        full.total(),
        boot.total()
    );
    Ok(())
}

/// The checkpoint commands all replay the same sharded telescope scenario;
/// the deterministic fields (cells, window, seed, duration) must match
/// between `snapshot` and a later `restore`/`fork` — the snapshot's config
/// fingerprint enforces that.
fn checkpoint_scenario(args: &Args) -> Result<ShardedTelescopeConfig, Error> {
    let mut farm = FarmConfig::small_test();
    farm.servers = args.num("servers", 2)? as usize;
    farm.frames_per_server = 262_144;
    farm.max_domains_per_server = 4_096;
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(30));
    farm.worm = Some(WormSpec::code_red("10.1.8.0/22".parse().expect("static prefix")));
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(args.num("seed", 2005)?)
        .duration(args.secs("duration", 30)?)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()?;
    Ok(ShardedTelescopeConfig::builder(base)
        .cells(args.num("cells", 4)? as usize)
        .window(SimTime::from_millis(args.num("window-ms", 500)?))
        .seed_infections(1)
        .build()?)
}

fn checkpoint_options(args: &Args, path: String) -> Result<CheckpointOptions, Error> {
    let mut options = CheckpointOptions::new(path);
    options.every_windows = args.num("every-windows", 4)?;
    if let Some(kill) = args.flags.get("kill-after-windows") {
        let n = kill
            .parse::<u64>()
            .map_err(|_| Error::Cli(format!("--kill-after-windows: bad number {kill:?}")))?;
        options.stop_after_windows = Some(n);
    }
    Ok(options)
}

fn print_checkpointed_run(run: &CheckpointedRun) {
    let r = &run.result;
    let c = &run.checkpoints;
    let mut t = Table::new(&["metric", "value"]).with_title("checkpointed sharded replay");
    t.row_owned(vec!["packets".into(), r.packets.to_string()]);
    t.row_owned(vec!["cross-cell packets".into(), r.cross_cell_packets.to_string()]);
    t.row_owned(vec!["final infected".into(), r.final_infected.to_string()]);
    t.row_owned(vec!["peak live VMs".into(), format!("{:.0}", r.peak_live_vms)]);
    t.row_owned(vec!["windows executed".into(), r.engine.windows.to_string()]);
    t.row_owned(vec!["checkpoints written".into(), c.written.to_string()]);
    t.row_owned(vec!["checkpoints skipped".into(), c.skipped.to_string()]);
    t.row_owned(vec!["last snapshot bytes".into(), c.last_snapshot_bytes.to_string()]);
    t.row_owned(vec!["last digest".into(), format!("{:#018x}", c.last_digest)]);
    t.row_owned(vec!["interrupted".into(), c.interrupted.to_string()]);
    println!("{t}");
}

fn cmd_snapshot(args: &Args) -> Result<(), Error> {
    let config = checkpoint_scenario(args)?;
    let workers = args.num("workers", 2)? as usize;
    let options = checkpoint_options(args, args.str("out", "potemkin.snap"))?;
    let run = run_telescope_checkpointed(&config, workers, &options)?;
    if run.checkpoints.interrupted {
        println!(
            "run killed at window barrier {} (checkpoint on disk: {})",
            run.result.engine.windows,
            options.path.display()
        );
    }
    print_checkpointed_run(&run);
    Ok(())
}

fn cmd_restore(args: &Args) -> Result<(), Error> {
    let config = checkpoint_scenario(args)?;
    let workers = args.num("workers", 2)? as usize;
    let path = args.str("from", "potemkin.snap");
    let (snapshot, fell_back) =
        recover_snapshot(std::path::Path::new(&path)).map_err(potemkin::Error::from)?;
    if fell_back {
        println!("{path}: failed validation, fell back to {path}.prev");
    }
    let options = checkpoint_options(args, path)?;
    let run = resume_telescope_checkpointed(&config, workers, &snapshot, &options)?;
    print_checkpointed_run(&run);
    Ok(())
}

fn cmd_fork(args: &Args) -> Result<(), Error> {
    let config = checkpoint_scenario(args)?;
    let workers = args.num("workers", 2)? as usize;
    let salt = args.num("salt", 1)?;
    let path = args.str("from", "potemkin.snap");
    let (snapshot, fell_back) =
        recover_snapshot(std::path::Path::new(&path)).map_err(potemkin::Error::from)?;
    if fell_back {
        println!("{path}: failed validation, fell back to {path}.prev");
    }
    // The fork writes its own checkpoint chain so it can't clobber the
    // branch point it came from.
    let options = checkpoint_options(args, format!("{path}.fork{salt}"))?;
    let run = fork_telescope_checkpointed(&config, workers, &snapshot, salt, &options)?;
    println!("forked from {path} with salt {salt} (what-if branch)");
    print_checkpointed_run(&run);
    Ok(())
}

/// Runs the same telescope replay as a federation of N member farms
/// behind the BGP-style routing tier; with `--verify true` it re-runs the
/// scenario as a single farm and checks the merged reports agree.
fn cmd_federate(args: &Args) -> Result<(), Error> {
    let farms = args.num("farms", 4)? as usize;
    let cells = args.num("cells", 8)? as usize;
    let workers = args.num("workers", 2)? as usize;

    let mut farm = FarmConfig::small_test();
    farm.frames_per_server = 262_144;
    farm.max_domains_per_server = 4_096;
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
    // The worm targets the whole monitored range, so reflected probes
    // cross farm boundaries and exercise the GRE transit path.
    farm.worm = Some(WormSpec::code_red(RadiationConfig::default().telescope));
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(args.num("seed", 2005)?)
        .duration(args.secs("duration", 10)?)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()?;
    let mut builder = FederatedTelescopeConfig::builder(base)
        .farms(farms)
        .cells(cells)
        .window(SimTime::from_millis(args.num("window-ms", 500)?))
        .seed_infections(2);
    if let Some(events) = args.flags.get("shed-after") {
        let n = events
            .parse::<u64>()
            .map_err(|_| Error::Cli(format!("--shed-after: bad number {events:?}")))?;
        builder = builder.admission(AdmissionConfig::shed_after(n));
    }
    let config = builder.build()?;
    let result = run_telescope_federated(&config, workers)?;

    let merged = &result.merged;
    let fed = &result.federation;
    let mut t = Table::new(&["metric", "value"]).with_title("federated telescope replay");
    t.row_owned(vec!["farms".into(), fed.farms.to_string()]);
    t.row_owned(vec!["cells".into(), fed.cells.to_string()]);
    t.row_owned(vec!["monitored addresses".into(), fed.monitored_addresses.to_string()]);
    t.row_owned(vec!["advertised routes".into(), fed.advertised_routes.to_string()]);
    t.row_owned(vec!["packets".into(), merged.packets.to_string()]);
    t.row_owned(vec!["cross-cell packets".into(), merged.cross_cell_packets.to_string()]);
    t.row_owned(vec!["cross-farm packets".into(), fed.cross_farm_packets.to_string()]);
    t.row_owned(vec!["shed packets".into(), fed.shed_packets.to_string()]);
    t.row_owned(vec!["route drops".into(), fed.route_drops.to_string()]);
    t.row_owned(vec!["final infected".into(), merged.final_infected.to_string()]);
    t.row_owned(vec!["peak live VMs".into(), format!("{:.0}", merged.peak_live_vms)]);
    t.row_owned(vec!["escapes".into(), merged.degradation.escaped.to_string()]);
    println!("{t}");

    let mut links = Table::new(&["farm", "prefix", "uplink pkts", "downlink pkts", "shed"])
        .with_title("per-farm links");
    for link in &fed.per_farm {
        links.row_owned(vec![
            link.farm.to_string(),
            link.prefix.to_string(),
            link.uplink_packets.to_string(),
            link.downlink_packets.to_string(),
            link.shed_packets.to_string(),
        ]);
    }
    println!("{links}");

    if args.str("verify", "false") == "true" {
        let mut reference = config.clone();
        reference.farms = 1;
        let single = run_telescope_federated(&reference, 1)?;
        let fingerprint = |r: &potemkin::federation::FederatedTelescopeResult| {
            format!(
                "{}|{}|{}|{}|{}",
                r.merged.degradation.canonical_string(),
                r.merged.stats.counters.get("packets_in"),
                r.merged.final_infected,
                r.merged.engine.remote_messages,
                r.federation.shed_packets,
            )
        };
        if fingerprint(&single) == fingerprint(&result) {
            println!("verify: single-farm reference matches ({farms} farms ≡ 1 farm)");
        } else {
            return Err(Error::Cli(format!(
                "verify FAILED: {farms}-farm report diverged from the single-farm reference"
            )));
        }
    }
    Ok(())
}

/// Loads every `*.json` scenario in `dir` (sorted by file name for a
/// deterministic pack order) and runs the scenario-driven interaction
/// replay; with `--store FILE.jsonl` every captured session transcript
/// is exported one JSON object per line.
fn cmd_services(args: &Args) -> Result<(), Error> {
    let dir = args.str("scenario-dir", "examples/scenarios");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(Error::Cli(format!("no *.json scenarios in {dir:?}")));
    }
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        sources.push(std::fs::read_to_string(path)?);
    }
    let pack = ScenarioPack::parse_many(&sources)
        .map_err(|e| Error::Cli(format!("scenario pack in {dir:?}: {e}")))?;
    println!(
        "loaded {} scenarios from {dir}: {}",
        pack.scenarios().len(),
        pack.scenarios().iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    let mut builder = InteractionConfig::builder(ServicesConfig::new(pack))
        .duration(args.secs("duration", 30)?)
        .cells(args.num("cells", 4)? as usize)
        .attackers_per_scenario(args.num("attackers", 4)? as usize)
        .seed(args.num("seed", 2005)?);
    if let Some(cap) = args.flags.get("session-cap") {
        let n = cap
            .parse::<usize>()
            .map_err(|_| Error::Cli(format!("--session-cap: bad number {cap:?}")))?;
        builder = builder.session_cap(Some(n));
    }
    let config = builder.build()?;
    let workers = args.num("workers", 2)? as usize;
    let result = run_interaction(&config, workers)?;

    let counters = &result.merged.stats.counters;
    let mut t = Table::new(&["metric", "value"]).with_title("interaction services replay");
    t.row_owned(vec!["attackers".into(), result.attackers.to_string()]);
    t.row_owned(vec!["drive requests".into(), result.drive_requests.to_string()]);
    t.row_owned(vec!["drives completed".into(), result.drive_completed.to_string()]);
    t.row_owned(vec!["drives aborted".into(), result.drive_aborted.to_string()]);
    t.row_owned(vec!["sessions opened".into(), counters.get("svc_sessions_opened").to_string()]);
    t.row_owned(vec![
        "sessions rejected".into(),
        counters.get("svc_sessions_rejected").to_string(),
    ]);
    t.row_owned(vec![
        "payloads captured".into(),
        counters.get("svc_payloads_captured").to_string(),
    ]);
    t.row_owned(vec!["stalls".into(), counters.get("svc_stalls").to_string()]);
    t.row_owned(vec!["unclaimed requests".into(), result.svc_unclaimed.to_string()]);
    t.row_owned(vec!["transcripts".into(), result.records.len().to_string()]);
    println!("{t}");

    let mut fidelity =
        Table::new(&["scenario", "sessions", "rounds", "payloads", "stalls", "completions"])
            .with_title("per-scenario fidelity");
    for m in &result.scenarios {
        fidelity.row_owned(vec![
            m.scenario.clone(),
            m.sessions.to_string(),
            m.rounds.to_string(),
            m.payloads.to_string(),
            m.stalls.to_string(),
            m.completions.to_string(),
        ]);
    }
    println!("{fidelity}");

    if let Some(path) = args.flags.get("store") {
        let mut store = JsonlStore::create(std::path::Path::new(path))?;
        result.export_sessions(&mut store);
        store.flush()?;
        println!("wrote {} session transcripts to {path}", store.written());
    }

    if args.str("verify", "false") == "true" {
        let reference = run_interaction(&config, 1)?;
        if reference.canonical_summary() == result.canonical_summary() {
            println!("verify: serial reference matches ({workers} workers ≡ 1 worker)");
        } else {
            return Err(Error::Cli(format!(
                "verify FAILED: {workers}-worker report diverged from the serial reference"
            )));
        }
    }
    Ok(())
}

/// Builds N same-content reference images over one farm-wide chunk store,
/// flash-clones guests off the first, drives a deterministic read pattern,
/// and prints the store's dedupe / lazy-materialization accounting plus
/// the manifest-checkpoint size against the flat O(disk) walk it replaced.
fn cmd_storage(args: &Args) -> Result<(), Error> {
    let profile = match args.str("image", "small").as_str() {
        "small" => GuestProfile::small(),
        "windows" => GuestProfile::windows_server(),
        "linux" => GuestProfile::linux_server(),
        other => return Err(Error::Cli(format!("unknown image {other:?}"))),
    };
    let images = args.num("images", 3)?.max(1);
    let clones = args.num("clones", 4)?.max(1) as usize;
    let chunk_blocks = args.num("chunk-blocks", 64)?.max(1);
    let reads = args.num("reads", profile.disk_blocks / 4)?.min(profile.disk_blocks);

    let store = potemkin::vmm::SharedChunkStore::new_memory();
    let frames = images * profile.memory_pages + clones as u64 * 4_096 + 8_192;
    let mut host = Host::new(frames)
        .with_max_domains(clones.max(16))
        .with_chunk_store(store.clone())
        .with_disk_chunk_blocks(chunk_blocks);
    let mut ids = Vec::new();
    for i in 0..images {
        ids.push(host.create_reference_image(&format!("golden-{i}"), profile.clone())?);
    }
    let mut vms = Vec::new();
    for i in 0..clones {
        let (vm, _) = host.flash_clone(ids[i % ids.len()])?;
        vms.push(vm);
    }
    let before = store.stats();
    let mut materialize_time = SimTime::ZERO;
    for &vm in &vms {
        for block in 0..reads {
            let (_, t) = host.read_block(vm, block)?;
            materialize_time = materialize_time.saturating_add(t);
        }
    }
    let after = store.stats();

    let chunk_count = profile.disk_blocks.div_ceil(chunk_blocks);
    let manifest_bytes = images * (4 * 8 + chunk_count);
    let flat_bytes = images * 8 * profile.disk_blocks;
    let mut t = Table::new(&["metric", "value"]).with_title("content-addressed chunk store");
    t.row_owned(vec!["images".into(), images.to_string()]);
    t.row_owned(vec!["clones".into(), clones.to_string()]);
    t.row_owned(vec!["chunk blocks".into(), chunk_blocks.to_string()]);
    t.row_owned(vec!["chunks per image".into(), chunk_count.to_string()]);
    t.row_owned(vec!["materialized before reads".into(), before.materialized.to_string()]);
    t.row_owned(vec!["materialized after reads".into(), after.materialized.to_string()]);
    t.row_owned(vec!["puts".into(), after.puts.to_string()]);
    t.row_owned(vec!["dedupe hits".into(), after.dedupe_hits.to_string()]);
    t.row_owned(vec!["resident chunks".into(), after.resident().to_string()]);
    t.row_owned(vec!["sharing ratio".into(), format!("{:.2}x", after.sharing_ratio())]);
    t.row_owned(vec!["materialize time".into(), materialize_time.to_string()]);
    t.row_owned(vec!["checkpoint disk sections".into(), format!("{manifest_bytes} B")]);
    t.row_owned(vec![
        "flat block walk (replaced)".into(),
        format!("{flat_bytes} B ({:.0}x larger)", flat_bytes as f64 / manifest_bytes as f64),
    ]);
    println!("{t}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "replay" => cmd_replay(&args),
        "outbreak" => cmd_outbreak(&args),
        "demand" => cmd_demand(&args),
        "clone" => cmd_clone(&args),
        "snapshot" => cmd_snapshot(&args),
        "restore" => cmd_restore(&args),
        "fork" => cmd_fork(&args),
        "federate" => cmd_federate(&args),
        "services" => cmd_services(&args),
        "storage" => cmd_storage(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(Error::Cli(format!("unknown command {other:?}\n{}", usage()))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
