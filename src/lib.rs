//! Potemkin virtual honeyfarm — umbrella crate.
//!
//! A from-scratch Rust reproduction of *"Scalability, Fidelity, and
//! Containment in the Potemkin Virtual Honeyfarm"* (Vrable et al., SOSP
//! 2005). This crate re-exports the workspace's public API under one roof;
//! see the README for the architecture tour and EXPERIMENTS.md for the
//! reproduced evaluation.
//!
//! * [`sim`] — deterministic discrete-event substrate.
//! * [`net`] — packet formats, prefixes, flows, GRE, DNS.
//! * [`metrics`] — counters, histograms, time series, Little's-law
//!   analysis.
//! * [`vmm`] — the simulated VMM: flash cloning + delta virtualization.
//! * [`gateway`] — the gateway router: late binding + containment policy.
//! * [`workload`] — telescope radiation, worm models, exploit dialogues.
//! * [`services`] — the interaction plane: protocol detection, the
//!   declarative scenario DSL, session capture; [`interaction`] — the
//!   scenario-driven attacker replay driver.
//! * [`json`] — the shared dependency-free JSON parser.
//! * [`farm`] — the controller composing all of the above.
//! * [`fed`] — the federation routing tier (BGP-style prefix routes, GRE
//!   transit); [`federation`] — the federated multi-farm driver.
//!
//! # Examples
//!
//! ```
//! use potemkin::farm::{FarmConfig, Honeyfarm};
//! use potemkin::net::PacketBuilder;
//! use potemkin::sim::SimTime;
//! use std::net::Ipv4Addr;
//!
//! let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
//! let probe = PacketBuilder::new(Ipv4Addr::new(6, 6, 6, 6), Ipv4Addr::new(10, 1, 0, 7))
//!     .tcp_syn(4444, 445);
//! farm.inject_external(SimTime::ZERO, probe);
//! assert_eq!(farm.live_vms(), 1);
//! ```

pub use potemkin_core as core_api;
pub use potemkin_core::baseline;
pub use potemkin_core::checkpoint;
pub use potemkin_core::farm;
pub use potemkin_core::federation;
pub use potemkin_core::parallel;
pub use potemkin_core::report;
pub use potemkin_core::scenario;
pub use potemkin_core::services as interaction;
pub use potemkin_core::{ConfigError, Error};
pub use potemkin_federation as fed;
pub use potemkin_gateway as gateway;
pub use potemkin_json as json;
pub use potemkin_metrics as metrics;
pub use potemkin_net as net;
pub use potemkin_obs as obs;
pub use potemkin_services as services;
pub use potemkin_sim as sim;
pub use potemkin_snapshot as snapshot;
pub use potemkin_vmm as vmm;
pub use potemkin_workload as workload;
