//! Property-based tests on the simulation substrate: the timer wheel
//! against a naive reference model, event-queue ordering, and statistical
//! invariants of the distributions and the histogram.

use proptest::prelude::*;

use potemkin::metrics::LogHistogram;
use potemkin::sim::{EventQueue, SimRng, SimTime, TimerWheel};

#[derive(Clone, Debug)]
enum TimerOp {
    Schedule { deadline_ms: u64 },
    Cancel { pick: usize },
    Advance { by_ms: u64 },
}

fn arb_timer_op() -> impl Strategy<Value = TimerOp> {
    prop_oneof![
        5 => (0u64..100_000).prop_map(|deadline_ms| TimerOp::Schedule { deadline_ms }),
        2 => any::<usize>().prop_map(|pick| TimerOp::Cancel { pick }),
        3 => (0u64..5_000).prop_map(|by_ms| TimerOp::Advance { by_ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The timer wheel fires exactly the same payload sets as a naive
    /// sorted-list model, never early, and respects cancellation.
    #[test]
    fn timer_wheel_matches_reference_model(ops in proptest::collection::vec(arb_timer_op(), 1..150)) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(SimTime::from_millis(1));
        // Model: (deadline_ms rounded up to tick, id, handle) of live timers.
        let mut model: Vec<(u64, u64, potemkin::sim::TimerHandle)> = Vec::new();
        let mut now_ms = 0u64;
        let mut next_id = 0u64;

        for op in ops {
            match op {
                TimerOp::Schedule { deadline_ms } => {
                    let h = wheel.schedule(SimTime::from_millis(deadline_ms), next_id);
                    // Past deadlines are clamped to the next unprocessed tick.
                    let effective = deadline_ms.max(now_ms + 1);
                    model.push((effective, next_id, h));
                    next_id += 1;
                }
                TimerOp::Cancel { pick } => {
                    if model.is_empty() { continue; }
                    let idx = pick % model.len();
                    let (_, _, h) = model.remove(idx);
                    prop_assert!(wheel.cancel(h), "live timer must cancel");
                    prop_assert!(!wheel.cancel(h), "double cancel must fail");
                }
                TimerOp::Advance { by_ms } => {
                    now_ms += by_ms;
                    let fired = wheel.advance_to(SimTime::from_millis(now_ms));
                    let mut expected: Vec<u64> = model
                        .iter()
                        .filter(|&&(d, _, _)| d <= now_ms)
                        .map(|&(_, id, _)| id)
                        .collect();
                    model.retain(|&(d, _, _)| d > now_ms);
                    let mut got = fired.clone();
                    got.sort_unstable();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected, "fired set mismatch at t={}ms", now_ms);
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
        }
    }

    /// Events pop in non-decreasing time order, FIFO within ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last = (0u64, 0usize);
        let mut first = true;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_millis(t));
            if !first {
                prop_assert!(t > last.0 || (t == last.0 && i > last.1), "order violated");
            }
            last = (t, i);
            first = false;
        }
    }

    /// Histogram quantiles are bounded by min/max and ordered in q, and the
    /// relative error bound holds for every recorded point.
    #[test]
    fn histogram_quantile_invariants(samples in proptest::collection::vec(1u64..1_000_000_000, 1..300)) {
        let mut h = LogHistogram::new(32);
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= min && v <= max, "quantile {q} = {v} outside [{min}, {max}]");
            prop_assert!(v >= last, "quantiles must be monotone in q");
            last = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let true_mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - true_mean).abs() < 1e-6 * true_mean.max(1.0));
    }

    /// The RNG's bounded sampling is always within bounds.
    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Forked RNG streams never correlate with the parent's continuation.
    #[test]
    fn rng_fork_decorrelates(seed in any::<u64>()) {
        let mut parent = SimRng::seed_from(seed);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        prop_assert_ne!(a, b);
    }
}
