//! Property tests for the interaction-services plane.
//!
//! Two claims are held here. First, the scenario DSL round-trips: any
//! valid scenario serialized with [`Scenario::to_json`] parses back to an
//! identical value, and each class of malformed document is rejected with
//! its typed [`ScenarioError`] — no panics, no silent coercion. Second,
//! the sharded interaction replay is worker-invariant: the merged
//! fidelity report (per-scenario capture metrics, drive counters, farm
//! degradation) is byte-identical at any worker count, because every
//! attacker conversation lives inside the cell that owns its target.
//!
//! Each replay case runs several full sharded interactions, so the case
//! budget is kept small; the fixed unit tests in
//! `potemkin_core::services` and `potemkin_services` cover the common
//! shapes on every run.

use proptest::prelude::*;

use potemkin::interaction::{run_interaction, InteractionConfig};
use potemkin::services::{
    Action, DriveStep, Matcher, Protocol, Rule, Scenario, ScenarioError, ScenarioPack,
    ServicesConfig, State,
};
use potemkin::sim::SimTime;

fn arb_matcher() -> impl Strategy<Value = Matcher> {
    prop_oneof![
        "[a-zA-Z0-9 .:<>/-]{1,12}".prop_map(Matcher::Prefix),
        "[a-zA-Z0-9 .:<>/-]{1,12}".prop_map(Matcher::Contains),
        Just(Matcher::Any),
    ]
}

/// An [`Action`] with its `next` target as a raw index, resolved to a
/// concrete state name (modulo the state count) once that count is known.
type RawAction = (String, usize, bool);

fn arb_action() -> impl Strategy<Value = RawAction> {
    ("[a-zA-Z0-9 {}.:-]{1,16}", 0usize..3, any::<bool>())
}

/// Everything in a [`State`] except its name, which is assigned by index
/// (`s0`, `s1`, ...) so `initial` and every `next` reference resolve.
type RawState = (Option<u64>, Vec<(Matcher, RawAction)>, Option<RawAction>);

fn arb_state_body() -> impl Strategy<Value = RawState> {
    (
        proptest::option::of(1u64..10_000),
        proptest::collection::vec((arb_matcher(), arb_action()), 0..3),
        proptest::option::of(arb_action()),
    )
}

fn resolve_action((respond, next, capture): RawAction, states: usize) -> Action {
    Action { respond, next: format!("s{}", next % states), capture }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            "[a-z][a-z0-9-]{0,11}",
            prop_oneof![
                Just(Protocol::Ssh),
                Just(Protocol::Http),
                Just(Protocol::Smtp),
                Just(Protocol::Telnet),
            ],
            proptest::collection::vec(1u16..u16::MAX, 0..3),
            1usize..=3,
        ),
        (
            0usize..3,
            1u64..60_000,
            "[A-Z][A-Z0-9-]{2,7}",
            proptest::collection::vec(arb_state_body(), 3..=3),
        ),
        proptest::collection::vec(
            ("[a-zA-Z0-9 {}.:-]{1,16}", proptest::option::of(arb_matcher()))
                .prop_map(|(send, expect)| DriveStep { send, expect }),
            1..4,
        ),
    )
        .prop_map(
            |((name, protocol, ports, count), (initial, session_ms, marker, bodies), drive)| {
                Scenario {
                    name,
                    protocol,
                    ports,
                    initial: format!("s{}", initial % count),
                    session_timeout: SimTime::from_millis(session_ms),
                    capture_marker: marker,
                    states: bodies
                        .into_iter()
                        .take(count)
                        .enumerate()
                        .map(|(i, (timeout_ms, rules, fallback))| State {
                            name: format!("s{i}"),
                            timeout: timeout_ms.map(SimTime::from_millis),
                            rules: rules
                                .into_iter()
                                .map(|(matcher, action)| Rule {
                                    matcher,
                                    action: resolve_action(action, count),
                                })
                                .collect(),
                            fallback: fallback.map(|a| resolve_action(a, count)),
                        })
                        .collect(),
                    drive,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → parse must be the identity over valid scenarios: every
    /// field (matchers, timeouts, fallbacks, drive expectations) survives
    /// the canonical JSON form byte-exactly.
    #[test]
    fn scenario_round_trips_through_json(scenario in arb_scenario()) {
        let json = scenario.to_json();
        let parsed = Scenario::parse(&json).expect("canonical form parses");
        prop_assert_eq!(parsed, scenario);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The merged interaction report must be byte-identical at any worker
    /// count, for arbitrary seeds, cell counts, and fleet sizes.
    #[test]
    fn interaction_report_is_worker_invariant(
        seed in any::<u64>(),
        cells_exp in 0u32..=2,
        attackers in 1usize..=2,
        workers in 2usize..=4,
    ) {
        let config = InteractionConfig::builder(ServicesConfig::new(
            potemkin::services::pack::builtin(),
        ))
        .duration(SimTime::from_secs(8))
        .cells(1 << cells_exp)
        .attackers_per_scenario(attackers)
        .seed(seed)
        .build()
        .expect("sampled interaction config is valid");

        let reference = run_interaction(&config, 1).expect("serial run");
        let parallel = run_interaction(&config, workers).expect("parallel run");
        prop_assert_eq!(
            parallel.canonical_summary(),
            reference.canonical_summary(),
            "fidelity summary diverged at {} workers", workers
        );
        prop_assert_eq!(
            parallel.merged.degradation.canonical_string(),
            reference.merged.degradation.canonical_string(),
            "degradation report diverged at {} workers", workers
        );
        prop_assert_eq!(
            parallel.merged.stats.counters.get("packets_in"),
            reference.merged.stats.counters.get("packets_in")
        );
        prop_assert_eq!(parallel.records.len(), reference.records.len());
    }
}

/// A scenario referencing a state that does not exist must be rejected
/// with the typed error naming both ends of the dangling edge.
#[test]
fn unknown_state_ref_is_rejected() {
    let doc = r#"{
        "scenario": "broken", "protocol": "smtp", "ports": [25],
        "initial": "greet", "session_timeout_ms": 1000, "capture_marker": "MZ",
        "states": [
            { "name": "greet", "rules": [
                { "match": {"kind": "any"}, "respond": "250 ok", "next": "nowhere" }
            ] }
        ],
        "drive": [ { "send": "HELO" } ]
    }"#;
    match Scenario::parse(doc) {
        Err(ScenarioError::UnknownStateRef { referenced, .. }) => assert_eq!(referenced, "nowhere"),
        other => panic!("expected UnknownStateRef, got {other:?}"),
    }
}

/// An empty prefix/contains matcher can never meaningfully match; it must
/// be a load-time error, not a silent always/never rule.
#[test]
fn empty_match_rule_is_rejected() {
    let doc = r#"{
        "scenario": "broken", "protocol": "http", "ports": [80],
        "initial": "start", "session_timeout_ms": 1000, "capture_marker": "MZ",
        "states": [
            { "name": "start", "rules": [
                { "match": {"kind": "prefix", "bytes": ""}, "respond": "x", "next": "start" }
            ] }
        ],
        "drive": [ { "send": "GET /" } ]
    }"#;
    assert!(matches!(Scenario::parse(doc), Err(ScenarioError::EmptyMatchRule { .. })));
}

/// Two scenarios with the same name cannot share a pack: selection is by
/// name-stable metrics, so the collision must fail loudly at load.
#[test]
fn duplicate_scenario_name_is_rejected() {
    let scenario = r#"{
        "scenario": "twin", "protocol": "http", "ports": [80],
        "initial": "start", "session_timeout_ms": 1000, "capture_marker": "MZ",
        "states": [ { "name": "start", "rules": [] } ],
        "drive": [ { "send": "GET /" } ]
    }"#;
    match ScenarioPack::parse_many(&[scenario, scenario]) {
        Err(ScenarioError::DuplicateScenarioName { name }) => assert_eq!(name, "twin"),
        other => panic!("expected DuplicateScenarioName, got {other:?}"),
    }
}

/// A truncated document is a JSON error, not a panic or a partial parse.
#[test]
fn truncated_document_is_rejected() {
    let full = r#"{"scenario": "cut", "protocol": "ssh", "ports": [22]"#;
    assert!(matches!(Scenario::parse(full), Err(ScenarioError::Json(_))));
}

/// A document missing a required field reports which one.
#[test]
fn missing_field_is_rejected() {
    let doc = r#"{ "scenario": "incomplete", "protocol": "ssh" }"#;
    match Scenario::parse(doc) {
        Err(ScenarioError::MissingField { field, .. }) => assert_eq!(field, "initial"),
        Err(ScenarioError::BadField { .. }) | Err(ScenarioError::NoStates { .. }) => {}
        other => panic!("expected a typed missing-field error, got {other:?}"),
    }
}

/// A protocol outside the detector's vocabulary is a typed error.
#[test]
fn unknown_protocol_is_rejected() {
    let doc = r#"{
        "scenario": "weird", "protocol": "gopher", "ports": [70],
        "initial": "start", "session_timeout_ms": 1000, "capture_marker": "MZ",
        "states": [ { "name": "start", "rules": [] } ],
        "drive": [ { "send": "x" } ]
    }"#;
    match Scenario::parse(doc) {
        Err(ScenarioError::UnknownProtocol { protocol, .. }) => assert_eq!(protocol, "gopher"),
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }
}
