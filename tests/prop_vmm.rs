//! Property-based tests on the VMM's core invariants: under arbitrary
//! interleavings of clone / write / destroy operations,
//!
//! 1. frames are conserved exactly (no leak, no double-free),
//! 2. copy-on-write isolation holds (a domain's reads see exactly its own
//!    writes overlaid on the immutable image),
//! 3. the memory report stays internally consistent.

use proptest::prelude::*;
use std::collections::HashMap;

use potemkin::vmm::guest::GuestProfile;
use potemkin::vmm::{DomainId, Host};

#[derive(Clone, Debug)]
enum Op {
    Clone,
    Write { vm_pick: usize, pfn: u64, value: u64 },
    Read { vm_pick: usize, pfn: u64 },
    Destroy { vm_pick: usize },
    Rollback { vm_pick: usize },
    Reshare { vm_pick: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Clone),
        6 => (any::<usize>(), 0u64..2048, any::<u64>())
            .prop_map(|(vm_pick, pfn, value)| Op::Write { vm_pick, pfn, value }),
        4 => (any::<usize>(), 0u64..2048).prop_map(|(vm_pick, pfn)| Op::Read { vm_pick, pfn }),
        1 => any::<usize>().prop_map(|vm_pick| Op::Destroy { vm_pick }),
        1 => any::<usize>().prop_map(|vm_pick| Op::Rollback { vm_pick }),
        1 => any::<usize>().prop_map(|vm_pick| Op::Reshare { vm_pick }),
    ]
}

fn tiny_profile() -> GuestProfile {
    let mut p = GuestProfile::small();
    p.memory_pages = 2_048;
    p.disk_blocks = 64;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vmm_invariants_under_random_ops(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut host = Host::new(200_000).with_overhead_pages(8);
        let image = host.create_reference_image("prop", tiny_profile()).unwrap();
        let baseline = host.memory_report().used_frames;

        // The model: per live domain, the set of (pfn -> value) writes.
        let mut live: Vec<DomainId> = Vec::new();
        let mut model: HashMap<DomainId, HashMap<u64, u64>> = HashMap::new();

        for op in ops {
            match op {
                Op::Clone => {
                    let (dom, _) = host.flash_clone(image).unwrap();
                    live.push(dom);
                    model.insert(dom, HashMap::new());
                }
                Op::Write { vm_pick, pfn, value } => {
                    if live.is_empty() { continue; }
                    let dom = live[vm_pick % live.len()];
                    host.write_page(dom, pfn, value).unwrap();
                    model.get_mut(&dom).unwrap().insert(pfn, value);
                }
                Op::Read { vm_pick, pfn } => {
                    if live.is_empty() { continue; }
                    let dom = live[vm_pick % live.len()];
                    let got = host.read_page(dom, pfn).unwrap();
                    let expect = model[&dom]
                        .get(&pfn)
                        .copied()
                        .unwrap_or_else(|| GuestProfile::boot_content(image.0, pfn));
                    prop_assert_eq!(got, expect, "CoW isolation violated for {} pfn {}", dom, pfn);
                }
                Op::Destroy { vm_pick } => {
                    if live.is_empty() { continue; }
                    let dom = live.remove(vm_pick % live.len());
                    host.destroy(dom).unwrap();
                    model.remove(&dom);
                }
                Op::Rollback { vm_pick } => {
                    if live.is_empty() { continue; }
                    let dom = live[vm_pick % live.len()];
                    host.rollback(dom).unwrap();
                    // Rollback discards the delta: the model resets too.
                    model.get_mut(&dom).unwrap().clear();
                }
                Op::Reshare { vm_pick } => {
                    // Re-sharing reverted pages never changes guest-visible
                    // contents, so the model is untouched.
                    if live.is_empty() { continue; }
                    let dom = live[vm_pick % live.len()];
                    host.reshare_reverted_pages(dom).unwrap();
                }
            }

            // Report consistency after every step.
            let r = host.memory_report();
            prop_assert_eq!(r.used_frames + r.free_frames, r.total_frames);
            prop_assert_eq!(r.used_frames, r.image_frames + r.private_frames);
            prop_assert_eq!(r.live_domains as usize, live.len());
        }

        // Full verification of every surviving domain against the model.
        for dom in &live {
            for (&pfn, &value) in &model[dom] {
                prop_assert_eq!(host.read_page(*dom, pfn).unwrap(), value);
            }
            // Spot-check untouched pages still read image content.
            for pfn in [0u64, 1_000, 2_047] {
                if !model[dom].contains_key(&pfn) {
                    prop_assert_eq!(
                        host.read_page(*dom, pfn).unwrap(),
                        GuestProfile::boot_content(image.0, pfn)
                    );
                }
            }
        }

        // Exact frame conservation after tearing everything down.
        for dom in live {
            host.destroy(dom).unwrap();
        }
        prop_assert_eq!(host.memory_report().used_frames, baseline);
    }

    #[test]
    fn private_pages_equal_distinct_written_pfns(
        writes in proptest::collection::vec((0u64..2048, any::<u64>()), 1..300),
    ) {
        let mut host = Host::new(100_000).with_overhead_pages(0);
        let image = host.create_reference_image("prop", tiny_profile()).unwrap();
        let (dom, _) = host.flash_clone(image).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for (pfn, value) in writes {
            host.write_page(dom, pfn, value).unwrap();
            distinct.insert(pfn);
        }
        let d = host.domain(dom).unwrap();
        prop_assert_eq!(d.private_pages(), distinct.len() as u64);
        prop_assert_eq!(d.cow_faults(), distinct.len() as u64);
        prop_assert_eq!(d.shared_pages(), 2_048 - distinct.len() as u64);
    }

    #[test]
    fn sibling_clones_never_observe_each_other(
        writes_a in proptest::collection::vec((0u64..256, any::<u64>()), 1..50),
        writes_b in proptest::collection::vec((0u64..256, any::<u64>()), 1..50),
    ) {
        let mut host = Host::new(100_000).with_overhead_pages(0);
        let image = host.create_reference_image("prop", tiny_profile()).unwrap();
        let (a, _) = host.flash_clone(image).unwrap();
        let (b, _) = host.flash_clone(image).unwrap();
        let mut model_a = HashMap::new();
        let mut model_b = HashMap::new();
        // Interleave the two domains' writes.
        let max = writes_a.len().max(writes_b.len());
        for i in 0..max {
            if let Some(&(pfn, v)) = writes_a.get(i) {
                host.write_page(a, pfn, v).unwrap();
                model_a.insert(pfn, v);
            }
            if let Some(&(pfn, v)) = writes_b.get(i) {
                host.write_page(b, pfn, v).unwrap();
                model_b.insert(pfn, v);
            }
        }
        for pfn in 0..256u64 {
            let expect_a =
                model_a.get(&pfn).copied().unwrap_or_else(|| GuestProfile::boot_content(image.0, pfn));
            let expect_b =
                model_b.get(&pfn).copied().unwrap_or_else(|| GuestProfile::boot_content(image.0, pfn));
            prop_assert_eq!(host.read_page(a, pfn).unwrap(), expect_a);
            prop_assert_eq!(host.read_page(b, pfn).unwrap(), expect_b);
        }
    }
}
