//! Cross-crate integration: the full packet walk from a GRE-tunneled
//! telescope frame to a honeypot's answer, plus long-run conservation
//! invariants.

use potemkin::farm::{FarmConfig, FarmOutput, Honeyfarm};
use potemkin::gateway::tunnel::{Telescope, TunnelEndpoint};
use potemkin::net::gre::GreHeader;
use potemkin::net::tcp::TcpFlags;
use potemkin::net::{Packet, PacketBuilder};
use potemkin::sim::SimTime;
use potemkin::workload::radiation::{RadiationConfig, RadiationModel};
use std::net::Ipv4Addr;

const ATTACKER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);

#[test]
fn gre_tunnel_to_honeypot_and_back() {
    // Telescope side: encapsulate a probe exactly as a remote router would.
    let mut tunnel = TunnelEndpoint::new();
    tunnel.attach(Telescope { key: 7, prefix: "10.1.0.0/16".parse().unwrap() }).unwrap();
    let inner = PacketBuilder::new(ATTACKER, Ipv4Addr::new(10, 1, 9, 9)).tcp_syn(50_000, 445);
    let frame = GreHeader::encapsulate_ipv4(7, inner.wire());

    // Gateway side: decapsulate, inject, collect the answer.
    let (key, packet) = tunnel.decapsulate(&frame).expect("valid GRE frame");
    assert_eq!(key, 7);
    let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
    farm.inject_external(SimTime::ZERO, packet);

    let reply: Packet = farm
        .take_outputs()
        .into_iter()
        .find_map(|o| match o {
            FarmOutput::SentExternal(p) => Some(p),
            _ => None,
        })
        .expect("honeypot answered");
    assert_eq!(reply.tcp_flags().unwrap(), TcpFlags::SYN_ACK);

    // The reply is routed back down the tunnel that owns... the *source*
    // address is the telescope address; the destination (the attacker) is
    // not tunneled, so the reply egresses natively.
    assert!(tunnel.encapsulate_reply(&reply).is_none());

    // Traffic *to* a telescope address does get tunneled.
    let to_telescope = PacketBuilder::new(ATTACKER, Ipv4Addr::new(10, 1, 3, 3)).tcp_syn(1, 2);
    let wrapped = tunnel.encapsulate_reply(&to_telescope).expect("owned prefix");
    let (k2, p2) = tunnel.decapsulate(&wrapped).expect("roundtrip");
    assert_eq!(k2, 7);
    assert_eq!(p2, to_telescope);
}

#[test]
fn full_handshake_and_data_exchange_with_honeypot() {
    let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
    let hp = Ipv4Addr::new(10, 1, 0, 50);
    let t = SimTime::ZERO;

    // SYN -> SYN-ACK.
    farm.inject_external(t, PacketBuilder::new(ATTACKER, hp).tcp_syn(50_000, 80));
    let synack = farm
        .take_outputs()
        .into_iter()
        .find_map(|o| match o {
            FarmOutput::SentExternal(p) if p.tcp_flags().is_some_and(|f| f.syn && f.ack) => Some(p),
            _ => None,
        })
        .expect("SYN-ACK");

    // Data request -> service banner response.
    let request = PacketBuilder::new(ATTACKER, hp).tcp_segment(
        50_000,
        80,
        TcpFlags::PSH_ACK,
        1,
        synack.flow_key().transport.src_port().map_or(0, |_| 1),
        b"GET / HTTP/1.0\r\n\r\n",
    );
    farm.inject_external(SimTime::from_millis(10), request);
    let response = farm
        .take_outputs()
        .into_iter()
        .find_map(|o| match o {
            FarmOutput::SentExternal(p) if !p.app_payload().is_empty() => Some(p),
            _ => None,
        })
        .expect("service data response");
    assert_eq!(response.dst(), ATTACKER);
    assert_eq!(response.app_payload(), b"220 service ready");

    // Guest dirtied pages while serving: delta virtualization at work.
    let report = farm.hosts()[0].memory_report();
    assert!(report.private_frames > 64, "private frames: {}", report.private_frames);
}

#[test]
fn long_run_conserves_frames_exactly() {
    let mut cfg = FarmConfig::small_test();
    cfg.gateway.policy.binding_idle_timeout = SimTime::from_secs(5);
    cfg.frames_per_server = 2_000_000;
    cfg.max_domains_per_server = 8_192;
    let mut farm = Honeyfarm::new(cfg).unwrap();
    let baseline = farm.hosts()[0].memory_report().used_frames;

    // Replay 2 minutes of radiation with aggressive 5s recycling.
    let mut model = RadiationModel::new(RadiationConfig::default(), 99);
    let trace = model.generate(SimTime::from_secs(120));
    assert!(trace.len() > 100);
    let mut last_tick = SimTime::ZERO;
    for event in trace.events() {
        farm.inject_external(event.at, event.packet.clone());
        if event.at.saturating_sub(last_tick) >= SimTime::from_secs(1) {
            farm.tick(event.at);
            last_tick = event.at;
        }
    }
    let cloned = farm.stats().vms_cloned;
    assert!(cloned > 20, "clones: {cloned}");

    // Drain everything and verify exact frame conservation.
    farm.tick(SimTime::from_secs(600));
    assert_eq!(farm.live_vms(), 0);
    let after = farm.hosts()[0].memory_report();
    assert_eq!(after.used_frames, baseline, "frame leak after {cloned} clone/destroy cycles");
    assert_eq!(after.private_frames, 0);
}

#[test]
fn farm_counters_are_consistent() {
    let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
    for i in 1..=20u8 {
        let p = PacketBuilder::new(ATTACKER, Ipv4Addr::new(10, 1, 1, i)).tcp_syn(1000, 445);
        farm.inject_external(SimTime::ZERO, p);
    }
    let stats = farm.stats();
    assert_eq!(stats.vms_cloned, 20);
    assert_eq!(stats.live_vms, 20);
    // Every first contact is seen twice by the gateway (original + re-offer
    // after cloning).
    assert_eq!(stats.counters.get("packets_in"), 40);
    assert_eq!(stats.counters.get("clone_requests"), 20);
    assert_eq!(stats.counters.get("delivered"), 20);
    assert_eq!(stats.counters.get("bindings_created"), 20);
    // Each guest answered once.
    assert_eq!(stats.counters.get("replies_forwarded"), 20);
    assert_eq!(stats.counters.get("sent_external"), 20);
}

#[test]
fn paper_scale_farm_serves_a_telescope_under_pressure() {
    // The paper's deployment shape: 2 GiB servers, 128 MiB Windows images,
    // the Xen-era 116-domain limit, rollback recycling with standby pools,
    // evict-oldest under pressure.
    let mut cfg = potemkin::farm::FarmConfig::paper_scale(2);
    cfg.gateway.policy.binding_idle_timeout = SimTime::from_secs(20);
    let mut farm = Honeyfarm::new(cfg).unwrap();
    assert_eq!(farm.standby_vms(), 16, "8 standby per server");

    let mut model = RadiationModel::new(RadiationConfig::default(), 515);
    let trace = model.generate(SimTime::from_secs(120));
    let mut last_tick = SimTime::ZERO;
    for event in trace.events() {
        farm.inject_external(event.at, event.packet.clone());
        if event.at.saturating_sub(last_tick) >= SimTime::from_secs(1) {
            farm.tick(event.at);
            last_tick = event.at;
        }
    }
    let stats = farm.stats();
    // The domain cap holds on every server (standby + bound).
    for host in farm.hosts() {
        assert!(host.live_domains() <= 116, "domain cap violated: {}", host.live_domains());
        let report = host.memory_report();
        assert!(report.free_frames > 0, "memory exhausted");
    }
    // Under pressure the farm replaced old bindings rather than going deaf.
    assert!(stats.vms_cloned > 100, "clones: {}", stats.vms_cloned);
    assert!(
        stats.counters.get("evicted_for_pressure") > 0,
        "2 min of /16 radiation against 232 domains must create pressure"
    );
    assert_eq!(stats.counters.get("dropped_no_capacity"), 0, "eviction kept serving");
    assert!(stats.counters.get("standby_hits") > 0);
    // Marginal memory stays in the paper's few-MiB band.
    let marginal_mib = stats.marginal_frames_per_vm() * 4.0 / 1024.0;
    assert!(marginal_mib < 16.0, "marginal {marginal_mib} MiB");
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let mut cfg = FarmConfig::small_test();
        cfg.frames_per_server = 2_000_000;
        cfg.max_domains_per_server = 8_192;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let mut model = RadiationModel::new(RadiationConfig::default(), 1234);
        let trace = model.generate(SimTime::from_secs(30));
        for event in trace.events() {
            farm.inject_external(event.at, event.packet.clone());
        }
        let s = farm.stats();
        (s.vms_cloned, s.counters.get("packets_in"), s.total_used_frames())
    };
    assert_eq!(run(), run(), "same seed, same result");
}
