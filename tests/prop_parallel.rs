//! Property tests for the sharded parallel replay engine.
//!
//! The engine's core claim: for a fixed `(seed, cells, window)` the
//! worker-thread count is invisible — a parallel replay produces a
//! byte-identical merged [`DegradationReport`] and identical merged
//! counters, under arbitrary seeds, worker counts, cell counts, and fault
//! schedules. Containment must also survive sharding: no cross-cell fabric
//! path may leak a packet.
//!
//! Each case replays a full telescope scenario per worker count, so the
//! case budget is kept small; the fixed unit tests in
//! `potemkin_core::parallel` cover the common configurations on every run.
//!
//! [`DegradationReport`]: potemkin::report::DegradationReport

use proptest::prelude::*;

use potemkin::farm::FarmConfig;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::parallel::{run_telescope_sharded, ShardedTelescopeConfig};
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::{EngineTuning, FaultPlanConfig, SimTime};
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

const DURATION_SECS: u64 = 5;

#[derive(Clone, Copy, Debug)]
struct SampledRun {
    seed: u64,
    cells: usize,
    workers: usize,
    window_ms: u64,
    crash_rate: f64,
    clone_prob: f64,
    with_worm: bool,
    /// Load-aware worker rebalancing (digest-invariant by design).
    rebalance: bool,
    /// Adaptive window sizing (deterministic per configuration).
    adaptive: bool,
    /// Barrier-batched gateway flow/counter updates.
    batched_flow: bool,
}

fn arb_run() -> impl Strategy<Value = SampledRun> {
    (
        any::<u64>(),
        1usize..=4,
        2usize..=8,
        100u64..=1_000,
        prop_oneof![Just(0.0), 120.0..600.0f64],
        prop_oneof![Just(0.0), 0.01..0.3f64],
        any::<bool>(),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(
                seed,
                cells,
                workers,
                window_ms,
                crash_rate,
                clone_prob,
                with_worm,
                (rebalance, adaptive, batched_flow),
            )| {
                SampledRun {
                    seed,
                    cells,
                    workers,
                    window_ms,
                    crash_rate,
                    clone_prob,
                    with_worm,
                    rebalance,
                    adaptive,
                    batched_flow,
                }
            },
        )
}

fn config_for(s: SampledRun) -> ShardedTelescopeConfig {
    let mut farm = FarmConfig::small_test();
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(5));
    farm.frames_per_server = 262_144;
    farm.seed = s.seed;
    farm.degradation_ladder = true;
    farm.gateway.batched_flow_updates = s.batched_flow;
    let mut seed_infections = 0;
    if s.with_worm {
        // A small worm space keeps the saturated VM population (and the
        // debug-mode event count) bounded per sampled case.
        farm.worm = Some(WormSpec::code_red("10.1.8.0/22".parse().unwrap()));
        seed_infections = 1;
        // Patient zero must place even when the sampled fault plan injects
        // clone failures: standby binds are pre-cloned fault-free.
        farm.standby_per_host = 1;
    }
    let duration = SimTime::from_secs(DURATION_SECS);
    let faults = (s.crash_rate > 0.0 || s.clone_prob > 0.0).then(|| FaultPlanConfig {
        seed: s.seed.wrapping_add(1),
        host_crash_rate_per_hour: s.crash_rate,
        clone_failure_prob: s.clone_prob,
        host_recovery_time: SimTime::from_secs(2),
        ..FaultPlanConfig::zero(duration, farm.servers)
    });
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(s.seed)
        .duration(duration)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    let tuning = EngineTuning {
        rebalance: s.rebalance,
        adaptive: s.adaptive.then(|| {
            potemkin::sim::AdaptiveWindow::bounded(
                SimTime::from_millis(s.window_ms / 2),
                SimTime::from_millis(s.window_ms * 2),
            )
        }),
    };
    let mut builder = ShardedTelescopeConfig::builder(base)
        .cells(s.cells)
        .window(SimTime::from_millis(s.window_ms))
        .seed_infections(seed_infections)
        .tuning(tuning);
    if let Some(faults) = faults {
        builder = builder.faults(faults);
    }
    builder.build().expect("valid sharded config")
}

/// Everything a replay reports except wall-clock telemetry, rendered to
/// one comparable string.
fn digest(config: &ShardedTelescopeConfig, workers: usize) -> (String, u64) {
    let r = run_telescope_sharded(config, workers).expect("replay runs");
    (
        format!(
            "{}|live={}|in={}|cloned={}|recycled={}|forwarded={}|infected={}|remote={}|\
             series={:?}",
            r.degradation.canonical_string(),
            r.stats.live_vms,
            r.stats.counters.get("packets_in"),
            r.stats.vms_cloned,
            r.stats.vms_recycled,
            r.cross_cell_packets,
            r.final_infected,
            r.engine.remote_messages,
            r.live_vm_series.iter().collect::<Vec<_>>(),
        ),
        r.degradation.escaped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serial (one-worker) run and the sampled parallel run must
    /// produce byte-identical merged reports.
    #[test]
    fn parallel_replay_matches_serial_byte_for_byte(s in arb_run()) {
        let config = config_for(s);
        let (serial, _) = digest(&config, 1);
        let (parallel, _) = digest(&config, s.workers);
        prop_assert_eq!(serial, parallel);
    }

    /// Sharding must not open a containment hole: under reflection, no
    /// sampled fault schedule or worm may push the escape counter off
    /// zero, in serial or in parallel.
    #[test]
    fn sharded_containment_holds(s in arb_run()) {
        let config = config_for(s);
        let (_, escaped_serial) = digest(&config, 1);
        let (_, escaped_parallel) = digest(&config, s.workers);
        prop_assert_eq!(escaped_serial, 0, "serial run leaked");
        prop_assert_eq!(escaped_parallel, 0, "parallel run leaked");
    }
}
