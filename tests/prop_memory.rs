//! Property tests for the memory control plane.
//!
//! Three claims, each load-bearing for the content-sharing story:
//!
//! 1. **Sharing monotonicity.** Cloning more domains from one image never
//!    lowers the post-merge sharing ratio: every clone adds a full logical
//!    address space but only its private delta in resident frames, and the
//!    merge pass folds identical deltas. More clones → more sharing.
//! 2. **Merge invisibility.** A content-index merge pass never changes
//!    what any guest reads from any page — shared or private, written or
//!    pristine. Merging is a frame-table optimization, not a semantic op.
//! 3. **Reclaim determinism + containment.** Under a per-host frame
//!    budget, every shipped reclamation policy produces a byte-identical
//!    merged report for any shard worker count, and no pressure eviction
//!    opens a containment hole (the escape counter stays zero).
//!
//! The replay cases run full telescope scenarios per worker count, so
//! their budget is small; the fixed tests in `potemkin_bench::e13` and
//! `potemkin_vmm` cover the common configurations on every run.

use proptest::prelude::*;

use potemkin::farm::FarmConfig;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::gateway::reclaim::ReclaimPolicyKind;
use potemkin::gateway::GatewayConfig;
use potemkin::parallel::{run_telescope_sharded, ShardedTelescopeConfig};
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::SimTime;
use potemkin::vmm::guest::GuestProfile;
use potemkin::vmm::{DomainId, Host};
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

/// A host with `clones` flash clones of one small image, each having
/// executed the same payload (identical pages, identical bytes), merged.
/// Returns the host and the clone domain ids.
fn diverged_merged_host(clones: usize, payload_seed: u64) -> (Host, Vec<DomainId>) {
    let profile = GuestProfile::small();
    let pages = profile.memory_pages;
    let payload = profile.pages_for_infection(payload_seed);
    let mut host = Host::new(4 * pages * clones as u64 + 65_536);
    let image = host.create_reference_image("prop", profile).expect("image fits");
    let mut domains = Vec::with_capacity(clones);
    for _ in 0..clones {
        let (id, _) = host.flash_clone(image).expect("clone fits");
        host.touch_pages(id, &payload, payload_seed).expect("guest writes");
        domains.push(id);
    }
    host.scan_and_merge().expect("host is alive");
    (host, domains)
}

fn pressure_config(kind: ReclaimPolicyKind, seed: u64, cells: usize) -> ShardedTelescopeConfig {
    let gateway = GatewayConfig::builder()
        .policy(PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10)))
        .build()
        .expect("valid gateway config");
    let farm = FarmConfig::builder()
        .gateway(gateway)
        .servers(2)
        .frames_per_server(262_144)
        .max_domains_per_server(4_096)
        .seed(seed)
        .worm(WormSpec::code_red("10.1.0.0/22".parse().expect("static prefix")))
        .evict_on_pressure(true)
        .memory_budget_frames(10_752)
        .merge_interval(SimTime::from_secs(1))
        .reclaim_policy(kind)
        .build()
        .expect("valid farm config");
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(seed)
        .duration(SimTime::from_secs(3))
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    ShardedTelescopeConfig::builder(base)
        .cells(cells)
        .window(SimTime::from_millis(500))
        .seed_infections(1)
        .build()
        .expect("valid sharded config")
}

/// Everything a pressure replay reports that must not depend on the
/// worker count, rendered to one comparable string.
fn pressure_digest(config: &ShardedTelescopeConfig, workers: usize) -> (String, u64) {
    let r = run_telescope_sharded(config, workers).expect("replay runs");
    (
        format!(
            "{}|in={}|cloned={}|recycled={}|evicted={}|pressure={}|merged={}|\
             logical={}|resident={}|infected={}",
            r.degradation.canonical_string(),
            r.stats.counters.get("packets_in"),
            r.stats.vms_cloned,
            r.stats.vms_recycled,
            r.stats.counters.get("evicted_for_pressure"),
            r.stats.counters.get("memory_pressure_events"),
            r.stats.counters.get("pages_merged"),
            r.stats.sharing.logical_pages,
            r.stats.sharing.resident_frames,
            r.final_infected,
        ),
        r.degradation.escaped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// More clones of the same image never lower the post-merge sharing
    /// ratio, and the ratio always exceeds 1 once two clones share an
    /// image (a single clone pays the whole image cost alone, so its
    /// ratio legitimately sits below 1).
    #[test]
    fn sharing_ratio_is_monotone_in_clone_count(
        payload_seed in any::<u64>(),
        base in 2usize..=6,
        extra in 1usize..=6,
    ) {
        let (small_host, _) = diverged_merged_host(base, payload_seed);
        let (big_host, _) = diverged_merged_host(base + extra, payload_seed);
        let small = small_host.sharing_report();
        let big = big_host.sharing_report();
        prop_assert!(small.ratio() > 1.0, "clones must share: {}", small.ratio());
        prop_assert!(
            big.ratio() >= small.ratio(),
            "ratio fell with clone count: {} clones -> {:.4}, {} clones -> {:.4}",
            base, small.ratio(), base + extra, big.ratio()
        );
    }

    /// A merge pass never changes any guest-visible page: clones that
    /// wrote identical payloads, clones that wrote private data, and
    /// pristine pages all read back exactly as before the pass.
    #[test]
    fn merge_never_changes_guest_visible_contents(
        payload_seed in any::<u64>(),
        clones in 2usize..=5,
        private_writes in proptest::collection::vec((0u64..8_192, any::<u64>()), 0..16),
        probe_pfns in proptest::collection::vec(0u64..8_192, 1..32),
    ) {
        let profile = GuestProfile::small();
        let payload = profile.pages_for_infection(payload_seed);
        let mut host = Host::new(4 * profile.memory_pages * clones as u64 + 65_536);
        let image = host.create_reference_image("prop", profile).expect("image fits");
        let mut domains = Vec::with_capacity(clones);
        for _ in 0..clones {
            let (id, _) = host.flash_clone(image).expect("clone fits");
            host.touch_pages(id, &payload, payload_seed).expect("shared payload");
            domains.push(id);
        }
        // Domain 0 additionally writes private, clone-unique data.
        for &(pfn, value) in &private_writes {
            host.write_page(domains[0], pfn, value).expect("private write");
        }
        let before: Vec<Vec<u64>> = domains
            .iter()
            .map(|&d| {
                probe_pfns
                    .iter()
                    .map(|&pfn| host.read_page(d, pfn).expect("pfn in range"))
                    .collect()
            })
            .collect();
        host.scan_and_merge().expect("host is alive");
        for (i, &d) in domains.iter().enumerate() {
            for (j, &pfn) in probe_pfns.iter().enumerate() {
                let after = host.read_page(d, pfn).expect("pfn in range");
                prop_assert_eq!(
                    after, before[i][j],
                    "merge changed domain {} pfn {}", i, pfn
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Under budget pressure, every reclaim policy yields a byte-identical
    /// report across 1/2/4 workers, and no eviction path leaks a packet.
    #[test]
    fn every_policy_is_deterministic_across_workers_and_contained(
        seed in any::<u64>(),
        cells in 1usize..=3,
    ) {
        for kind in [
            ReclaimPolicyKind::Oldest,
            ReclaimPolicyKind::LruByLastPacket,
            ReclaimPolicyKind::Clock,
        ] {
            let config = pressure_config(kind, seed, cells);
            let (serial, escaped_serial) = pressure_digest(&config, 1);
            prop_assert_eq!(escaped_serial, 0, "{}: serial run leaked", kind.name());
            for workers in [2usize, 4] {
                let (parallel, escaped_parallel) = pressure_digest(&config, workers);
                prop_assert_eq!(
                    &serial, &parallel,
                    "{}: {} workers diverged from serial", kind.name(), workers
                );
                prop_assert_eq!(escaped_parallel, 0, "{}: parallel run leaked", kind.name());
            }
        }
    }
}
