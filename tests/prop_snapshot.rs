//! Property tests for whole-farm checkpoint/restore.
//!
//! Three claims, sampled rather than enumerated:
//!
//! 1. **Container round trip.** Any snapshot container — arbitrary
//!    section names and payloads — survives `encode` → `decode` with its
//!    contents intact, and re-encodes byte-identically.
//! 2. **Resume ≡ uninterrupted.** For any sampled scenario (seed, cells,
//!    workers, fault schedule) and any kill window, killing the run at a
//!    checkpoint barrier, recovering the snapshot from disk, and resuming
//!    produces a report digest byte-identical to the run that was never
//!    interrupted.
//! 3. **Corruption rejection.** Flipping any single byte of an encoded
//!    snapshot, or truncating it at any point, yields a typed
//!    [`SnapshotError`] — never a panic, never a silently-accepted
//!    snapshot.
//!
//! Each resume case replays a full telescope scenario three times, so the
//! case budget is kept small; the fixed unit tests in
//! `potemkin_core::checkpoint` cover the common configurations on every
//! run.
//!
//! [`SnapshotError`]: potemkin::snapshot::SnapshotError

use proptest::prelude::*;

use potemkin::checkpoint::{
    recover_snapshot, resume_telescope_checkpointed, run_telescope_checkpointed, CheckpointOptions,
};
use potemkin::farm::FarmConfig;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::parallel::{run_telescope_sharded, ShardedTelescopeConfig};
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::{FaultPlanConfig, SimTime};
use potemkin::snapshot::SnapshotFile;
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

#[derive(Clone, Copy, Debug)]
struct SampledRun {
    seed: u64,
    cells: usize,
    workers: usize,
    kill_after_windows: u64,
    clone_prob: f64,
    with_worm: bool,
}

fn arb_run() -> impl Strategy<Value = SampledRun> {
    (
        any::<u64>(),
        1usize..=3,
        1usize..=4,
        2u64..=3,
        prop_oneof![Just(0.0), 0.01..0.3f64],
        any::<bool>(),
    )
        .prop_map(|(seed, cells, workers, kill_after_windows, clone_prob, with_worm)| {
            SampledRun { seed, cells, workers, kill_after_windows, clone_prob, with_worm }
        })
}

/// The snapshot encoder walks every domain page table and host free
/// list, so sampled scenarios trim the guest footprint to keep
/// per-window checkpoints cheap in debug builds (same rationale as the
/// `potemkin_core::checkpoint` unit tests).
fn config_for(s: SampledRun) -> ShardedTelescopeConfig {
    let mut farm = FarmConfig::small_test();
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
    farm.frames_per_server = 32_768;
    let mut profile = potemkin::vmm::guest::GuestProfile::small();
    profile.memory_pages = 1_024;
    profile.disk_blocks = 512;
    farm.profile = profile;
    farm.seed = s.seed;
    let mut seed_infections = 0;
    if s.with_worm {
        farm.worm = Some(WormSpec::code_red("10.1.8.0/26".parse().unwrap()));
        seed_infections = 1;
    }
    let duration = SimTime::from_secs(2);
    let faults = (s.clone_prob > 0.0).then(|| FaultPlanConfig {
        seed: s.seed.wrapping_add(1),
        clone_failure_prob: s.clone_prob,
        ..FaultPlanConfig::zero(duration, farm.servers)
    });
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(s.seed)
        .duration(duration)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    let mut builder = ShardedTelescopeConfig::builder(base)
        .cells(s.cells)
        .window(SimTime::from_millis(500))
        .seed_infections(seed_infections);
    if let Some(faults) = faults {
        builder = builder.faults(faults);
    }
    builder.build().expect("valid sharded config")
}

/// Everything a replay reports except wall-clock telemetry, rendered to
/// one comparable string.
fn digest(r: &potemkin::parallel::ShardedTelescopeResult) -> String {
    format!(
        "{}|live={}|in={}|packets={}|forwarded={}|infected={}|remote={}|series={:?}",
        r.degradation.canonical_string(),
        r.stats.live_vms,
        r.stats.counters.get("packets_in"),
        r.packets,
        r.cross_cell_packets,
        r.final_infected,
        r.engine.remote_messages,
        r.live_vm_series.iter().collect::<Vec<_>>(),
    )
}

fn temp_path(tag: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("potemkin-prop-snap-{}-{tag:016x}.snap", std::process::id()));
    p
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut prev = path.to_path_buf();
    if let Some(name) = path.file_name() {
        let mut name = name.to_os_string();
        name.push(".prev");
        prev.set_file_name(name);
        let _ = std::fs::remove_file(&prev);
    }
}

fn arb_container() -> impl Strategy<Value = SnapshotFile> {
    (
        any::<u64>(),
        proptest::collection::vec(
            ("[a-z][a-z0-9.]{0,15}", proptest::collection::vec(any::<u8>(), 0..256)),
            0..6,
        ),
    )
        .prop_map(|(fingerprint, sections)| {
            let mut file = SnapshotFile::new(fingerprint);
            for (name, payload) in sections {
                file.push(&name, payload);
            }
            file
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim 1: the container survives a round trip with contents intact
    /// and re-encodes byte-identically.
    #[test]
    fn container_round_trips_byte_identically(file in arb_container()) {
        let bytes = file.encode();
        let decoded = SnapshotFile::decode(&bytes).expect("valid container decodes");
        prop_assert_eq!(decoded.config_fingerprint, file.config_fingerprint);
        prop_assert_eq!(decoded.sections.len(), file.sections.len());
        for (a, b) in decoded.sections.iter().zip(&file.sections) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.payload, &b.payload);
        }
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Claim 3a: flipping any single byte is rejected with a typed error.
    #[test]
    fn any_single_byte_flip_is_rejected(
        file in arb_container(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = file.encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(
            SnapshotFile::decode(&bytes).is_err(),
            "flip at {pos}/{} was accepted",
            bytes.len(),
        );
    }

    /// Claim 3b: truncating at any point is rejected with a typed error.
    #[test]
    fn any_truncation_is_rejected(file in arb_container(), pos_seed in any::<usize>()) {
        let bytes = file.encode();
        let len = pos_seed % bytes.len(); // strictly shorter than the file
        prop_assert!(
            SnapshotFile::decode(&bytes[..len]).is_err(),
            "truncation to {len}/{} was accepted",
            bytes.len(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Claim 2: kill at a sampled checkpoint barrier, recover from disk,
    /// resume at a sampled worker count — byte-identical to the
    /// uninterrupted run.
    #[test]
    fn resume_matches_uninterrupted_run(s in arb_run()) {
        let config = config_for(s);
        let uninterrupted = run_telescope_sharded(&config, 1).expect("baseline runs");

        let path = temp_path(s.seed);
        let mut options = CheckpointOptions::new(&path);
        options.stop_after_windows = Some(s.kill_after_windows);
        let killed = run_telescope_checkpointed(&config, 1, &options).expect("killed run");
        prop_assert!(killed.checkpoints.interrupted);
        prop_assert!(killed.checkpoints.written >= 1);

        let (snapshot, fell_back) = recover_snapshot(&path).expect("snapshot recovers");
        prop_assert!(!fell_back);
        options.stop_after_windows = None;
        let resumed = resume_telescope_checkpointed(&config, s.workers, &snapshot, &options)
            .expect("resume runs");
        cleanup(&path);
        prop_assert_eq!(digest(&uninterrupted), digest(&resumed.result));
    }
}
