//! Cross-crate tests of the farm's resource-management machinery: binding
//! lifetime caps, granularity, flow-table bounds under floods, and the
//! standby/rollback recycling loop under sustained load.

use potemkin::farm::{FarmConfig, Honeyfarm, RecycleStrategy};
use potemkin::gateway::binding::BindGranularity;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::net::PacketBuilder;
use potemkin::sim::SimTime;
use potemkin::workload::radiation::{RadiationConfig, RadiationModel};
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const SCANNER2: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2);
const HP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 42);

fn syn(src: Ipv4Addr, dst: Ipv4Addr) -> potemkin::net::Packet {
    PacketBuilder::new(src, dst).tcp_syn(40_000, 445)
}

#[test]
fn hard_lifetime_cap_recycles_a_chatty_binding() {
    let mut cfg = FarmConfig::small_test();
    cfg.gateway.policy.binding_idle_timeout = SimTime::from_secs(30);
    cfg.gateway.policy.binding_max_lifetime = SimTime::from_secs(120);
    let mut farm = Honeyfarm::new(cfg).unwrap();

    // Keep the binding active every 10 s — idle never triggers.
    farm.inject_external(SimTime::ZERO, syn(SCANNER, HP));
    let mut recycled_at = None;
    for s in (10..360).step_by(10) {
        let now = SimTime::from_secs(s);
        farm.tick(now);
        if farm.live_vms() == 0 {
            recycled_at = Some(s);
            break;
        }
        farm.inject_external(now, syn(SCANNER, HP));
    }
    let at = recycled_at.expect("hard cap must fire despite constant activity");
    assert!((120..=180).contains(&at), "recycled at {at}s");
    // The next packet gets a *fresh* VM (pristine state).
    farm.inject_external(SimTime::from_secs(400), syn(SCANNER, HP));
    assert_eq!(farm.live_vms(), 1);
    assert!(farm.stats().vms_cloned >= 2);
}

#[test]
fn per_source_destination_granularity_isolates_attackers_end_to_end() {
    let mut cfg = FarmConfig::small_test();
    cfg.gateway.granularity = BindGranularity::PerSourceDestination;
    cfg.frames_per_server = 200_000;
    let mut farm = Honeyfarm::new(cfg).unwrap();

    // Two scanners probe the same address: two separate VMs.
    farm.inject_external(SimTime::ZERO, syn(SCANNER, HP));
    farm.inject_external(SimTime::ZERO, syn(SCANNER2, HP));
    assert_eq!(farm.live_vms(), 2, "per-(src,dst): one VM per attacker");

    // Under the default granularity they share one VM.
    let mut farm2 = Honeyfarm::new(FarmConfig::small_test()).unwrap();
    farm2.inject_external(SimTime::ZERO, syn(SCANNER, HP));
    farm2.inject_external(SimTime::ZERO, syn(SCANNER2, HP));
    assert_eq!(farm2.live_vms(), 1, "per-dst: attackers share the address's VM");
}

#[test]
fn flow_table_bound_survives_a_scan_flood() {
    let mut cfg = FarmConfig::small_test();
    cfg.gateway.policy.max_flows = Some(500);
    cfg.gateway.policy.per_source_vm_limit = Some(4); // don't spend VMs on the flood
    cfg.frames_per_server = 200_000;
    let mut farm = Honeyfarm::new(cfg).unwrap();

    // One source floods 5 000 one-packet flows.
    for i in 0..5_000u32 {
        let dst = Ipv4Addr::from(0x0A01_0000 + (i % 8_192));
        let p = PacketBuilder::new(SCANNER, dst).tcp_syn((i % 60_000) as u16, 445);
        farm.inject_external(SimTime::from_millis(u64::from(i)), p);
    }
    assert!(
        farm.gateway().live_flows() <= 500,
        "flow table bounded: {}",
        farm.gateway().live_flows()
    );
    assert_eq!(farm.live_vms(), 4, "quota held");
}

#[test]
fn rollback_recycling_sustains_load_without_leaking() {
    let mut cfg = FarmConfig::small_test();
    cfg.recycle = RecycleStrategy::RollbackToPool;
    cfg.standby_per_host = 4;
    cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(5));
    cfg.frames_per_server = 2_000_000;
    cfg.max_domains_per_server = 8_192;
    let mut farm = Honeyfarm::new(cfg).unwrap();
    let baseline = farm.hosts()[0].memory_report().used_frames;

    let mut model = RadiationModel::new(RadiationConfig::default(), 321);
    let trace = model.generate(SimTime::from_secs(90));
    let mut last_tick = SimTime::ZERO;
    for event in trace.events() {
        farm.inject_external(event.at, event.packet.clone());
        if event.at.saturating_sub(last_tick) >= SimTime::from_secs(1) {
            farm.tick(event.at);
            last_tick = event.at;
        }
    }
    let stats = farm.stats();
    assert!(
        stats.counters.get("vms_rolled_back") > 20,
        "rollbacks: {}",
        stats.counters.get("vms_rolled_back")
    );
    assert!(stats.counters.get("standby_hits") > stats.vms_cloned / 2, "pool serves most contacts");

    // Everything comes back after the load stops: only standby overhead
    // remains (pool domains keep their fixed overhead pages).
    farm.tick(SimTime::from_secs(600));
    assert_eq!(farm.live_vms(), 0);
    let after = farm.hosts()[0].memory_report();
    let overhead = farm.config().overhead_pages;
    let pool = farm.standby_vms() as u64;
    assert_eq!(
        after.used_frames,
        baseline + (pool.saturating_sub(4)) * overhead,
        "frames accounted: pool grew from 4 to {pool}"
    );
    assert_eq!(after.private_frames, pool * overhead);
}

#[test]
fn multi_server_pool_exhaustion_falls_back_to_cloning() {
    let mut cfg = FarmConfig::small_test();
    cfg.servers = 2;
    cfg.standby_per_host = 1;
    cfg.frames_per_server = 200_000;
    let mut farm = Honeyfarm::new(cfg).unwrap();
    assert_eq!(farm.standby_vms(), 2);
    for i in 1..=4u8 {
        farm.inject_external(SimTime::ZERO, syn(SCANNER, Ipv4Addr::new(10, 1, 0, i)));
    }
    assert_eq!(farm.live_vms(), 4);
    assert_eq!(farm.standby_vms(), 0);
    assert_eq!(farm.counters().get("standby_hits"), 2, "two pool hits, two cold clones");
    let flash: u64 = farm.hosts().iter().map(|h| h.lifecycle_counts().0).sum();
    assert_eq!(flash, 4, "2 pool fills + 2 on-demand");
}
