//! End-to-end property tests: the whole farm under arbitrary traffic.
//!
//! Whatever mix of packets arrives (SYNs, odd flag combinations, UDP,
//! pings, garbage ports) in whatever order, the farm must (1) never panic,
//! (2) keep its frame accounting exact, (3) never emit a packet sourced
//! from an address it does not impersonate, and (4) under reflection with
//! no worm, never escape anything but replies and ICMP responses.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use potemkin::farm::{FarmConfig, FarmOutput, Honeyfarm, RecycleStrategy};
use potemkin::net::tcp::TcpFlags;
use potemkin::net::{Packet, PacketBuilder};
use potemkin::sim::SimTime;

#[derive(Clone, Debug)]
enum Stimulus {
    Syn { src: u32, dst: u16, sport: u16, dport: u16 },
    Data { src: u32, dst: u16, flags: u8, payload_len: usize },
    Udp { src: u32, dst: u16, sport: u16, dport: u16 },
    Ping { src: u32, dst: u16, ident: u16 },
    AdvanceAndTick { secs: u8 },
}

fn arb_stimulus() -> impl Strategy<Value = Stimulus> {
    prop_oneof![
        4 => (any::<u32>(), any::<u16>(), any::<u16>(), any::<u16>())
            .prop_map(|(src, dst, sport, dport)| Stimulus::Syn { src, dst, sport, dport }),
        2 => (any::<u32>(), any::<u16>(), 0u8..64, 0usize..64)
            .prop_map(|(src, dst, flags, payload_len)| Stimulus::Data { src, dst, flags, payload_len }),
        2 => (any::<u32>(), any::<u16>(), any::<u16>(), any::<u16>())
            .prop_map(|(src, dst, sport, dport)| Stimulus::Udp { src, dst, sport, dport }),
        1 => (any::<u32>(), any::<u16>(), any::<u16>())
            .prop_map(|(src, dst, ident)| Stimulus::Ping { src, dst, ident }),
        2 => (1u8..30).prop_map(|secs| Stimulus::AdvanceAndTick { secs }),
    ]
}

fn telescope_addr(i: u16) -> Ipv4Addr {
    let [a, b] = i.to_be_bytes();
    Ipv4Addr::new(10, 1, a, b)
}

fn external_src(raw: u32) -> Ipv4Addr {
    // Keep sources outside 10/8 so they are unambiguously external.
    Ipv4Addr::from(0x2000_0000 | (raw & 0x0FFF_FFFF))
}

fn build(stim: &Stimulus) -> Option<Packet> {
    match *stim {
        Stimulus::Syn { src, dst, sport, dport } => {
            Some(PacketBuilder::new(external_src(src), telescope_addr(dst)).tcp_syn(sport, dport))
        }
        Stimulus::Data { src, dst, flags, payload_len } => {
            Some(PacketBuilder::new(external_src(src), telescope_addr(dst)).tcp_segment(
                4_000,
                445,
                TcpFlags::from_byte(flags),
                1,
                1,
                &vec![0xAB; payload_len],
            ))
        }
        Stimulus::Udp { src, dst, sport, dport } => Some(
            PacketBuilder::new(external_src(src), telescope_addr(dst)).udp(sport, dport, b"probe"),
        ),
        Stimulus::Ping { src, dst, ident } => Some(
            PacketBuilder::new(external_src(src), telescope_addr(dst)).icmp_echo(ident, 0, b"p"),
        ),
        Stimulus::AdvanceAndTick { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn farm_survives_arbitrary_traffic(
        stimuli in proptest::collection::vec(arb_stimulus(), 1..120),
        recycle_pick in 0u8..2,
    ) {
        let mut cfg = FarmConfig::small_test();
        cfg.frames_per_server = 2_000_000;
        cfg.max_domains_per_server = 8_192;
        cfg.recycle = if recycle_pick == 0 {
            RecycleStrategy::DestroyAndClone
        } else {
            RecycleStrategy::RollbackToPool
        };
        cfg.gateway.policy.binding_idle_timeout = SimTime::from_secs(20);
        let mut farm = Honeyfarm::new(cfg).unwrap();
        let baseline = farm.hosts()[0].memory_report().used_frames;
        let overhead = farm.config().overhead_pages;

        let mut now = SimTime::ZERO;
        for stim in &stimuli {
            match stim {
                Stimulus::AdvanceAndTick { secs } => {
                    now += SimTime::from_secs(u64::from(*secs));
                    farm.tick(now);
                }
                other => {
                    let packet = build(other).expect("packet stimuli build");
                    farm.inject_external(now, packet);
                }
            }

            // (2) Frame accounting is exact after every step.
            let r = farm.hosts()[0].memory_report();
            prop_assert_eq!(r.used_frames + r.free_frames, r.total_frames);
            prop_assert_eq!(r.used_frames, r.image_frames + r.private_frames);

            // (3) Everything the farm emits is sourced from a telescope
            // address (never a fabricated external identity), and (4)
            // nothing but TCP/ICMP responses leaves under reflection.
            for output in farm.take_outputs() {
                if let FarmOutput::SentExternal(p) = output {
                    let o = p.src().octets();
                    prop_assert!(
                        o[0] == 10 && o[1] == 1,
                        "farm emitted from non-telescope source {}",
                        p.src()
                    );
                }
            }
            prop_assert_eq!(farm.gateway().counters().get("escaped"), 0);
        }

        // Quiescence: after everything expires, only standby-pool overhead
        // remains allocated beyond the image.
        now += SimTime::from_secs(3_600);
        farm.tick(now);
        prop_assert_eq!(farm.live_vms(), 0);
        let r = farm.hosts()[0].memory_report();
        let pool = farm.standby_vms() as u64;
        prop_assert_eq!(r.used_frames, baseline + pool * overhead);
    }

    /// Determinism: identical stimulus sequences give identical farms.
    #[test]
    fn farm_is_deterministic(
        stimuli in proptest::collection::vec(arb_stimulus(), 1..40),
    ) {
        let run = |stimuli: &[Stimulus]| {
            let mut cfg = FarmConfig::small_test();
            cfg.frames_per_server = 1_000_000;
            cfg.max_domains_per_server = 8_192;
            let mut farm = Honeyfarm::new(cfg).unwrap();
            let mut now = SimTime::ZERO;
            for stim in stimuli {
                match stim {
                    Stimulus::AdvanceAndTick { secs } => {
                        now += SimTime::from_secs(u64::from(*secs));
                        farm.tick(now);
                    }
                    other => farm.inject_external(now, build(other).expect("builds")),
                }
            }
            let stats = farm.stats();
            (
                stats.vms_cloned,
                stats.counters.get("packets_in"),
                stats.counters.get("sent_external"),
                stats.total_used_frames(),
            )
        };
        prop_assert_eq!(run(&stimuli), run(&stimuli));
    }
}
