//! Property tests for the observability subsystem.
//!
//! Three claims, each load-bearing for the tracing layer's contract:
//!
//! 1. **Zero observer effect.** Enabling tracing on a sharded replay —
//!    under arbitrary seeds, worker counts, cell counts, and fault
//!    schedules — leaves every deterministic report byte-identical to the
//!    untraced run. A tracer never consults an RNG and never reorders
//!    simulation events; this test is what holds that line.
//! 2. **Flight-recorder retention.** A ring recorder never exceeds its
//!    capacity, drains the newest events oldest-first, and accounts for
//!    every overwritten event in its dropped counter.
//! 3. **Export round-trip.** A Chrome-trace export of an arbitrary
//!    well-nested span tree parses back as valid JSON whose intervals are
//!    strictly nested per lane (every pair of spans on a lane is either
//!    disjoint or one contains the other).
//!
//! Each replay case runs a full telescope scenario twice, so the case
//! budget is kept small; the fixed unit tests in `potemkin_obs` and
//! `potemkin_core::parallel` cover the common configurations on every run.

use proptest::prelude::*;

use potemkin::farm::FarmConfig;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::obs::{
    chrome_trace_json, JsonValue, RecorderMode, RingRecorder, TraceConfig, Tracer,
};
use potemkin::parallel::{run_telescope_sharded, ShardedTelescopeConfig};
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::{FaultPlanConfig, SimTime};
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

const DURATION_SECS: u64 = 4;

#[derive(Clone, Copy, Debug)]
struct SampledRun {
    seed: u64,
    cells: usize,
    workers: usize,
    crash_rate: f64,
    with_worm: bool,
    flight_capacity: usize,
}

fn arb_run() -> impl Strategy<Value = SampledRun> {
    (
        any::<u64>(),
        1usize..=3,
        1usize..=4,
        prop_oneof![Just(0.0), 120.0..600.0f64],
        any::<bool>(),
        64usize..=2_048,
    )
        .prop_map(|(seed, cells, workers, crash_rate, with_worm, flight_capacity)| {
            SampledRun { seed, cells, workers, crash_rate, with_worm, flight_capacity }
        })
}

fn config_for(s: SampledRun, trace: Option<TraceConfig>) -> ShardedTelescopeConfig {
    let mut farm = FarmConfig::small_test();
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(5));
    farm.frames_per_server = 262_144;
    farm.seed = s.seed;
    farm.degradation_ladder = true;
    let mut seed_infections = 0;
    if s.with_worm {
        farm.worm = Some(WormSpec::code_red("10.1.8.0/22".parse().unwrap()));
        seed_infections = 1;
    }
    let duration = SimTime::from_secs(DURATION_SECS);
    let faults = (s.crash_rate > 0.0).then(|| FaultPlanConfig {
        seed: s.seed.wrapping_add(1),
        host_crash_rate_per_hour: s.crash_rate,
        host_recovery_time: SimTime::from_secs(2),
        ..FaultPlanConfig::zero(duration, farm.servers)
    });
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(s.seed)
        .duration(duration)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    let mut builder = ShardedTelescopeConfig::builder(base)
        .cells(s.cells)
        .window(SimTime::from_millis(500))
        .seed_infections(seed_infections);
    if let Some(faults) = faults {
        builder = builder.faults(faults);
    }
    if let Some(trace) = trace {
        builder = builder.trace(trace);
    }
    builder.build().expect("valid sharded config")
}

/// Everything a replay reports except wall-clock telemetry and the trace
/// itself, rendered to one comparable string.
fn report_digest(config: &ShardedTelescopeConfig, workers: usize) -> String {
    let r = run_telescope_sharded(config, workers).expect("replay runs");
    format!(
        "{}|live={}|in={}|cloned={}|recycled={}|forwarded={}|infected={}|remote={}|series={:?}",
        r.degradation.canonical_string(),
        r.stats.live_vms,
        r.stats.counters.get("packets_in"),
        r.stats.vms_cloned,
        r.stats.vms_recycled,
        r.cross_cell_packets,
        r.final_infected,
        r.engine.remote_messages,
        r.live_vm_series.iter().collect::<Vec<_>>(),
    )
}

/// One scripted tracer operation for the export round-trip property.
#[derive(Clone, Copy, Debug)]
enum Op {
    Begin,
    End,
    Instant,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(prop_oneof![Just(Op::Begin), Just(Op::End), Just(Op::Instant)], 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tracing on (flight recorder, sampled capacity) vs. off: the
    /// deterministic report must be byte-identical, and only the traced
    /// run may carry events.
    #[test]
    fn tracing_never_changes_a_report_digest(s in arb_run()) {
        let plain_config = config_for(s, None);
        let traced_config =
            config_for(s, Some(TraceConfig::flight(s.flight_capacity)));
        let plain = report_digest(&plain_config, s.workers);
        let traced = report_digest(&traced_config, s.workers);
        prop_assert_eq!(plain, traced, "tracing changed a deterministic report");
        let plain_run = run_telescope_sharded(&plain_config, s.workers).expect("replay runs");
        let traced_run = run_telescope_sharded(&traced_config, s.workers).expect("replay runs");
        prop_assert!(plain_run.trace.is_empty(), "untraced run must capture nothing");
        prop_assert!(!traced_run.trace.is_empty(), "traced run must capture events");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A flight recorder holds at most `capacity` events, drains the
    /// newest `min(n, capacity)` in order, and counts every overwrite.
    #[test]
    fn ring_recorder_keeps_newest_within_capacity(
        capacity in 1usize..=64,
        n in 0u64..300,
    ) {
        let mut recorder = RingRecorder::new(RecorderMode::Flight { capacity });
        let tracer_events = {
            let mut t = Tracer::new(0, TraceConfig::unbounded());
            for i in 0..n {
                t.instant(SimTime::from_nanos(i), "tick", i);
            }
            t.drain()
        };
        for event in &tracer_events {
            recorder.record(*event);
            prop_assert!(recorder.len() <= capacity, "ring exceeded capacity");
        }
        prop_assert_eq!(recorder.dropped(), n.saturating_sub(capacity as u64));
        let drained = recorder.drain();
        let expect: Vec<u64> = (n.saturating_sub(capacity as u64)..n).collect();
        let got: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        prop_assert_eq!(got, expect, "drain must yield the newest events oldest-first");
    }

    /// An arbitrary op script (with a strictly advancing clock) produces a
    /// Chrome trace that parses as JSON and whose `"X"` intervals per lane
    /// are strictly nested: any two either don't overlap or one contains
    /// the other.
    #[test]
    fn chrome_export_round_trips_with_nested_intervals(
        scripts in proptest::collection::vec(arb_ops(), 1..4),
    ) {
        let mut all_events = Vec::new();
        let mut lane_names = Vec::new();
        for (lane, script) in scripts.iter().enumerate() {
            let lane = lane as u32;
            lane_names.push((lane, format!("lane {lane}")));
            let mut t = Tracer::new(lane, TraceConfig::unbounded());
            let mut clock = 0u64;
            let mut open = Vec::new();
            for op in script {
                // One microsecond per op: no two events share a stamp, so
                // sibling spans can never abut into false overlap.
                clock += 1;
                let now = SimTime::from_micros(clock);
                match op {
                    Op::Begin => open.push(t.begin(now, "work")),
                    Op::End => {
                        if let Some(token) = open.pop() {
                            t.end(now, token);
                        } else {
                            t.instant(now, "noop", 0);
                        }
                    }
                    Op::Instant => t.instant(now, "mark", 1),
                }
            }
            // Close whatever is still open, innermost first.
            while let Some(token) = open.pop() {
                clock += 1;
                t.end(SimTime::from_micros(clock), token);
            }
            all_events.extend(t.drain());
        }

        let doc = chrome_trace_json(&all_events, &lane_names);
        let parsed = JsonValue::parse(&doc).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");

        // Group X intervals (in integer nanoseconds) by tid.
        let mut by_lane: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(JsonValue::as_str) != Some("X") {
                continue;
            }
            let tid = e.get("tid").and_then(JsonValue::as_f64).expect("tid") as u64;
            let ts_ns = (e.get("ts").and_then(JsonValue::as_f64).expect("ts") * 1_000.0).round();
            let dur_ns =
                (e.get("dur").and_then(JsonValue::as_f64).expect("dur") * 1_000.0).round();
            by_lane.entry(tid).or_default().push((ts_ns as u64, ts_ns as u64 + dur_ns as u64));
        }
        for (lane, mut intervals) in by_lane {
            // Outermost first at equal starts, then sweep with a stack.
            intervals.sort_by_key(|&(start, end)| (start, std::cmp::Reverse(end)));
            let mut stack: Vec<(u64, u64)> = Vec::new();
            for (start, end) in intervals {
                while let Some(&(_, open_end)) = stack.last() {
                    if start >= open_end {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(open_start, open_end)) = stack.last() {
                    prop_assert!(
                        open_start <= start && end <= open_end,
                        "lane {}: [{start}, {end}) partially overlaps [{open_start}, {open_end})",
                        lane
                    );
                }
                stack.push((start, end));
            }
        }
    }
}
