//! Steady-state allocation accounting for the hot event/packet path.
//!
//! The sharded engine's throughput claim rests on three primitives that
//! must stop allocating once warm: the recycling wire-buffer pool
//! ([`BufferPool`]), the packet-event arena ([`Slab`]), and the event
//! queue ([`EventQueue`]). This test installs a counting global allocator
//! and drives each primitive through a warmed steady-state cycle,
//! asserting the per-iteration heap traffic is exactly zero.
//!
//! The counter is thread-local (const-initialized, so reading it never
//! allocates), which keeps the accounting immune to other test threads
//! in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use potemkin::net::{BufferPool, Packet, PacketBuilder};
use potemkin::sim::{EventQueue, SimTime, Slab};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the side counter is
// thread-local and never re-enters the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

fn probe(pool: &BufferPool) -> Packet {
    PacketBuilder::new("10.0.0.1".parse().unwrap(), "10.1.2.3".parse().unwrap())
        .pooled(pool)
        .tcp_syn(4444, 445)
}

#[test]
fn warmed_buffer_pool_builds_packets_without_allocating() {
    let pool = BufferPool::new();
    // Warmup: the first build allocates the slot (and interns nothing else).
    drop(probe(&pool));
    drop(probe(&pool));
    let before = allocations();
    for _ in 0..256 {
        let packet = probe(&pool);
        assert_eq!(packet.dst(), "10.1.2.3".parse::<std::net::Ipv4Addr>().unwrap());
        drop(packet);
    }
    assert_eq!(allocations() - before, 0, "steady-state packet builds must recycle");
    let stats = pool.stats();
    assert_eq!(stats.acquires, stats.allocated + stats.reused);
    assert!(stats.reused >= 256, "every steady-state build reuses a slot");
}

#[test]
fn warmed_slab_recycles_slots_without_allocating() {
    let mut slab: Slab<u64> = Slab::new();
    let mut keys = Vec::with_capacity(64);
    // Warmup: grow to the high watermark once.
    for i in 0..64 {
        keys.push(slab.insert(i));
    }
    for key in keys.drain(..) {
        slab.remove(key);
    }
    let before = allocations();
    for round in 0..128u64 {
        let a = slab.insert(round);
        let b = slab.insert(round + 1);
        assert_eq!(slab.remove(a), Some(round));
        assert_eq!(slab.remove(b), Some(round + 1));
    }
    assert_eq!(allocations() - before, 0, "slab churn below the watermark must be free");
    let (inserted, reused) = slab.reuse_stats();
    assert!(reused > 0 && inserted > reused, "freelist must be recycling");
}

#[test]
fn warmed_event_queue_cycles_without_allocating() {
    let mut queue: EventQueue<u64> = EventQueue::new();
    // Warmup: reach peak occupancy once so the heap's buffer is sized.
    for i in 0..64 {
        queue.schedule(SimTime::from_nanos(i), i);
    }
    while queue.pop().is_some() {}
    let before = allocations();
    for round in 0..128u64 {
        for i in 0..32 {
            queue.schedule(SimTime::from_nanos(round * 32 + i), i);
        }
        while queue.pop().is_some() {}
    }
    assert_eq!(allocations() - before, 0, "steady-state scheduling must not grow the heap");
}
