//! Property-based tests on the wire formats: build/parse roundtrips for
//! arbitrary field values, and parse-never-panics on arbitrary bytes.

use proptest::prelude::*;

use potemkin::net::dns::DnsMessage;
use potemkin::net::gre::GreHeader;
use potemkin::net::icmp::IcmpMessage;
use potemkin::net::tcp::{TcpFlags, TcpHeader};
use potemkin::net::{Packet, PacketBuilder};
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn tcp_packet_roundtrips(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flag_bits in 0u8..64,
        ttl in 1u8..=255,
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let p = PacketBuilder::new(src, dst)
            .ttl(ttl)
            .ident(ident)
            .tcp_segment(sport, dport, TcpFlags::from_byte(flag_bits), seq, ack, &payload);
        let reparsed = Packet::parse(p.wire()).expect("own wire output must parse");
        prop_assert_eq!(&reparsed, &p);
        prop_assert_eq!(reparsed.app_payload(), &payload[..]);
        prop_assert_eq!(reparsed.src(), src);
        prop_assert_eq!(reparsed.dst(), dst);
    }

    #[test]
    fn udp_packet_roundtrips(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let p = PacketBuilder::new(src, dst).udp(sport, dport, &payload);
        let reparsed = Packet::parse(p.wire()).expect("own wire output must parse");
        prop_assert_eq!(&reparsed, &p);
    }

    #[test]
    fn icmp_echo_roundtrips(
        src in arb_addr(),
        dst in arb_addr(),
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let p = PacketBuilder::new(src, dst).icmp_echo(ident, seq, &payload);
        prop_assert_eq!(Packet::parse(p.wire()).expect("must parse"), p);
    }

    #[test]
    fn address_rewrite_preserves_payload_and_validity(
        src in arb_addr(),
        dst in arb_addr(),
        new_src in arb_addr(),
        new_dst in arb_addr(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let p = PacketBuilder::new(src, dst).tcp_segment(
            1000, 80, TcpFlags::PSH_ACK, 1, 2, &payload,
        );
        let r = p.rewrite_addresses(new_src, new_dst).expect("rewrite works");
        prop_assert_eq!(r.src(), new_src);
        prop_assert_eq!(r.dst(), new_dst);
        prop_assert_eq!(r.app_payload(), p.app_payload());
        // The rewritten wire bytes are independently valid.
        prop_assert!(Packet::parse(r.wire()).is_ok());
    }

    #[test]
    fn packet_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Packet::parse(&bytes);
    }

    #[test]
    fn corrupting_any_byte_never_panics_and_usually_fails(
        flip_at in 0usize..40,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let p = PacketBuilder::new(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8))
            .tcp_segment(1, 2, TcpFlags::SYN, 0, 0, &payload);
        let mut wire = p.wire().to_vec();
        let idx = flip_at % wire.len();
        wire[idx] ^= 0xff;
        // Must not panic; may or may not parse (some fields are slack).
        let _ = Packet::parse(&wire);
    }

    #[test]
    fn gre_roundtrips(key in proptest::option::of(any::<u32>()), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let h = GreHeader { protocol: 0x0800, key };
        let wire = h.build(&payload);
        let (parsed, inner) = GreHeader::parse(&wire).expect("roundtrip");
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(inner, &payload[..]);
    }

    #[test]
    fn gre_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = GreHeader::parse(&bytes);
    }

    #[test]
    fn icmp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = IcmpMessage::parse(&bytes);
    }

    #[test]
    fn tcp_parse_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        src in arb_addr(),
        dst in arb_addr(),
    ) {
        let _ = TcpHeader::parse(&bytes, src, dst);
    }

    #[test]
    fn dns_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DnsMessage::parse(&bytes);
    }

    #[test]
    fn dns_query_roundtrips(
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z0-9]{1,16}", 1..5),
    ) {
        let name = labels.join(".");
        let q = DnsMessage::query_a(id, &name);
        let parsed = DnsMessage::parse(&q.build().expect("valid name")).expect("roundtrip");
        prop_assert_eq!(parsed, q);
    }
}
