//! Cross-crate containment invariants: for every worm preset and every
//! containment-relevant configuration, reflection keeps attack traffic
//! inside the farm.

use potemkin::farm::{FarmConfig, FarmOutput, Honeyfarm};
use potemkin::gateway::policy::PolicyConfig;
use potemkin::net::addr::Ipv4Prefix;
use potemkin::net::dns::{DnsMessage, DNS_PORT};
use potemkin::net::{PacketBuilder, PacketPayload};
use potemkin::sim::SimTime;
use potemkin::vmm::guest::GuestProfile;
use potemkin::workload::worm::WormSpec;
use std::net::Ipv4Addr;

fn space() -> Ipv4Prefix {
    "10.1.0.0/16".parse().unwrap()
}

fn farm_with_worm(worm: WormSpec) -> Honeyfarm {
    let mut cfg = FarmConfig::small_test();
    cfg.profile = GuestProfile::windows_server(); // listens on all preset ports
    cfg.frames_per_server = 4_000_000;
    cfg.max_domains_per_server = 4_096;
    cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(600));
    cfg.worm = Some(worm);
    Honeyfarm::new(cfg).unwrap()
}

#[test]
fn no_worm_preset_escapes_under_reflection() {
    for worm in
        [WormSpec::slammer(space()), WormSpec::code_red(space()), WormSpec::blaster(space())]
    {
        let name = worm.name;
        let mut farm = farm_with_worm(worm);
        let vm0 = farm.materialize(SimTime::ZERO, Ipv4Addr::new(10, 1, 0, 1)).unwrap();
        farm.seed_infection(vm0).unwrap();
        for i in 0..300u64 {
            farm.worm_probe(SimTime::from_millis(i * 10), vm0, i);
        }
        assert_eq!(
            farm.gateway().counters().get("escaped"),
            0,
            "{name}: probes escaped under reflection"
        );
        let external: Vec<FarmOutput> = farm
            .take_outputs()
            .into_iter()
            .filter(|o| matches!(o, FarmOutput::SentExternal(_)))
            .collect();
        assert!(external.is_empty(), "{name}: {} packets left the farm", external.len());
        assert!(
            farm.infected_vms() > 1,
            "{name}: worm failed to spread internally ({} infected)",
            farm.infected_vms()
        );
    }
}

#[test]
fn blaster_subnet_preference_spreads_fast_in_farm() {
    // Blaster prefers its own /16 — which is exactly the telescope, so
    // in-farm spread is rapid.
    let mut farm = farm_with_worm(WormSpec::blaster(space()));
    let vm0 = farm.materialize(SimTime::ZERO, Ipv4Addr::new(10, 1, 0, 1)).unwrap();
    farm.seed_infection(vm0).unwrap();
    let mut infected_history = vec![1usize];
    for i in 0..200u64 {
        farm.worm_probe(SimTime::from_millis(i * 50), vm0, i);
        infected_history.push(farm.infected_vms());
    }
    let last = *infected_history.last().unwrap();
    assert!(last >= 2, "blaster spread: {last}");
}

#[test]
fn dns_resolution_leads_to_sinkhole_honeypot_not_internet() {
    let mut farm = farm_with_worm(WormSpec::code_red(space()));
    let bot_addr = Ipv4Addr::new(10, 1, 0, 1);
    let vm0 = farm.materialize(SimTime::ZERO, bot_addr).unwrap();
    farm.seed_infection(vm0).unwrap();

    // The bot resolves its C&C host.
    let query = DnsMessage::query_a(77, "cc.botnet.example").build().unwrap();
    let qpkt = PacketBuilder::new(bot_addr, Ipv4Addr::new(8, 8, 8, 8)).udp(5353, DNS_PORT, &query);
    assert!(farm.emit_from_vm(SimTime::ZERO, vm0, qpkt));

    // The gateway answered from the sinkhole; nothing reached 8.8.8.8.
    let outputs = farm.take_outputs();
    assert!(
        !outputs.iter().any(
            |o| matches!(o, FarmOutput::SentExternal(p) if p.dst() == Ipv4Addr::new(8, 8, 8, 8))
        ),
        "DNS query must not escape"
    );
    let (queries, _) = farm.gateway().dns().counts();
    assert_eq!(queries, 1);

    // The DNS reply was delivered back into the VM and consumed by the
    // guest's resolver.
    assert_eq!(farm.gateway().counters().get("dns_answered"), 1);
    assert_eq!(farm.counters().get("dns_responses_consumed"), 1);

    // Bot connects to the resolved address: the connection must reflect to
    // a honeypot impersonating the C&C, never leave.
    let c2_addr = {
        // Find the sinkhole address via the proxy's reverse map.
        let dns = farm.gateway().dns();
        let prefix: Ipv4Prefix = "172.20.0.0/16".parse().unwrap();
        prefix
            .iter()
            .find(|&addr| dns.name_for(addr) == Some("cc.botnet.example"))
            .expect("resolved name must map to a sinkhole address")
    };
    let connect = PacketBuilder::new(bot_addr, c2_addr).tcp_syn(2_000, 6667);
    farm.emit_from_vm(SimTime::from_millis(1), vm0, connect);
    assert!(farm.gateway().counters().get("reflected_sinkhole") >= 1);
    assert_eq!(farm.gateway().counters().get("escaped"), 0);
    // A honeypot now impersonates the C&C server.
    assert!(farm.live_vms() >= 2);
}

#[test]
fn aggressive_recycling_extinguishes_the_internal_epidemic() {
    // The SIS prediction (workload::epidemic::SisModel): the farm's internal
    // epidemic dies out when the recycle rate γ exceeds the growth rate β.
    // Worm: 0.5 probes/s over a /24 (β ≈ 0.5/s). Hard VM lifetime 1 s
    // (γ = 1/s) → subcritical → extinction. Lifetime 600 s → supercritical
    // → saturation.
    use potemkin::scenario::{run_outbreak, OutbreakConfig};

    let run_with_lifetime = |lifetime: SimTime| {
        let mut farm = FarmConfig::small_test();
        farm.gateway.policy = PolicyConfig::reflect();
        farm.gateway.policy.binding_idle_timeout = SimTime::from_secs(3_600);
        farm.gateway.policy.binding_max_lifetime = lifetime;
        farm.worm =
            Some(WormSpec { scan_rate: 0.5, ..WormSpec::code_red("10.1.0.0/24".parse().unwrap()) });
        farm.frames_per_server = 2_000_000;
        farm.max_domains_per_server = 4_096;
        let config = OutbreakConfig::builder(farm)
            .initial_infections(4)
            .duration(SimTime::from_secs(60))
            .sample_interval(SimTime::from_secs(1))
            .tick_interval(SimTime::from_millis(500))
            .build()
            .expect("valid config");
        run_outbreak(config).expect("outbreak runs")
    };

    let subcritical = run_with_lifetime(SimTime::from_secs(1));
    assert!(
        subcritical.final_infected <= 2,
        "subcritical epidemic must die out: {} infected",
        subcritical.final_infected
    );
    assert_eq!(subcritical.escapes, 0);

    let supercritical = run_with_lifetime(SimTime::from_secs(600));
    assert!(
        supercritical.final_infected > 100,
        "supercritical epidemic must spread: {} infected",
        supercritical.final_infected
    );
    assert_eq!(supercritical.escapes, 0);
}

#[test]
fn per_source_quota_limits_scanner_resource_consumption() {
    let mut cfg = FarmConfig::small_test();
    cfg.gateway.policy.per_source_vm_limit = Some(5);
    cfg.frames_per_server = 2_000_000;
    cfg.max_domains_per_server = 4_096;
    let mut farm = Honeyfarm::new(cfg).unwrap();
    let scanner = Ipv4Addr::new(198, 51, 100, 66);
    for i in 0..50u32 {
        let dst = Ipv4Addr::from(0x0A01_0100 + i);
        farm.inject_external(SimTime::ZERO, PacketBuilder::new(scanner, dst).tcp_syn(1, 445));
    }
    assert_eq!(farm.live_vms(), 5, "quota caps one scanner at 5 VMs");
    // An unrelated source is unaffected.
    let other = Ipv4Addr::new(198, 51, 100, 67);
    farm.inject_external(
        SimTime::ZERO,
        PacketBuilder::new(other, Ipv4Addr::new(10, 1, 2, 200)).tcp_syn(1, 445),
    );
    assert_eq!(farm.live_vms(), 6);
}

#[test]
fn rate_limited_worm_still_contained_but_slower() {
    let mut cfg = FarmConfig::small_test();
    cfg.profile = GuestProfile::windows_server();
    cfg.frames_per_server = 4_000_000;
    cfg.max_domains_per_server = 4_096;
    cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(600));
    cfg.gateway.policy.outbound_pps_limit = Some(2.0);
    cfg.gateway.policy.outbound_burst = 2.0;
    cfg.worm = Some(WormSpec::slammer(space()));
    let mut farm = Honeyfarm::new(cfg).unwrap();
    let vm0 = farm.materialize(SimTime::ZERO, Ipv4Addr::new(10, 1, 0, 1)).unwrap();
    farm.seed_infection(vm0).unwrap();
    // 100 probes in one simulated second: only the burst + refill survive.
    for i in 0..100u64 {
        farm.worm_probe(SimTime::from_millis(i * 10), vm0, i);
    }
    let dropped = farm.gateway().counters().get("dropped_rate_limited");
    let reflected = farm.gateway().counters().get("reflected");
    assert!(dropped > 80, "dropped: {dropped}");
    assert!(reflected <= 5, "reflected: {reflected}");
    assert_eq!(farm.gateway().counters().get("escaped"), 0);
}

#[test]
fn udp_probe_to_closed_port_gets_unreachable_back() {
    // Fidelity detail: a real stack answers closed UDP ports with ICMP.
    let mut farm = Honeyfarm::new(FarmConfig::small_test()).unwrap();
    let probe = PacketBuilder::new(Ipv4Addr::new(6, 6, 6, 6), Ipv4Addr::new(10, 1, 0, 3)).udp(
        9_000,
        9_999,
        b"anyone-there",
    );
    farm.inject_external(SimTime::ZERO, probe);
    let unreachable = farm
        .take_outputs()
        .into_iter()
        .find_map(|o| match o {
            FarmOutput::SentExternal(p) => match p.payload() {
                PacketPayload::Icmp(potemkin::net::icmp::IcmpMessage::DestUnreachable {
                    code,
                    ..
                }) => Some(*code),
                _ => None,
            },
            _ => None,
        })
        .expect("ICMP unreachable expected");
    assert_eq!(unreachable, potemkin::net::icmp::IcmpMessage::CODE_PORT_UNREACHABLE);
}
