//! Property tests on the trace serialization formats: arbitrary packet
//! mixes roundtrip bit-exactly through both the text format and libpcap.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use potemkin::net::pcap;
use potemkin::net::tcp::TcpFlags;
use potemkin::net::{Packet, PacketBuilder};
use potemkin::sim::SimTime;
use potemkin::workload::trace::Trace;

#[derive(Clone, Debug)]
enum AnyPacket {
    Tcp { src: u32, dst: u32, sport: u16, dport: u16, flags: u8, payload: Vec<u8> },
    Udp { src: u32, dst: u32, sport: u16, dport: u16, payload: Vec<u8> },
    Icmp { src: u32, dst: u32, ident: u16, seq: u16 },
}

fn arb_packet() -> impl Strategy<Value = AnyPacket> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            0u8..64,
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(src, dst, sport, dport, flags, payload)| AnyPacket::Tcp {
                src,
                dst,
                sport,
                dport,
                flags,
                payload
            }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(src, dst, sport, dport, payload)| AnyPacket::Udp {
                src,
                dst,
                sport,
                dport,
                payload
            }),
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>())
            .prop_map(|(src, dst, ident, seq)| AnyPacket::Icmp { src, dst, ident, seq }),
    ]
}

fn build(p: &AnyPacket) -> Packet {
    match p {
        AnyPacket::Tcp { src, dst, sport, dport, flags, payload } => PacketBuilder::new(
            Ipv4Addr::from(*src),
            Ipv4Addr::from(*dst),
        )
        .tcp_segment(*sport, *dport, TcpFlags::from_byte(*flags), 1, 2, payload),
        AnyPacket::Udp { src, dst, sport, dport, payload } => {
            PacketBuilder::new(Ipv4Addr::from(*src), Ipv4Addr::from(*dst))
                .udp(*sport, *dport, payload)
        }
        AnyPacket::Icmp { src, dst, ident, seq } => {
            PacketBuilder::new(Ipv4Addr::from(*src), Ipv4Addr::from(*dst))
                .icmp_echo(*ident, *seq, b"x")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_roundtrips_arbitrary_traces(
        items in proptest::collection::vec((0u64..1_000_000_000u64, arb_packet()), 0..40),
    ) {
        let mut trace = Trace::new();
        for (nanos, p) in &items {
            trace.push(SimTime::from_nanos(*nanos), build(p));
        }
        trace.sort();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let parsed = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.events().iter().zip(trace.events()) {
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(&a.packet, &b.packet);
        }
    }

    #[test]
    fn pcap_format_roundtrips_arbitrary_traces(
        items in proptest::collection::vec((0u64..4_000_000u64, arb_packet()), 0..40),
    ) {
        let mut trace = Trace::new();
        for (micros, p) in &items {
            trace.push(SimTime::from_micros(*micros), build(p));
        }
        trace.sort();
        let mut buf = Vec::new();
        trace.write_pcap(&mut buf).unwrap();
        let records = pcap::parse_pcap(&buf).unwrap();
        prop_assert_eq!(records.len(), trace.len());
        for (rec, ev) in records.iter().zip(trace.events()) {
            prop_assert_eq!(&rec.packet, &ev.packet);
            let rebuilt = u64::from(rec.ts_sec) * 1_000_000 + u64::from(rec.ts_usec);
            prop_assert_eq!(rebuilt, ev.at.as_micros());
        }
    }

    #[test]
    fn pcap_parse_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pcap::parse_pcap(&bytes);
    }
}
