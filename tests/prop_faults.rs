//! Property tests for the fault-injection harness.
//!
//! Two invariants, under arbitrary sampled fault schedules:
//!
//! 1. **Determinism** — the same `FaultPlan` seed produces byte-identical
//!    [`DegradationReport`]s across independent runs of the same scenario.
//! 2. **Containment** — no fault schedule (crashes, clone faults, stalls,
//!    tunnel loss) lets a third-party packet escape: everything the farm
//!    emits is a reply sourced from a telescope address, and the gateway's
//!    escape counter stays zero.
//!
//! [`DegradationReport`]: potemkin::report::DegradationReport

use proptest::prelude::*;
use std::net::Ipv4Addr;

use potemkin::farm::{FarmConfig, FarmOutput, Honeyfarm};
use potemkin::gateway::policy::PolicyConfig;
use potemkin::net::PacketBuilder;
use potemkin::report::DegradationReport;
use potemkin::sim::{FaultPlan, FaultPlanConfig, SimTime};
use potemkin::vmm::RetryPolicy;

const DURATION_SECS: u64 = 20;
const SERVERS: usize = 2;

#[derive(Clone, Copy, Debug)]
struct SampledFaults {
    seed: u64,
    crash_rate: f64,
    clone_prob: f64,
    stall_rate: f64,
    tunnel_rate: f64,
}

fn arb_faults() -> impl Strategy<Value = SampledFaults> {
    (any::<u64>(), 0.0..900.0f64, 0.0..0.5f64, 0.0..240.0f64, 0.0..240.0f64).prop_map(
        |(seed, crash_rate, clone_prob, stall_rate, tunnel_rate)| SampledFaults {
            seed,
            crash_rate,
            clone_prob,
            stall_rate,
            tunnel_rate,
        },
    )
}

fn plan_from(s: SampledFaults) -> FaultPlan {
    FaultPlan::generate(&FaultPlanConfig {
        seed: s.seed,
        host_crash_rate_per_hour: s.crash_rate,
        host_recovery_time: SimTime::from_secs(5),
        clone_failure_prob: s.clone_prob,
        gateway_stall_rate_per_hour: s.stall_rate,
        tunnel_degrade_rate_per_hour: s.tunnel_rate,
        tunnel_loss: 0.5,
        ..FaultPlanConfig::zero(SimTime::from_secs(DURATION_SECS), SERVERS)
    })
}

/// Drives a fixed deterministic traffic pattern against a farm running the
/// sampled fault plan; returns the canonical report and the emissions.
fn run_once(s: SampledFaults) -> (String, u64, Vec<FarmOutput>) {
    let mut cfg = FarmConfig::small_test();
    cfg.servers = SERVERS;
    cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(8));
    cfg.retry = Some(RetryPolicy::default_clone());
    cfg.degradation_ladder = true;
    let mut farm = Honeyfarm::new(cfg).unwrap();
    farm.install_fault_plan(plan_from(s));

    for i in 0..(DURATION_SECS * 4) {
        let now = SimTime::from_millis(i * 250);
        let src = Ipv4Addr::new(20, 0, (i / 7) as u8, (1 + i % 13) as u8);
        let dst = Ipv4Addr::new(10, 1, 0, (1 + i % 40) as u8);
        farm.inject_external(now, PacketBuilder::new(src, dst).tcp_syn(40_000, 445));
        if i % 4 == 3 {
            farm.tick(now);
        }
    }
    farm.tick(SimTime::from_secs(DURATION_SECS));
    let report = DegradationReport::collect(&farm);
    let escaped = farm.gateway().counters().get("escaped");
    let outputs = farm.take_outputs();
    (report.canonical_string(), escaped, outputs)
}

proptest! {
    /// Same fault seed, same scenario: the degradation report must be
    /// byte-identical across two independent runs.
    #[test]
    fn same_fault_seed_gives_byte_identical_reports(s in arb_faults()) {
        let (report_a, _, _) = run_once(s);
        let (report_b, _, _) = run_once(s);
        prop_assert_eq!(report_a, report_b);
    }

    /// No sampled fault schedule may break containment: zero escapes, and
    /// every emitted packet is a reply from an impersonated telescope
    /// address back to an external host.
    #[test]
    fn containment_holds_under_every_fault_schedule(s in arb_faults()) {
        let (report, escaped, outputs) = run_once(s);
        prop_assert_eq!(escaped, 0, "gateway escape counter moved");
        prop_assert!(report.contains("escaped=0"));
        for output in &outputs {
            if let FarmOutput::SentExternal(p) = output {
                let src = p.src().octets();
                prop_assert!(
                    src[0] == 10 && src[1] == 1,
                    "emission sourced outside the telescope: {:?}", p.src()
                );
                let dst = p.dst().octets();
                prop_assert!(
                    !(dst[0] == 10 && dst[1] == 1),
                    "reply aimed back into the farm leaked out: {:?}", p.dst()
                );
            }
        }
    }

    /// A crash-heavy plan with recovery must leave the farm serviceable:
    /// after the horizon, a fresh address can still be bound whenever at
    /// least one host is up.
    #[test]
    fn farm_stays_serviceable_after_the_fault_horizon(seed in any::<u64>()) {
        let s = SampledFaults {
            seed,
            crash_rate: 600.0,
            clone_prob: 0.0,
            stall_rate: 0.0,
            tunnel_rate: 0.0,
        };
        let (_, escaped, _) = run_once(s);
        prop_assert_eq!(escaped, 0);
        // Rebuild and run to completion, then poke a brand-new address.
        let mut cfg = FarmConfig::small_test();
        cfg.servers = SERVERS;
        cfg.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(8));
        cfg.degradation_ladder = true;
        let mut farm = Honeyfarm::new(cfg).unwrap();
        farm.install_fault_plan(plan_from(s));
        let after = SimTime::from_secs(DURATION_SECS + 30);
        farm.tick(after);
        let up = farm.hosts().iter().filter(|h| h.is_alive()).count();
        let probe = PacketBuilder::new(Ipv4Addr::new(21, 0, 0, 1), Ipv4Addr::new(10, 1, 9, 9))
            .tcp_syn(1234, 445);
        farm.inject_external(after, probe);
        if up > 0 {
            prop_assert_eq!(farm.live_vms(), 1, "an up host must serve a new address");
        }
    }
}
