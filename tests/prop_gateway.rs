//! Property-based tests on gateway invariants: whatever packets arrive in
//! whatever order, (1) reflection mode never produces a ForwardExternal for
//! a non-reply, (2) the binder's accounting stays consistent, (3) flow
//! canonicalization is total.

use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

use potemkin::gateway::binding::{AddressBinder, BindGranularity, VmRef};
use potemkin::gateway::gateway::{Gateway, GatewayAction, GatewayConfig};
use potemkin::gateway::policy::PolicyConfig;
use potemkin::net::{FlowKey, PacketBuilder};
use potemkin::sim::SimTime;

fn telescope_addr(i: u16) -> Ipv4Addr {
    let [a, b] = i.to_be_bytes();
    Ipv4Addr::new(10, 1, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under reflection, a VM's new outbound connections NEVER escape, no
    /// matter the destination mix.
    #[test]
    fn reflection_never_forwards_new_outbound(
        dests in proptest::collection::vec(any::<u32>(), 1..80),
        ports in proptest::collection::vec(1u16..u16::MAX, 1..80),
    ) {
        let mut g = Gateway::new(
            GatewayConfig::builder().policy(PolicyConfig::reflect()).build().unwrap(),
        );
        let t = SimTime::ZERO;
        let vm_addr = telescope_addr(1);
        g.bind(t, Ipv4Addr::new(6, 6, 6, 6), vm_addr, VmRef(0));
        for (i, (&d, &port)) in dests.iter().zip(ports.iter().cycle()).enumerate() {
            let dst = Ipv4Addr::from(d);
            if dst == vm_addr { continue; }
            let p = PacketBuilder::new(vm_addr, dst).tcp_syn(1_024 + i as u16, port);
            match g.on_outbound(t, VmRef(0), p) {
                GatewayAction::ForwardExternal(fp) => {
                    prop_assert!(false, "escaped to {}", fp.dst());
                }
                GatewayAction::Deliver { .. }
                | GatewayAction::Reflect { .. }
                | GatewayAction::Drop { .. }
                | GatewayAction::GatewayReply(_)
                | GatewayAction::CloneAndDeliver { .. } => {}
            }
        }
        prop_assert_eq!(g.counters().get("escaped"), 0);
    }

    /// Binder accounting: live count equals binds minus (expiries + unbinds
    /// + replacements), and per-source counters sum to the live count.
    #[test]
    fn binder_accounting_consistent(
        ops in proptest::collection::vec((any::<u16>(), any::<u8>(), 0u64..120), 1..200),
    ) {
        let mut binder = AddressBinder::new(
            BindGranularity::PerDestination,
            SimTime::from_secs(30),
            SimTime::MAX,
            None,
        );
        let mut now = SimTime::ZERO;
        let mut live: HashSet<Ipv4Addr> = HashSet::new();
        for (vmref, (dst_raw, src_raw, advance)) in ops.into_iter().enumerate() {
            now += SimTime::from_secs(advance);
            for e in binder.expire(now) {
                prop_assert!(live.remove(&e.key.dst), "expired unknown binding");
            }
            let dst = telescope_addr(dst_raw % 64);
            let src = Ipv4Addr::new(99, 99, 99, src_raw);
            binder.bind(now, src, dst, VmRef(vmref as u64));
            live.insert(dst);
            prop_assert_eq!(binder.len(), live.len());
        }
        // Everything expires eventually.
        now += SimTime::from_secs(3_600);
        let expired = binder.expire(now);
        prop_assert_eq!(expired.len(), live.len());
        prop_assert!(binder.is_empty());
    }

    /// Flow canonicalization: total, idempotent, direction-independent, and
    /// injective across distinct connections.
    #[test]
    fn flow_canonicalization_properties(
        a in any::<u32>(), b in any::<u32>(),
        pa in any::<u16>(), pb in any::<u16>(),
    ) {
        let k = FlowKey::tcp(Ipv4Addr::from(a), pa, Ipv4Addr::from(b), pb);
        let c = k.canonical();
        prop_assert_eq!(c.canonical(), c, "idempotent");
        prop_assert_eq!(k.reversed().canonical(), c, "direction independent");
        prop_assert_eq!(k.reversed().reversed(), k, "reverse is involutive");
    }

    /// The inbound pipeline is total: any syntactically valid packet gets
    /// exactly one action without panicking, in every mode.
    #[test]
    fn inbound_pipeline_total(
        src in any::<u32>(),
        dst_raw in any::<u16>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        mode_pick in 0u8..3,
    ) {
        let policy = match mode_pick {
            0 => PolicyConfig::reflect(),
            1 => PolicyConfig::drop_all(),
            _ => PolicyConfig::allow_all(),
        };
        let mut g = Gateway::new(GatewayConfig::builder().policy(policy).build().unwrap());
        let p = PacketBuilder::new(Ipv4Addr::from(src), telescope_addr(dst_raw))
            .tcp_syn(sport, dport);
        let action = g.on_inbound(SimTime::ZERO, p);
        // First contact is always a clone request (no filters configured).
        let is_clone_request = matches!(action, GatewayAction::CloneAndDeliver { .. });
        prop_assert!(is_clone_request);
        prop_assert_eq!(g.counters_snapshot().get("packets_in"), 1);
    }
}
