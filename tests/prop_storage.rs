//! Property tests for the content-addressed chunked block store.
//!
//! Three claims, sampled rather than enumerated:
//!
//! 1. **Chunked ≡ flat.** For any disk geometry (size, chunk size, content
//!    seed) and any overlay write pattern, a chunked base + overlay disk
//!    reads exactly what the flat model computes: the golden content
//!    formula everywhere, overridden by the latest overlay write. Chunk
//!    geometry is invisible to guests.
//! 2. **Dedupe is content-faithful.** Same-seed images materialized into
//!    one store occupy one stored copy per distinct chunk, and every
//!    stored chunk hashes back to the key it is filed under — dedupe can
//!    never alias two different contents.
//! 3. **Restore ≡ uninterrupted.** For any sampled scenario and chunk
//!    geometry (including the flat 1-block layout), killing a run at a
//!    checkpoint barrier, recovering the snapshot — whose disks are
//!    manifest references, not block walks — and resuming produces a
//!    report digest byte-identical to the run that was never interrupted,
//!    at any worker count.
//!
//! Each resume case replays a full telescope scenario three times, so the
//! case budget is kept small (same rationale as `tests/prop_snapshot.rs`).

use std::collections::HashMap;

use proptest::prelude::*;

use potemkin::checkpoint::{
    recover_snapshot, resume_telescope_checkpointed, run_telescope_checkpointed, CheckpointOptions,
};
use potemkin::farm::FarmConfig;
use potemkin::gateway::policy::PolicyConfig;
use potemkin::parallel::{run_telescope_sharded, ShardedTelescopeConfig};
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::SimTime;
use potemkin::vmm::{BaseDisk, ChunkHash, ChunkRef, CowDisk, Manifest, SharedChunkStore};
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

#[derive(Clone, Debug)]
struct SampledDisk {
    seed: u64,
    size: u64,
    chunk_blocks: u64,
    /// `(block_seed, content)` pairs; block = `block_seed % size`, so any
    /// sampled pattern is valid for any sampled size.
    writes: Vec<(u64, u64)>,
}

fn arb_disk() -> impl Strategy<Value = SampledDisk> {
    (
        1u64..=500,
        any::<u64>(),
        1u64..=64,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40),
    )
        .prop_map(|(size, seed, chunk_blocks, writes)| SampledDisk {
            seed,
            size,
            chunk_blocks,
            writes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim 1: chunked reads equal the flat model under any geometry and
    /// write pattern.
    #[test]
    fn chunked_disk_reads_match_flat_model(d in arb_disk()) {
        let store = SharedChunkStore::new_memory();
        let base = BaseDisk::open(&store, d.size, d.chunk_blocks, d.seed);
        let mut disk = CowDisk::new(base);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for &(block_seed, content) in &d.writes {
            let block = block_seed % d.size;
            disk.write(block, content).expect("write in range");
            model.insert(block, content);
        }
        for block in 0..d.size {
            let expect = model
                .get(&block)
                .copied()
                .unwrap_or_else(|| Manifest::block_content(d.seed, block));
            prop_assert_eq!(disk.read(block).expect("read in range"), expect);
        }
        prop_assert!(disk.read(d.size).is_err(), "out-of-range read must fail typed");
    }

    /// Claim 2: same-seed images cost one stored copy per distinct chunk,
    /// and every stored chunk hashes back to its key.
    #[test]
    fn dedupe_is_content_faithful(
        seed in any::<u64>(),
        size in 1u64..=300,
        chunk_blocks in 1u64..=32,
        images in 2usize..=4,
    ) {
        let store = SharedChunkStore::new_memory();
        let mut manifests: Vec<Manifest> =
            (0..images).map(|_| Manifest::new(size, chunk_blocks, seed)).collect();
        for m in &mut manifests {
            for block in 0..size {
                prop_assert_eq!(
                    m.read(&store, block).expect("read in range"),
                    Manifest::block_content(seed, block),
                );
            }
        }
        let stats = store.stats();
        let chunks = size.div_ceil(chunk_blocks);
        prop_assert_eq!(stats.resident_chunks, chunks, "one stored copy per distinct chunk");
        prop_assert_eq!(stats.puts, chunks * images as u64);
        prop_assert_eq!(stats.dedupe_hits, chunks * (images as u64 - 1));
        for m in &manifests {
            for slot in m.slots() {
                let ChunkRef::Stored(hash) = *slot else {
                    panic!("every chunk was read, so every slot is stored");
                };
                let words = store.get(hash).expect("stored chunk exists");
                prop_assert_eq!(ChunkHash::of_words(&words), hash, "hash round-trips");
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct SampledRun {
    seed: u64,
    cells: usize,
    workers: usize,
    kill_after_windows: u64,
    chunk_blocks: u64,
    with_worm: bool,
}

fn arb_run() -> impl Strategy<Value = SampledRun> {
    (
        any::<u64>(),
        1usize..=3,
        1usize..=4,
        2u64..=3,
        prop_oneof![Just(1u64), Just(16u64), Just(64u64)],
        any::<bool>(),
    )
        .prop_map(|(seed, cells, workers, kill_after_windows, chunk_blocks, with_worm)| {
            SampledRun { seed, cells, workers, kill_after_windows, chunk_blocks, with_worm }
        })
}

/// Trimmed guest footprint, same rationale as `tests/prop_snapshot.rs`.
fn config_for(s: SampledRun) -> ShardedTelescopeConfig {
    let mut farm = FarmConfig::small_test();
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(10));
    farm.frames_per_server = 32_768;
    let mut profile = potemkin::vmm::guest::GuestProfile::small();
    profile.memory_pages = 1_024;
    profile.disk_blocks = 512;
    farm.profile = profile;
    farm.seed = s.seed;
    farm.disk_chunk_blocks = s.chunk_blocks;
    let mut seed_infections = 0;
    if s.with_worm {
        farm.worm = Some(WormSpec::code_red("10.1.8.0/26".parse().unwrap()));
        seed_infections = 1;
    }
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(s.seed)
        .duration(SimTime::from_secs(2))
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    ShardedTelescopeConfig::builder(base)
        .cells(s.cells)
        .window(SimTime::from_millis(500))
        .seed_infections(seed_infections)
        .build()
        .expect("valid sharded config")
}

/// Everything a replay reports except wall-clock telemetry, rendered to
/// one comparable string.
fn digest(r: &potemkin::parallel::ShardedTelescopeResult) -> String {
    format!(
        "{}|live={}|in={}|packets={}|forwarded={}|infected={}|remote={}|series={:?}",
        r.degradation.canonical_string(),
        r.stats.live_vms,
        r.stats.counters.get("packets_in"),
        r.packets,
        r.cross_cell_packets,
        r.final_infected,
        r.engine.remote_messages,
        r.live_vm_series.iter().collect::<Vec<_>>(),
    )
}

fn temp_path(tag: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("potemkin-prop-store-{}-{tag:016x}.snap", std::process::id()));
    p
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut prev = path.to_path_buf();
    if let Some(name) = path.file_name() {
        let mut name = name.to_os_string();
        name.push(".prev");
        prev.set_file_name(name);
        let _ = std::fs::remove_file(&prev);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Claim 3: kill at a barrier, recover the manifest-reference
    /// snapshot, resume at a sampled worker count and chunk geometry —
    /// byte-identical to the uninterrupted run. The digest is also
    /// invariant across chunk geometries: the flat layout run (same
    /// scenario, `disk_chunk_blocks = 1`) reports the same bytes.
    #[test]
    fn restore_from_manifests_matches_uninterrupted_run(s in arb_run()) {
        let config = config_for(s);
        let uninterrupted = run_telescope_sharded(&config, 1).expect("baseline runs");
        let baseline = digest(&uninterrupted);

        let flat = config_for(SampledRun { chunk_blocks: 1, ..s });
        let flat_run = run_telescope_sharded(&flat, 1).expect("flat run");
        prop_assert_eq!(&digest(&flat_run), &baseline, "chunk geometry leaked into the report");

        let path = temp_path(s.seed);
        let mut options = CheckpointOptions::new(&path);
        options.stop_after_windows = Some(s.kill_after_windows);
        let killed = run_telescope_checkpointed(&config, 1, &options).expect("killed run");
        prop_assert!(killed.checkpoints.interrupted);

        let (snapshot, fell_back) = recover_snapshot(&path).expect("snapshot recovers");
        prop_assert!(!fell_back);
        options.stop_after_windows = None;
        let resumed = resume_telescope_checkpointed(&config, s.workers, &snapshot, &options)
            .expect("resume runs");
        cleanup(&path);
        prop_assert_eq!(&digest(&resumed.result), &baseline);
    }
}
