//! Property tests for the federated multi-farm telescope.
//!
//! The federation tier's core claim extends the sharded engine's: for a
//! fixed `(seed, cells, window)` over a fixed total monitored range, the
//! *farm grouping* is invisible — running the same replay as one farm or
//! as N farms behind the BGP-style routing tier produces a byte-identical
//! merged report, under arbitrary seeds, farm counts, worker counts, and
//! fault schedules. Cross-farm worm reflection rides GRE through the tier
//! and must land exactly where the single-farm fabric would have put it.
//!
//! Each case replays a full federated scenario per layout, so the case
//! budget is kept small; the fixed unit tests in
//! `potemkin_core::federation` cover the common topologies on every run.

use proptest::prelude::*;

use potemkin::farm::FarmConfig;
use potemkin::federation::{run_telescope_federated, FederatedTelescopeConfig};
use potemkin::gateway::policy::PolicyConfig;
use potemkin::scenario::TelescopeConfig;
use potemkin::sim::{FaultPlanConfig, SimTime};
use potemkin::workload::radiation::RadiationConfig;
use potemkin::workload::worm::WormSpec;

const DURATION_SECS: u64 = 3;

#[derive(Clone, Copy, Debug)]
struct SampledRun {
    seed: u64,
    /// Farm count for the federated layout (the reference is 1 farm).
    farms: usize,
    /// Global cell count, fixed across the compared layouts.
    cells: usize,
    workers: usize,
    window_ms: u64,
    crash_rate: f64,
    clone_prob: f64,
    with_worm: bool,
}

fn arb_run() -> impl Strategy<Value = SampledRun> {
    (
        any::<u64>(),
        // Power-of-two farm exponents 1..=3 (2..8 farms) and cell
        // exponents at or above them (farms <= cells <= 8).
        1u32..=3,
        0u32..=1,
        2usize..=6,
        100u64..=1_000,
        prop_oneof![Just(0.0), 120.0..600.0f64],
        prop_oneof![Just(0.0), 0.01..0.3f64],
        any::<bool>(),
    )
        .prop_map(
            |(
                seed,
                farm_exp,
                extra_cell_exp,
                workers,
                window_ms,
                crash_rate,
                clone_prob,
                with_worm,
            )| {
                SampledRun {
                    seed,
                    farms: 1 << farm_exp,
                    cells: 1 << (farm_exp + extra_cell_exp),
                    workers,
                    window_ms,
                    crash_rate,
                    clone_prob,
                    with_worm,
                }
            },
        )
}

fn config_for(s: SampledRun, farms: usize) -> FederatedTelescopeConfig {
    let mut farm = FarmConfig::small_test();
    farm.gateway.policy = PolicyConfig::reflect().with_idle_timeout(SimTime::from_secs(5));
    farm.frames_per_server = 262_144;
    farm.seed = s.seed;
    farm.degradation_ladder = true;
    let mut seed_infections = 0;
    if s.with_worm {
        // The worm targets the whole monitored /16 so reflected probes
        // cross every sampled farm boundary (smaller aligned prefixes sit
        // entirely inside one farm's aggregate at low farm counts).
        farm.worm = Some(WormSpec::code_red("10.1.0.0/16".parse().unwrap()));
        seed_infections = 1;
        // Patient zero must place even when the sampled fault plan injects
        // clone failures: standby binds are pre-cloned fault-free.
        farm.standby_per_host = 1;
    }
    let duration = SimTime::from_secs(DURATION_SECS);
    let faults = (s.crash_rate > 0.0 || s.clone_prob > 0.0).then(|| FaultPlanConfig {
        seed: s.seed.wrapping_add(1),
        host_crash_rate_per_hour: s.crash_rate,
        clone_failure_prob: s.clone_prob,
        host_recovery_time: SimTime::from_secs(2),
        ..FaultPlanConfig::zero(duration, farm.servers)
    });
    let base = TelescopeConfig::builder(farm, RadiationConfig::default())
        .seed(s.seed)
        .duration(duration)
        .sample_interval(SimTime::from_secs(1))
        .tick_interval(SimTime::from_secs(1))
        .build()
        .expect("valid telescope config");
    let mut builder = FederatedTelescopeConfig::builder(base)
        .farms(farms)
        .cells(s.cells)
        .window(SimTime::from_millis(s.window_ms))
        .seed_infections(seed_infections);
    if let Some(faults) = faults {
        builder = builder.faults(faults);
    }
    builder.build().expect("valid federated config")
}

/// Everything a federated replay reports except wall-clock and transport
/// telemetry, rendered to one comparable string.
fn digest(config: &FederatedTelescopeConfig, workers: usize) -> (String, u64) {
    let r = run_telescope_federated(config, workers).expect("federated replay runs");
    (
        format!(
            "{}|live={}|in={}|cloned={}|recycled={}|forwarded={}|infected={}|remote={}|\
             shed={}|series={:?}",
            r.merged.degradation.canonical_string(),
            r.merged.stats.live_vms,
            r.merged.stats.counters.get("packets_in"),
            r.merged.stats.vms_cloned,
            r.merged.stats.vms_recycled,
            r.merged.cross_cell_packets,
            r.merged.final_infected,
            r.merged.engine.remote_messages,
            r.federation.shed_packets,
            r.merged.live_vm_series.iter().collect::<Vec<_>>(),
        ),
        r.merged.degradation.escaped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A federated replay (N farms behind the routing tier, sampled worker
    /// count) must produce a merged report byte-identical to the
    /// single-farm serial reference over the same total range.
    #[test]
    fn federated_replay_matches_single_farm_byte_for_byte(s in arb_run()) {
        let reference = config_for(s, 1);
        let federated = config_for(s, s.farms);
        let (single, _) = digest(&reference, 1);
        let (multi, _) = digest(&federated, s.workers);
        prop_assert_eq!(single, multi);
    }

    /// The routing tier must not open a containment hole: under
    /// reflection, no sampled fault schedule or cross-farm worm may push
    /// the escape counter off zero, in the single-farm reference or the
    /// federated layout.
    #[test]
    fn federated_containment_holds(s in arb_run()) {
        let (_, escaped_single) = digest(&config_for(s, 1), 1);
        let (_, escaped_multi) = digest(&config_for(s, s.farms), s.workers);
        prop_assert_eq!(escaped_single, 0, "single-farm run leaked");
        prop_assert_eq!(escaped_multi, 0, "federated run leaked");
    }
}
